#include "serve/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ppgnn::serve {

std::size_t trace_parts(const std::vector<TraceEvent>& trace) {
  std::size_t n = 0;
  for (const TraceEvent& e : trace) n += e.nodes.size();
  return n;
}

double trace_span_seconds(const std::vector<TraceEvent>& trace) {
  if (trace.size() < 2) return 0.0;
  return static_cast<double>(trace.back().t_us - trace.front().t_us) * 1e-6;
}

double trace_mean_rps(const std::vector<TraceEvent>& trace) {
  const double span = trace_span_seconds(trace);
  if (span <= 0) return 0.0;
  return static_cast<double>(trace.size()) / span;
}

void save_trace(const std::string& path,
                const std::vector<TraceEvent>& trace) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_trace: cannot write " + path);
  }
  out << "ppgnn-trace v1\n";
  out << "# t_us priority deadline_us tenant node[,node...]\n";
  for (const TraceEvent& e : trace) {
    out << e.t_us << ' ' << static_cast<unsigned>(e.priority) << ' '
        << e.deadline_us << ' ' << e.tenant << ' ';
    for (std::size_t i = 0; i < e.nodes.size(); ++i) {
      if (i) out << ',';
      out << e.nodes[i];
    }
    out << '\n';
  }
  if (!out) {
    throw std::runtime_error("save_trace: short write to " + path);
  }
}

std::vector<TraceEvent> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_trace: cannot open " + path);
  }
  std::string line;
  if (!std::getline(in, line) || line != "ppgnn-trace v1") {
    throw std::runtime_error("load_trace: " + path +
                             " is not a ppgnn-trace v1 file");
  }
  std::vector<TraceEvent> trace;
  std::size_t lineno = 1;
  const auto bad = [&](const char* what) {
    throw std::runtime_error("load_trace: " + path + ":" +
                             std::to_string(lineno) + ": " + what);
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    TraceEvent e;
    unsigned pri = 0;
    char nodes_buf[1];
    int consumed = 0;
    if (std::sscanf(line.c_str(), "%" SCNu64 " %u %" SCNu64 " %" SCNu32 " %n",
                    &e.t_us, &pri, &e.deadline_us, &e.tenant,
                    &consumed) != 4 ||
        consumed <= 0) {
      (void)nodes_buf;
      bad("malformed event line");
    }
    if (pri > 1) bad("priority out of range");
    e.priority = pri == 0 ? Priority::kHigh : Priority::kLow;
    const char* p = line.c_str() + consumed;
    while (*p != '\0') {
      char* end = nullptr;
      const long long node = std::strtoll(p, &end, 10);
      if (end == p) bad("malformed node list");
      e.nodes.push_back(static_cast<std::int64_t>(node));
      p = end;
      if (*p == ',') ++p;
    }
    if (e.nodes.empty()) bad("event with no nodes");
    if (!trace.empty() && e.t_us < trace.back().t_us) {
      bad("arrivals out of order");
    }
    trace.push_back(std::move(e));
  }
  return trace;
}

void TraceRecorder::note(std::chrono::steady_clock::time_point now,
                         const std::vector<std::int64_t>& nodes, Priority pri,
                         std::uint64_t deadline_us, std::uint32_t tenant) {
  TraceEvent e;
  e.t_us = now <= t0_ ? 0
                      : static_cast<std::uint64_t>(
                            std::chrono::duration_cast<std::chrono::microseconds>(
                                now - t0_)
                                .count());
  e.priority = pri;
  e.deadline_us = deadline_us;
  e.tenant = tenant;
  e.nodes = nodes;
  std::lock_guard<std::mutex> lk(mu_);
  events_.push_back(std::move(e));
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    out = events_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.t_us < b.t_us;
                   });
  return out;
}

void TraceRecorder::save(const std::string& path) const {
  save_trace(path, snapshot());
}

}  // namespace ppgnn::serve
