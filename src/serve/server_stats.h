// Latency / throughput accounting for the online serving subsystem.
//
// Serving is judged on tail latency under concurrent load, not epoch time
// (the training-side metric everywhere else in this repo).  ServerStats is
// the one sink every serving component reports into: per-request latencies
// (submit -> response) and completion timestamps, summarized as p50/p95/p99,
// mean, max and sustained throughput.  The summary prints both as a
// bench/common.h-style table row and as a single JSON object line, which is
// the machine-readable shape bench_serving_latency emits.
//
// With admission control (MicroBatcher's shed budget) the latency summary
// alone lies by omission — a server can hold a beautiful p99 by refusing
// every hard request — so ServerStats also counts the admission verdicts:
// admitted, rejected at the door, and shed from the queue after admission.
//
// Two aggregation regimes share this class:
//
//  * Cumulative — lifetime counters and the full latency sample, what the
//    bench tables report.  Each replica owns one ServerStats; merge() /
//    merge_once() pool samples so fleet-level percentiles come from the
//    union of raw latencies, not from averaging per-replica percentiles
//    (which is wrong).  With *dynamic* membership (FleetManager), a
//    retired replica's recorder outlives the replica and a same-slot
//    successor records into a fresh one — so fleet aggregation is keyed by
//    generation id: merge_once() folds a given generation exactly once per
//    pooled recorder no matter how many membership lists mention it.
//
//  * Windowed — the autoscale signals.  Admission verdicts and queue-delay
//    samples additionally land in a bucketed sliding window (16 buckets
//    over a configurable span), and recent latency samples are kept
//    timestamped, so window() reports the *recent* shed rate, mean queue
//    delay and admitted-latency percentiles — what the AutoscalePolicy
//    reacts to and serve_cli's per-window status line prints.  Bucketed
//    counters cost O(1) per event regardless of rate; only the latency
//    window keeps individual samples (percentiles need them).
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "serve/clock.h"

namespace ppgnn::serve {

struct LatencySummary {
  std::size_t count = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double mean_us = 0;
  double max_us = 0;
  // Span from the first to the last completion and the sustained rate over
  // that span.
  double wall_seconds = 0;
  double throughput_rps = 0;

  // One JSON object, e.g. {"count":1000,"p50_us":12.0,...}.
  std::string to_json() const;
};

// Percentile over an unsorted sample (nearest-rank), p in [0, 100].
double percentile(std::vector<double> sample, double p);

// Admission-control outcomes.  "Rejected" is refused at submit time;
// "shed" was admitted but dropped from the queue later to protect the
// delay budget.  Both surface to the client as a retriable condition.
struct AdmissionCounters {
  std::size_t admitted = 0;
  std::size_t rejected = 0;
  std::size_t shed = 0;

  std::size_t offered() const { return admitted + rejected; }
  // Fraction of offered requests refused at the door.
  double reject_rate() const {
    return offered() ? static_cast<double>(rejected) /
                           static_cast<double>(offered())
                     : 0.0;
  }
  // Fraction of offered requests that never got an answer (door + queue).
  double shed_rate() const {
    return offered() ? static_cast<double>(rejected + shed) /
                           static_cast<double>(offered())
                     : 0.0;
  }
  // {"admitted":...,"rejected":...,"shed":...,"shed_rate":...}
  std::string to_json() const;
};

// Where answered requests spent their time, stage by stage, plus the
// honest shed column: a request shed from the queue never computed, but
// its admission wait was real latency its client paid — so shed parts
// record that wait here instead of reporting zeros (the
// serve-api-v2 stage-timing contract; pooled by merge()/merge_once()).
struct StageGauges {
  double admission_sum_us = 0;  // dispatched parts: enqueue -> batch close
  double dispatch_sum_us = 0;   // batch close -> compute start
  double compute_sum_us = 0;    // gather + forward
  std::size_t dispatched = 0;
  double shed_wait_sum_us = 0;  // shed parts: enqueue -> shed
  std::size_t shed_waits = 0;

  double mean_admission_us() const {
    return dispatched ? admission_sum_us / static_cast<double>(dispatched) : 0;
  }
  double mean_dispatch_us() const {
    return dispatched ? dispatch_sum_us / static_cast<double>(dispatched) : 0;
  }
  double mean_compute_us() const {
    return dispatched ? compute_sum_us / static_cast<double>(dispatched) : 0;
  }
  double mean_shed_wait_us() const {
    return shed_waits ? shed_wait_sum_us / static_cast<double>(shed_waits) : 0;
  }
  // {"admission_us":...,"dispatch_us":...,"compute_us":...,
  //  "shed_wait_us":...,"shed_waits":...}
  std::string to_json() const;
};

// One tenant's slice of a recorder: the multi-tenant observability row
// (src/tenancy/).  Counters are cumulative; the latency percentiles come
// in two flavors — cumulative over every admitted completion (what the
// bench isolation gate reads after a fleet merge) and windowed over the
// recorder's sliding window (what the live status line prints).
// `quota_refused` counts token-bucket refusals and is deliberately NOT
// part of AdmissionCounters: quota refusals are the tenant's contract
// working as intended, and must never inflate shed_rate (which would
// spook the autoscaler into scaling for traffic the fleet will not serve).
struct TenantStat {
  std::uint32_t tenant = 0;
  std::size_t admitted = 0;
  std::size_t rejected = 0;
  std::size_t shed = 0;
  std::size_t quota_refused = 0;
  std::size_t samples = 0;  // cumulative completions
  double p50_us = 0;        // cumulative percentiles over `samples`
  double p99_us = 0;
  std::size_t win_samples = 0;  // completions inside the sliding window
  double win_p50_us = 0;
  double win_p99_us = 0;

  // {"tenant":0,"admitted":...,"quota_refused":...,"p99_us":...,...}
  std::string to_json() const;
};

// Point-in-time view of the sliding window: the autoscale signal set for
// one replica (pool counters across replicas before computing fleet
// rates).
struct WindowStats {
  AdmissionCounters admission;       // verdicts within the window
  std::size_t deadline_missed = 0;   // misses within the window
  double mean_queue_delay_us = 0;    // dispatch-time queue delay
  std::size_t queue_delay_samples = 0;
  LatencySummary latency;            // completions within the window
  double shed_rate() const { return admission.shed_rate(); }
};

// Thread-safe recorder shared by client threads and the dispatcher.
class ServerStats {
 public:
  // `window` spans the sliding-window gauges (autoscale signals); the
  // cumulative counters and full latency sample are unaffected by it.
  // `clock` stamps every recorded event and defaults to the real steady
  // clock; under a SimClock the windowed gauges advance in sim time, so
  // policy code reading them cannot diverge from the event loop (the
  // clock-injection contract in serve/clock.h).
  explicit ServerStats(
      std::chrono::milliseconds window = std::chrono::milliseconds(1000),
      const Clock* clock = nullptr);

  // Records one completed request's latency in microseconds, billed to
  // `tenant` (0 — the default tenant — if the caller doesn't say).
  void record(double latency_us, std::uint32_t tenant = 0);
  // Records one dispatched micro-batch of the given size.
  void record_batch(std::size_t batch_size);
  // Records one request's queue delay (enqueue -> dispatch), the live
  // overload signal the autoscaler watches.  Windowed only.
  void record_queue_delay(double delay_us);
  // Admission verdicts (see AdmissionCounters).
  void record_admitted(std::uint32_t tenant = 0);
  void record_rejected(std::uint32_t tenant = 0);
  void record_shed(std::uint32_t tenant = 0);
  // `n` requests refused by the tenant's token bucket (kQuotaExceeded).
  // Tracked per tenant and as a cumulative total, OUTSIDE AdmissionCounters
  // so shed_rate/reject_rate — the autoscale signals — stay quota-blind.
  void record_quota_refused(std::uint32_t tenant, std::size_t n = 1);
  // One request missed its explicit deadline — shed pre-compute because it
  // was already blown, or answered after it.  Cumulative + windowed.
  void record_deadline_miss();
  // Per-stage timings of one dispatched part (serve_api.h StageTimings).
  void record_stages(double admission_us, double dispatch_us,
                     double compute_us);
  // Admission wait of one part shed before dispatch — recorded so the
  // shed-latency column reports the wait clients actually paid, not zero.
  void record_shed_wait(double admission_us);

  LatencySummary summary() const;
  AdmissionCounters admission() const;
  StageGauges stages() const;
  std::size_t deadline_missed() const;
  std::size_t quota_refused_total() const;
  // Per-tenant rows, tenant id ascending.  Windowed percentiles are
  // evaluated at `now` (injected clock for the no-arg overload).  Only
  // tenants with any recorded activity appear.
  std::vector<TenantStat> tenant_stats() const {
    return tenant_stats(clock_->now());
  }
  std::vector<TenantStat> tenant_stats(
      std::chrono::steady_clock::time_point now) const;
  // The sliding window as of `now` (events older than the window are
  // excluded; bucket granularity is window/16).  The no-argument overload
  // reads the injected clock — never the global steady clock — so a
  // sim-clocked recorder's window is evaluated at sim time.
  WindowStats window() const { return window(clock_->now()); }
  WindowStats window(std::chrono::steady_clock::time_point now) const;
  // Raw latency samples within the window — fleet-level window percentiles
  // must pool raw samples across replicas (percentiles don't average).
  std::vector<double> windowed_latency_samples() const {
    return windowed_latency_samples(clock_->now());
  }
  std::vector<double> windowed_latency_samples(
      std::chrono::steady_clock::time_point now) const;
  std::chrono::milliseconds window_span() const { return window_; }
  std::size_t batches() const;
  double mean_batch_size() const;
  void reset();

  // Pools `other` into this recorder: latency samples, batch and admission
  // counters, and the completion-time span (min first / max last).  The
  // sliding window is NOT pooled — windows are per-replica signals; pool
  // the WindowStats counters instead.
  void merge(const ServerStats& other);
  // Generation-keyed merge for dynamic fleets: folds `other` only if
  // `generation` has not been merged into *this* recorder before, and
  // returns whether it was.  A FleetManager aggregating over active +
  // retired membership lists may encounter the same replica twice (e.g. a
  // handle mid-retirement, or a retired replica and its same-slot
  // successor walked through two bookkeeping paths); keying by the
  // replica's never-reused generation id makes aggregation idempotent.
  bool merge_once(const ServerStats& other, std::uint64_t generation);

 private:
  struct Bucket {
    std::chrono::steady_clock::time_point start{};
    AdmissionCounters admission;
    std::size_t deadline_missed = 0;
    double queue_delay_sum_us = 0;
    std::size_t queue_delay_count = 0;
  };

  // Rotates the bucket ring so `now` falls in the current bucket; stale
  // buckets are zeroed.  Caller holds mu_.
  Bucket& current_bucket_locked(std::chrono::steady_clock::time_point now);
  void prune_latency_window_locked(std::chrono::steady_clock::time_point now);

  static constexpr std::size_t kBuckets = 16;

  // One tenant's cumulative slice.  The latency sample is duplicated per
  // tenant (the global latencies_us_ stays the merge/summary source of
  // truth) so fleet-level per-tenant percentiles pool RAW samples across
  // replicas, same rule as the global ones.
  struct TenantSlice {
    std::size_t admitted = 0;
    std::size_t rejected = 0;
    std::size_t shed = 0;
    std::size_t quota_refused = 0;
    std::vector<double> latencies_us;
  };

  struct WindowedSample {
    std::chrono::steady_clock::time_point when;
    double latency_us;
    std::uint32_t tenant;
  };

  const Clock* clock_;  // never null; defaults to &real_clock()
  mutable std::mutex mu_;
  std::vector<double> latencies_us_;
  std::size_t batches_ = 0;
  std::size_t batched_requests_ = 0;
  AdmissionCounters admission_;
  std::size_t deadline_missed_ = 0;
  std::size_t quota_refused_ = 0;
  StageGauges stages_;
  // std::map: tenant_stats() rows come out sorted by tenant id, and merge
  // order can't perturb iteration (deterministic JSON across runs).
  std::map<std::uint32_t, TenantSlice> tenants_;
  bool any_ = false;
  std::chrono::steady_clock::time_point first_done_;
  std::chrono::steady_clock::time_point last_done_;

  std::chrono::milliseconds window_;
  std::chrono::steady_clock::duration bucket_len_;
  std::array<Bucket, kBuckets> buckets_{};
  std::deque<WindowedSample> windowed_latencies_;
  std::unordered_set<std::uint64_t> merged_generations_;
};

}  // namespace ppgnn::serve
