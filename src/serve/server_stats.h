// Latency / throughput accounting for the online serving subsystem.
//
// Serving is judged on tail latency under concurrent load, not epoch time
// (the training-side metric everywhere else in this repo).  ServerStats is
// the one sink every serving component reports into: per-request latencies
// (submit -> response) and completion timestamps, summarized as p50/p95/p99,
// mean, max and sustained throughput.  The summary prints both as a
// bench/common.h-style table row and as a single JSON object line, which is
// the machine-readable shape bench_serving_latency emits.
//
// With admission control (MicroBatcher's shed budget) the latency summary
// alone lies by omission — a server can hold a beautiful p99 by refusing
// every hard request — so ServerStats also counts the admission verdicts:
// admitted, rejected at the door, and shed from the queue after admission.
// Each replica in a ReplicaSet owns one ServerStats; merge() pools samples
// and counters so fleet-level percentiles come from the union of raw
// latencies, not from averaging per-replica percentiles (which is wrong).
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace ppgnn::serve {

struct LatencySummary {
  std::size_t count = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double mean_us = 0;
  double max_us = 0;
  // Span from the first to the last completion and the sustained rate over
  // that span.
  double wall_seconds = 0;
  double throughput_rps = 0;

  // One JSON object, e.g. {"count":1000,"p50_us":12.0,...}.
  std::string to_json() const;
};

// Percentile over an unsorted sample (nearest-rank), p in [0, 100].
double percentile(std::vector<double> sample, double p);

// Admission-control outcomes.  "Rejected" is refused at submit time;
// "shed" was admitted but dropped from the queue later to protect the
// delay budget.  Both surface to the client as a retriable condition.
struct AdmissionCounters {
  std::size_t admitted = 0;
  std::size_t rejected = 0;
  std::size_t shed = 0;

  std::size_t offered() const { return admitted + rejected; }
  // Fraction of offered requests refused at the door.
  double reject_rate() const {
    return offered() ? static_cast<double>(rejected) /
                           static_cast<double>(offered())
                     : 0.0;
  }
  // Fraction of offered requests that never got an answer (door + queue).
  double shed_rate() const {
    return offered() ? static_cast<double>(rejected + shed) /
                           static_cast<double>(offered())
                     : 0.0;
  }
  // {"admitted":...,"rejected":...,"shed":...,"shed_rate":...}
  std::string to_json() const;
};

// Thread-safe recorder shared by client threads and the dispatcher.
class ServerStats {
 public:
  // Records one completed request's latency in microseconds.
  void record(double latency_us);
  // Records one dispatched micro-batch of the given size.
  void record_batch(std::size_t batch_size);
  // Admission verdicts (see AdmissionCounters).
  void record_admitted();
  void record_rejected();
  void record_shed();

  LatencySummary summary() const;
  AdmissionCounters admission() const;
  std::size_t batches() const;
  double mean_batch_size() const;
  void reset();

  // Pools `other` into this recorder: latency samples, batch and admission
  // counters, and the completion-time span (min first / max last).  Used by
  // ReplicaSet to compute fleet-level percentiles from raw samples.
  void merge(const ServerStats& other);

 private:
  mutable std::mutex mu_;
  std::vector<double> latencies_us_;
  std::size_t batches_ = 0;
  std::size_t batched_requests_ = 0;
  AdmissionCounters admission_;
  bool any_ = false;
  std::chrono::steady_clock::time_point first_done_;
  std::chrono::steady_clock::time_point last_done_;
};

}  // namespace ppgnn::serve
