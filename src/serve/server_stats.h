// Latency / throughput accounting for the online serving subsystem.
//
// Serving is judged on tail latency under concurrent load, not epoch time
// (the training-side metric everywhere else in this repo).  ServerStats is
// the one sink every serving component reports into: per-request latencies
// (submit -> response) and completion timestamps, summarized as p50/p95/p99,
// mean, max and sustained throughput.  The summary prints both as a
// bench/common.h-style table row and as a single JSON object line, which is
// the machine-readable shape bench_serving_latency emits.
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace ppgnn::serve {

struct LatencySummary {
  std::size_t count = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double mean_us = 0;
  double max_us = 0;
  // Span from the first to the last completion and the sustained rate over
  // that span.
  double wall_seconds = 0;
  double throughput_rps = 0;

  // One JSON object, e.g. {"count":1000,"p50_us":12.0,...}.
  std::string to_json() const;
};

// Percentile over an unsorted sample (nearest-rank), p in [0, 100].
double percentile(std::vector<double> sample, double p);

// Thread-safe recorder shared by client threads and the dispatcher.
class ServerStats {
 public:
  // Records one completed request's latency in microseconds.
  void record(double latency_us);
  // Records one dispatched micro-batch of the given size.
  void record_batch(std::size_t batch_size);

  LatencySummary summary() const;
  std::size_t batches() const;
  double mean_batch_size() const;
  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<double> latencies_us_;
  std::size_t batches_ = 0;
  std::size_t batched_requests_ = 0;
  bool any_ = false;
  std::chrono::steady_clock::time_point first_done_;
  std::chrono::steady_clock::time_point last_done_;
};

}  // namespace ppgnn::serve
