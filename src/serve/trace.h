// Arrival traces: the exchange format between the live serving tier and
// the fleet simulator (src/fleetsim/).
//
// A trace is a time-ordered list of request envelopes with timestamps
// RELATIVE to the start of the run — recorded live by serve_cli
// (--trace-out) from real client arrivals, or generated synthetically by
// the diurnal/burst emitters in workload.h.  Relative time is what makes
// a trace portable: replaying it never depends on the recording machine's
// clock epoch, and two recordings of the same workload diff cleanly.
//
// On-disk format (one event per line, '#' comments and blank lines
// ignored; written/parsed by save_trace/load_trace):
//
//   ppgnn-trace v1
//   # t_us priority deadline_us tenant node[,node...]
//   0 0 0 3 17,42,993
//   812 1 250000 0 55
//
//   field        meaning
//   -----        -------
//   t_us         arrival offset from trace start, microseconds
//   priority     0 = kHigh, 1 = kLow
//   deadline_us  RELATIVE deadline budget (0 = none); replay converts to
//                an absolute deadline at t_us + deadline_us
//   tenant       the envelope's real tenant id (ServeRequest.tenant, the
//                same id the fleet front bills contracts against) —
//                replays enforce the recorded tenant's quota and weight,
//                and capacity plans slice per tenant
//   nodes        comma-separated node ids of the envelope, no spaces
//
// Text, not binary: traces are artifacts humans diff and version; at the
// rates this repo serves (~1e5 rps) an hour of trace is tens of MB, which
// load_trace parses in well under a second.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/serve_api.h"

namespace ppgnn::serve {

struct TraceEvent {
  std::uint64_t t_us = 0;  // arrival offset from trace start
  Priority priority = Priority::kHigh;
  std::uint64_t deadline_us = 0;  // relative budget; 0 = no deadline
  std::uint32_t tenant = 0;
  std::vector<std::int64_t> nodes;
};

// Total parts (node ids) across all envelopes.
std::size_t trace_parts(const std::vector<TraceEvent>& trace);
// Span from first to last arrival, seconds (0 for traces of < 2 events).
double trace_span_seconds(const std::vector<TraceEvent>& trace);
// Mean offered envelope rate over the span.
double trace_mean_rps(const std::vector<TraceEvent>& trace);

// Writes `trace` to `path` in the v1 format above.  Throws
// std::runtime_error when the file cannot be written.
void save_trace(const std::string& path, const std::vector<TraceEvent>& trace);

// Parses a v1 trace.  Throws std::runtime_error on a missing file, a bad
// header, or a malformed line (with its line number — a truncated trace
// should fail loudly, not replay quietly short).  Events are returned in
// file order; replay requires nondecreasing t_us, which load_trace
// enforces too.
std::vector<TraceEvent> load_trace(const std::string& path);

// Thread-safe arrival recorder for live serving paths (serve_cli
// --trace-out).  Clients call note() at submit time; events are kept in
// memory and sorted by t_us on save (concurrent clients race on the
// recording order, not on the timestamps).
class TraceRecorder {
 public:
  // `t0` is the run's start; every note() stamps now - t0.
  explicit TraceRecorder(std::chrono::steady_clock::time_point t0)
      : t0_(t0) {}

  void note(std::chrono::steady_clock::time_point now,
            const std::vector<std::int64_t>& nodes, Priority pri,
            std::uint64_t deadline_us, std::uint32_t tenant);

  std::size_t size() const;
  // Sorted snapshot of everything noted so far.
  std::vector<TraceEvent> snapshot() const;
  // snapshot() + save_trace().
  void save(const std::string& path) const;

 private:
  std::chrono::steady_clock::time_point t0_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

}  // namespace ppgnn::serve
