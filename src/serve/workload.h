// Synthetic serving workloads: heavy-tailed request streams.
//
// Real user traffic over a graph is skewed — a few hub nodes (popular
// products, celebrity accounts) absorb most requests.  Two generators:
// Zipf over a hidden popularity ranking (rank-r node drawn with probability
// proportional to r^-s; s≈1 matches web/product traffic), and
// degree-proportional sampling, which ties popularity to the graph's own
// hubs.  Hot node ids are scattered uniformly over [0, n) — popularity is
// uncorrelated with id order, as in real datasets — so nothing about the
// stream is recoverable from id locality alone.  Both reuse
// graph::AliasTable for O(1) draws.
// The trace emitters below lift these streams into timestamped arrival
// traces (serve/trace.h) with time-varying offered rate — the synthetic
// inputs the fleet simulator replays: a diurnal day compressed to any
// span, and a steady rate with periodic bursts.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/csr.h"
#include "serve/trace.h"

namespace ppgnn::serve {

struct ZipfWorkloadConfig {
  std::size_t num_nodes = 0;
  std::size_t num_requests = 0;
  // Zipf exponent; 0 degenerates to uniform (the training-like stream on
  // which serving caches buy nothing — the Section-4.1 regime).
  double skew = 0.99;
  std::uint64_t seed = 1;
};

// Request stream of node ids in [0, num_nodes).
std::vector<std::int64_t> zipf_stream(const ZipfWorkloadConfig& cfg);

// Requests drawn proportional to (degree + 1) — hub-weighted traffic.
std::vector<std::int64_t> degree_stream(const graph::CsrGraph& g,
                                        std::size_t num_requests,
                                        std::uint64_t seed);

// The k hottest node ids of a config's popularity ranking (without
// sampling) — the oracle pin set for a StaticCache serving that stream.
std::vector<std::int64_t> zipf_hot_set(const ZipfWorkloadConfig& cfg,
                                       std::size_t k);

// The first `limit` distinct node ids of a stream, in first-appearance
// order — a workload-weighted evaluation sample (hot nodes appear early),
// used by the precision-accuracy comparisons.  Ids must be in
// [0, num_nodes).
std::vector<std::int64_t> first_unique(const std::vector<std::int64_t>& stream,
                                       std::size_t limit,
                                       std::size_t num_nodes);

// ---------------------------------------------------------------------------
// Synthetic arrival traces.
//
// Arrival TIMES are deterministic given the rate envelope alone: each
// event lands where the integral of the instantaneous rate crosses the
// next whole arrival (inverse-transform of the inhomogeneous intensity,
// without Poisson jitter).  The seed draws only node ids, priorities and
// deadlines.  Two consequences the simulator tests rely on: the offered
// envelope is exactly reproducible across seeds (same arrival count at
// every instant), and a load-oblivious fleet config replayed over two
// seeds sees identical queue dynamics.

struct TraceMixConfig {
  std::size_t num_nodes = 0;     // node-id population (Zipf over it)
  double skew = 0.99;            // Zipf exponent of the node draw
  std::size_t batch_nodes = 1;   // nodes per envelope
  double low_frac = 0.0;         // fraction of envelopes at Priority::kLow
  // Relative deadline budget assigned to every envelope (0 = none).
  std::uint64_t deadline_us = 0;
  std::uint32_t tenants = 1;     // tenant ids drawn uniformly from [0, n)
  std::uint64_t seed = 1;
};

// The generic emitter under both named shapes: walks the span integrating
// `rate_rps(t)` and emits an event each time the accumulated mass crosses
// a whole arrival.  Exposed so callers with their own envelope (e.g. the
// fleet simulator's staged calibration ramp) share one integration and
// one seed discipline with the named traces.
std::vector<TraceEvent> trace_from_rate(
    const TraceMixConfig& mix, double span_seconds,
    const std::function<double(double)>& rate_rps);

struct DiurnalTraceConfig {
  TraceMixConfig mix;
  double span_seconds = 3600;  // one simulated "day" compressed to this
  double base_rps = 100;       // trough offered envelope rate
  double peak_rps = 600;       // crest rate (sinusoidal day shape)
  // Fraction of the span at which the crest lands (0.5 = midday).
  double peak_at = 0.5;
};

// Offered envelope rate of the diurnal shape at time t — exposed so tests
// can integrate it independently of the emitter.
double diurnal_rate_at(const DiurnalTraceConfig& cfg, double t_seconds);

std::vector<TraceEvent> diurnal_trace(const DiurnalTraceConfig& cfg);

struct BurstTraceConfig {
  TraceMixConfig mix;
  double span_seconds = 600;
  double base_rps = 100;
  double burst_mult = 5.0;        // rate multiplier inside a burst
  double burst_every_seconds = 60;
  double burst_seconds = 5;
};

double burst_rate_at(const BurstTraceConfig& cfg, double t_seconds);

std::vector<TraceEvent> burst_trace(const BurstTraceConfig& cfg);

}  // namespace ppgnn::serve
