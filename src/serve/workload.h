// Synthetic serving workloads: heavy-tailed request streams.
//
// Real user traffic over a graph is skewed — a few hub nodes (popular
// products, celebrity accounts) absorb most requests.  Two generators:
// Zipf over a hidden popularity ranking (rank-r node drawn with probability
// proportional to r^-s; s≈1 matches web/product traffic), and
// degree-proportional sampling, which ties popularity to the graph's own
// hubs.  Hot node ids are scattered uniformly over [0, n) — popularity is
// uncorrelated with id order, as in real datasets — so nothing about the
// stream is recoverable from id locality alone.  Both reuse
// graph::AliasTable for O(1) draws.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace ppgnn::serve {

struct ZipfWorkloadConfig {
  std::size_t num_nodes = 0;
  std::size_t num_requests = 0;
  // Zipf exponent; 0 degenerates to uniform (the training-like stream on
  // which serving caches buy nothing — the Section-4.1 regime).
  double skew = 0.99;
  std::uint64_t seed = 1;
};

// Request stream of node ids in [0, num_nodes).
std::vector<std::int64_t> zipf_stream(const ZipfWorkloadConfig& cfg);

// Requests drawn proportional to (degree + 1) — hub-weighted traffic.
std::vector<std::int64_t> degree_stream(const graph::CsrGraph& g,
                                        std::size_t num_requests,
                                        std::uint64_t seed);

// The k hottest node ids of a config's popularity ranking (without
// sampling) — the oracle pin set for a StaticCache serving that stream.
std::vector<std::int64_t> zipf_hot_set(const ZipfWorkloadConfig& cfg,
                                       std::size_t k);

// The first `limit` distinct node ids of a stream, in first-appearance
// order — a workload-weighted evaluation sample (hot nodes appear early),
// used by the precision-accuracy comparisons.  Ids must be in
// [0, num_nodes).
std::vector<std::int64_t> first_unique(const std::vector<std::int64_t>& stream,
                                       std::size_t limit,
                                       std::size_t num_nodes);

}  // namespace ppgnn::serve
