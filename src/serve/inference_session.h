// InferenceSession: a deployed PP-GNN answering per-node prediction
// requests.
//
// PP-GNNs are uniquely serving-friendly (the flip side of the paper's
// training story): all graph structure was consumed at preprocessing time,
// so online inference is a pure MLP over the node's precomputed expanded
// row — no neighborhood explosion, no sampler, no graph in the serving
// tier at all.  A session is (model weights from an nn/serialize
// checkpoint) x (a FeatureSource resolving node ids to expanded rows), and
// a request is just a node id.
//
// Serving precision: a fleet runs either kFp32 (exact, the default) or
// kInt8 — post-training per-channel quantization of every Linear
// (core::quantize_int8), typically paired with an int8 FeatureFileStore
// codec and a quantized checkpoint so weights, rows on disk, and the
// cached resident set all shrink ~4x together.  FleetBuilder
// quantizes ONE model copy and shares the immutable int8 blocks across
// replicas; answers stay deterministic (fixed accumulation order), just
// quantized — test_replica_set bounds the error against the fp32 fleet.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/pp_model.h"
#include "serve/feature_source.h"
#include "tensor/cpu_features.h"
#include "tensor/tensor.h"

namespace ppgnn::serve {

// Numeric precision of a deployed model's inference path.
enum class Precision { kFp32, kInt8 };

const char* precision_name(Precision p);
bool parse_precision(const std::string& s, Precision* out);

class InferenceSession {
 public:
  // Takes ownership of both.  The feature source's row_dim() must match the
  // model's expected input width; checked lazily on first inference.
  // `precision` records how the model was prepared (it does not itself
  // transform the model — see FleetBuilder / core::quantize_int8).
  InferenceSession(std::unique_ptr<core::PpModel> model,
                   std::unique_ptr<FeatureSource> features,
                   Precision precision = Precision::kFp32);

  // Resolves features and runs one eval-mode forward; returns logits
  // [nodes.size(), classes].  Calls are serialized internally (PpModel
  // implementations keep forward scratch state); intra-batch parallelism
  // comes from the kernels' thread pool.
  Tensor infer_nodes(const std::vector<std::int64_t>& nodes);

  // Single-request convenience: the logits row for one node.
  std::vector<float> infer_one(std::int64_t node);

  std::size_t num_nodes() const { return features_->num_rows(); }
  core::PpModel& model() { return *model_; }
  FeatureSource& features() { return *features_; }
  Precision precision() const { return precision_; }
  // The INT8 GEMM kernel arm this session's weights dispatch to
  // (tensor/cpu_features.h): the packed layout's arm for a quantized
  // model, active_isa() otherwise (what quantizing now would pick).
  // serve_cli and the fleet build log surface this so a deployment
  // records which rung of the SIMD ladder it runs on.
  Isa kernel_isa();

 private:
  std::unique_ptr<core::PpModel> model_;
  std::unique_ptr<FeatureSource> features_;
  Precision precision_;
  std::mutex mu_;
};

// Offline precision-drift measurement: infers `sample` through both
// sessions and reports top-1 agreement plus the max absolute logit
// difference — the accuracy column serve_cli gates on (>= 99% agreement
// at int8) and the serving bench records in its JSON artifact.
struct PrecisionDrift {
  double top1_agreement = 1.0;
  double max_logit_err = 0.0;
  std::size_t sampled = 0;
};
PrecisionDrift compare_precision(InferenceSession& reference,
                                 InferenceSession& quantized,
                                 const std::vector<std::int64_t>& sample);

// Deployment round-trip helpers over nn/serialize: weights-only checkpoints
// (optimizer state has no business in a serving tier — contrast
// core/checkpoint.h, which restores training runs).  Saving with kInt8
// writes the quantized checkpoint section (~4x less weight data for the
// fleet to pull); load_deployed_model auto-detects either format.
void save_deployed_model(core::PpModel& model, const std::string& path,
                         Precision precision = Precision::kFp32);
void load_deployed_model(core::PpModel& model, const std::string& path);

// Recipe for stamping out identical replica sessions — at fleet
// construction AND at any later scale-up, which is why it is the fleet's
// one deployment surface (the build-once shim it replaced is gone).
//
// make_model(ordinal) constructs a model shell (any init — it is
// overwritten from the checkpoint at `checkpoint_path`, the same
// deployment round trip a single session uses) and make_source(ordinal)
// the replica's private FeatureSource.  Per-replica sources are the
// point: a CachedSource built per replica gives each its own RowCache,
// which cache_affinity routing then specializes on a key-space shard.
// Ordinals increase monotonically across the builder's lifetime (the
// FleetManager passes generation ids), so the callbacks can seed
// per-replica state distinctly.
//
// With Precision::kInt8 the builder quantizes ONE donor model on first
// build (core::quantize_int8) and every session built — first fleet and
// every autoscaled spawn alike — adopts the donor's immutable quantized
// weight blocks (share_quantized_weights).  The fleet holds one int8 copy
// of the weights no matter how many replicas ever run, a spawned
// replica's weights cost only the shared_ptr bump, and all replicas
// answer bit-identically to each other by construction.
//
// NOT thread-safe: the FleetManager serializes build() calls behind its
// admin lock (builds never touch the submit hot path).
class FleetBuilder {
 public:
  using MakeModel =
      std::function<std::unique_ptr<core::PpModel>(std::size_t)>;
  using MakeSource =
      std::function<std::unique_ptr<FeatureSource>(std::size_t)>;

  FleetBuilder(std::string checkpoint_path, MakeModel make_model,
               MakeSource make_source,
               Precision precision = Precision::kFp32);

  std::unique_ptr<InferenceSession> build(std::size_t ordinal);
  std::vector<std::unique_ptr<InferenceSession>> build_n(std::size_t n);

  Precision precision() const { return precision_; }

 private:
  std::string checkpoint_path_;
  MakeModel make_model_;
  MakeSource make_source_;
  Precision precision_;
  // kInt8 only: loaded + quantized once, kept alive as the source of the
  // shared weight blocks for every subsequent build.
  std::unique_ptr<core::PpModel> donor_;
};

}  // namespace ppgnn::serve
