// InferenceSession: a deployed PP-GNN answering per-node prediction
// requests.
//
// PP-GNNs are uniquely serving-friendly (the flip side of the paper's
// training story): all graph structure was consumed at preprocessing time,
// so online inference is a pure MLP over the node's precomputed expanded
// row — no neighborhood explosion, no sampler, no graph in the serving
// tier at all.  A session is (model weights from an nn/serialize
// checkpoint) x (a FeatureSource resolving node ids to expanded rows), and
// a request is just a node id.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/pp_model.h"
#include "serve/feature_source.h"
#include "tensor/tensor.h"

namespace ppgnn::serve {

class InferenceSession {
 public:
  // Takes ownership of both.  The feature source's row_dim() must match the
  // model's expected input width; checked lazily on first inference.
  InferenceSession(std::unique_ptr<core::PpModel> model,
                   std::unique_ptr<FeatureSource> features);

  // Resolves features and runs one eval-mode forward; returns logits
  // [nodes.size(), classes].  Calls are serialized internally (PpModel
  // implementations keep forward scratch state); intra-batch parallelism
  // comes from the kernels' thread pool.
  Tensor infer_nodes(const std::vector<std::int64_t>& nodes);

  // Single-request convenience: the logits row for one node.
  std::vector<float> infer_one(std::int64_t node);

  std::size_t num_nodes() const { return features_->num_rows(); }
  core::PpModel& model() { return *model_; }
  FeatureSource& features() { return *features_; }

 private:
  std::unique_ptr<core::PpModel> model_;
  std::unique_ptr<FeatureSource> features_;
  std::mutex mu_;
};

// Deployment round-trip helpers over nn/serialize: weights-only checkpoints
// (optimizer state has no business in a serving tier — contrast
// core/checkpoint.h, which restores training runs).
void save_deployed_model(core::PpModel& model, const std::string& path);
void load_deployed_model(core::PpModel& model, const std::string& path);

// Builds n sessions with bit-identical weights for a ReplicaSet:
// make_model(replica) constructs each replica's model (any init — it is
// overwritten from the checkpoint at `checkpoint_path`, the same
// deployment round trip a single session uses) and make_source(replica)
// its private FeatureSource.  Per-replica sources are the point: a
// CachedSource built per replica gives each its own RowCache, which
// cache_affinity routing then specializes on a key-space shard.
std::vector<std::unique_ptr<InferenceSession>> make_replica_sessions(
    std::size_t n, const std::string& checkpoint_path,
    const std::function<std::unique_ptr<core::PpModel>(std::size_t)>&
        make_model,
    const std::function<std::unique_ptr<FeatureSource>(std::size_t)>&
        make_source);

}  // namespace ppgnn::serve
