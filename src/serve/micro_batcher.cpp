#include "serve/micro_batcher.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ppgnn::serve {

std::chrono::steady_clock::time_point effective_deadline(
    const SlackView& e, std::chrono::steady_clock::duration budget) {
  auto d = e.deadline;
  if (budget.count() > 0) {
    const auto aged = e.enqueued + budget;
    if (aged < d) d = aged;
  }
  return d;
}

std::size_t least_slack_index(const std::vector<SlackView>& entries,
                              std::chrono::steady_clock::duration budget) {
  std::size_t best = SIZE_MAX;
  std::chrono::steady_clock::time_point best_deadline{};
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto d = effective_deadline(entries[i], budget);
    // Strict '<': ties keep the earliest index, i.e. the oldest entry
    // under FIFO enqueue order — so without explicit deadlines this IS
    // drop-head.
    if (best == SIZE_MAX || d < best_deadline) {
      best = i;
      best_deadline = d;
    }
  }
  return best;
}

MicroBatcher::MicroBatcher(InferenceSession& session,
                           const MicroBatchConfig& cfg, ServerStats* stats)
    : session_(session), cfg_(cfg), stats_(stats) {
  if (cfg_.max_batch_size == 0 || cfg_.queue_capacity == 0) {
    throw std::invalid_argument("MicroBatcher: zero batch size or capacity");
  }
  cfg_.clock = clock_or_real(cfg_.clock);  // every now() below is injected
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

MicroBatcher::~MicroBatcher() { stop(); }

void MicroBatcher::push_locked(ClassQueue& cq, Pending&& p) {
  auto& q = cq.by_tenant[p.tenant];
  if (q.empty()) cq.sched.arm(p.tenant);
  q.push_back(std::move(p));
  ++cq.size;
}

template <typename WeightFn>
MicroBatcher::Pending MicroBatcher::pop_next_locked(ClassQueue& cq,
                                                    WeightFn&& weight_of) {
  const std::uint32_t t = cq.sched.next(weight_of);
  const auto it = cq.by_tenant.find(t);
  assert(it != cq.by_tenant.end() && !it->second.empty());
  Pending p = std::move(it->second.front());
  it->second.pop_front();
  const bool emptied = it->second.empty();
  if (emptied) cq.by_tenant.erase(it);
  cq.sched.note_popped(t, emptied);
  --cq.size;
  return p;
}

std::chrono::steady_clock::time_point MicroBatcher::oldest_enqueued_locked()
    const {
  // Sub-queues are FIFO per tenant, so the oldest part in a class is one
  // of the tenant fronts; either class can hold the oldest arrival.
  auto oldest = std::chrono::steady_clock::time_point::max();
  for (const ClassQueue& cq : queues_) {
    for (const auto& [tenant, q] : cq.by_tenant) {
      (void)tenant;
      if (!q.empty()) oldest = std::min(oldest, q.front().enqueued);
    }
  }
  return oldest;
}

bool MicroBatcher::over_budget_locked(
    std::chrono::steady_clock::time_point now) const {
  if (queued_locked() == 0) return false;
  return now - oldest_enqueued_locked() > cfg_.shed_budget;
}

void MicroBatcher::recompute_low_expiry_locked() {
  low_next_expiry_ = std::chrono::steady_clock::time_point::max();
  if (cfg_.shed_budget.count() <= 0) return;  // sweeps only shed with a budget
  const auto& low = queues_[static_cast<std::size_t>(Priority::kLow)];
  for (const auto& [tenant, q] : low.by_tenant) {
    (void)tenant;
    for (const Pending& p : q) {
      const SlackView v{p.enqueued,
                        cfg_.deadline_aware
                            ? p.deadline
                            : std::chrono::steady_clock::time_point::max()};
      low_next_expiry_ =
          std::min(low_next_expiry_, effective_deadline(v, cfg_.shed_budget));
    }
  }
}

void MicroBatcher::sweep_expired_low_locked(
    std::chrono::steady_clock::time_point now, std::vector<Pending>* victims) {
  if (now < low_next_expiry_) return;  // nothing can have expired yet
  auto& low = queues_[static_cast<std::size_t>(Priority::kLow)];
  for (auto qit = low.by_tenant.begin(); qit != low.by_tenant.end();) {
    auto& q = qit->second;
    if (cfg_.deadline_aware) {
      for (auto it = q.begin(); it != q.end();) {
        const SlackView v{it->enqueued, it->deadline};
        if (effective_deadline(v, cfg_.shed_budget) < now) {
          ++counters_.admission.shed;
          --low.size;
          victims->push_back(std::move(*it));
          it = q.erase(it);
        } else {
          ++it;
        }
      }
    } else {
      // FIFO baseline: within one tenant's sub-queue, age ordering equals
      // expiry ordering, so only its front can be expired — the PR-2
      // drop-head pass, per tenant.
      while (!q.empty() && now - q.front().enqueued > cfg_.shed_budget) {
        ++counters_.admission.shed;
        --low.size;
        victims->push_back(std::move(q.front()));
        q.pop_front();
      }
    }
    if (q.empty()) {
      low.sched.disarm(qit->first);
      qit = low.by_tenant.erase(qit);
    } else {
      ++qit;
    }
  }
  recompute_low_expiry_locked();
}

void MicroBatcher::evict_one_low_locked(std::vector<Pending>* victims) {
  auto& low = queues_[static_cast<std::size_t>(Priority::kLow)];
  assert(low.size > 0);
  // Flatten every tenant sub-queue into one deterministic scan order
  // (tenant ascending, then FIFO position) and pick the victim GLOBALLY.
  // Picking from a single tenant's head — e.g. whichever tenant DWRR
  // would visit next — would evict parts that still have slack while a
  // doomed part sits in another tenant's queue; the slack policy must see
  // the whole class, exactly as it did when the class was one flat FIFO.
  std::vector<SlackView> views;
  std::vector<std::pair<std::uint32_t, std::size_t>> where;  // tenant, pos
  views.reserve(low.size);
  where.reserve(low.size);
  for (const auto& [tenant, q] : low.by_tenant) {
    for (std::size_t i = 0; i < q.size(); ++i) {
      if (cfg_.deadline_aware) {
        views.push_back({q[i].enqueued, q[i].deadline});
      } else {
        // FIFO baseline: order on age alone (no explicit deadlines) so
        // least_slack_index degenerates to the globally oldest part.
        views.push_back(
            {q[i].enqueued, std::chrono::steady_clock::time_point::max()});
      }
      where.emplace_back(tenant, i);
    }
  }
  const std::size_t victim = least_slack_index(views, cfg_.shed_budget);
  assert(victim < where.size());
#ifndef NDEBUG
  // The regression guard for the per-tenant refactor: the chosen victim's
  // effective deadline is the class-wide minimum, not just its own
  // tenant's.
  for (const SlackView& v : views) {
    assert(effective_deadline(views[victim], cfg_.shed_budget) <=
           effective_deadline(v, cfg_.shed_budget));
  }
#endif
  const auto [vt, vpos] = where[victim];
  auto qit = low.by_tenant.find(vt);
  ++counters_.admission.shed;
  --low.size;
  victims->push_back(std::move(qit->second[vpos]));
  qit->second.erase(qit->second.begin() + static_cast<std::ptrdiff_t>(vpos));
  if (qit->second.empty()) {
    low.sched.disarm(vt);
    low.by_tenant.erase(qit);
  }
  recompute_low_expiry_locked();
}

void MicroBatcher::finish_shed(std::vector<Pending>& victims,
                               std::chrono::steady_clock::time_point now) {
  for (Pending& p : victims) {
    // An entry whose explicit deadline has passed is a deadline miss
    // whichever policy dropped it; one shed while it could still have
    // been answered elsewhere is a plain (retriable) shed.
    const bool missed = p.deadline < now;
    StageTimings t;
    t.admission_wait_us =
        std::chrono::duration<double, std::micro>(now - p.enqueued).count();
    if (stats_) {
      stats_->record_shed(p.tenant);
      // The honest shed column: a shed part's queue wait was latency its
      // client paid — record it instead of reporting zeros.
      stats_->record_shed_wait(t.admission_wait_us);
      if (missed) stats_->record_deadline_miss();
    }
    p.state->finish_part(p.slot,
                         missed ? ServeStatus::kDeadlineExceeded
                                : ServeStatus::kShed,
                         nullptr, 0, t);
  }
  victims.clear();
}

RejectReason MicroBatcher::try_submit_parts(
    const std::shared_ptr<RequestState>& state, const std::uint32_t* slots,
    std::size_t n) {
  if (n == 0) return RejectReason::kNone;
  const bool shedding = cfg_.shed_budget.count() > 0;
  const auto& nodes = state->request().nodes;
  const Priority pri = state->priority();
  const std::uint32_t tenant = state->request().tenant;
  std::vector<Pending> victims;
  RejectReason reason = RejectReason::kNone;
  if (n > cfg_.queue_capacity) {
    // A sub-batch that can never fit must not block forever (backpressure
    // wait) or throw out of the exactly-one-response contract — it is a
    // permanent overload refusal, resolved like any other.
    std::lock_guard<std::mutex> lk(mu_);
    counters_.admission.rejected += n;
    reason = RejectReason::kOverload;
  }
  if (reason == RejectReason::kNone) {
    std::unique_lock<std::mutex> lk(mu_);
    if (!shedding) {
      // Backpressure mode: block for space, always accept — unless the
      // replica starts draining, which must wake blocked waiters and turn
      // them away (they re-route; see begin_drain in the header).
      cv_space_.wait(lk, [this, n] {
        return stop_ || draining_ ||
               queued_locked() + n <= cfg_.queue_capacity;
      });
      // Draining outranks stopped: a retired replica's batcher is both,
      // and a straggler routed by a pre-resize snapshot (it may have slept
      // through the whole drain) must get the re-routable bounce, not the
      // "server shut down" error reserved for a stopped fleet.
      if (draining_) return RejectReason::kDraining;
      if (stop_) throw std::runtime_error("MicroBatcher: stopped");
      const auto now = cfg_.clock->now();
      if (cfg_.deadline_aware && state->deadline() < now) {
        // Already blown while (possibly) blocked for space: refusing here
        // is the cheapest shed there is — nothing was ever queued.
        counters_.admission.rejected += n;
        reason = RejectReason::kDeadline;
      } else {
        // One class regardless of priority (see Priority in serve_api.h):
        // a strict-priority drain without a drop policy would let
        // sustained kHigh load starve queued kLow forever.  Within the
        // class, parts still land in per-tenant FIFOs so DWRR fair share
        // applies even in backpressure mode.
        auto& cq = queues_[static_cast<std::size_t>(Priority::kHigh)];
        for (std::size_t i = 0; i < n; ++i) {
          Pending p;
          p.node = nodes[slots[i]];
          p.slot = slots[i];
          p.tenant = tenant;
          p.state = state;
          p.enqueued = now;
          p.deadline = state->deadline();
          push_locked(cq, std::move(p));
        }
        counters_.admission.admitted += n;
      }
    } else {
      if (draining_) return RejectReason::kDraining;  // outranks stopped
      if (stop_) throw std::runtime_error("MicroBatcher: stopped");
      const auto now = cfg_.clock->now();
      if (cfg_.deadline_aware && state->deadline() < now) {
        counters_.admission.rejected += n;
        reason = RejectReason::kDeadline;
      } else {
        // Shed queued kLow parts that have outlived their effective
        // deadline — min(explicit deadline, enqueue + budget).  Gated on
        // the precomputed next-expiry so the common no-expiry arrival
        // stays O(1).
        sweep_expired_low_locked(now, &victims);
        // A full queue never turns away kHigh while kLow occupies it —
        // but only evict when the admission will actually succeed: if the
        // head of line is over budget, or the kLow queue cannot cover the
        // whole shortfall, the kHigh is about to be refused anyway and
        // killing servable kLow for it would waste both.
        auto& low = queues_[static_cast<std::size_t>(Priority::kLow)];
        if (pri == Priority::kHigh && !over_budget_locked(now)) {
          const std::size_t after = queued_locked() + n;
          const std::size_t shortfall =
              after > cfg_.queue_capacity ? after - cfg_.queue_capacity : 0;
          if (shortfall > 0 && shortfall <= low.size) {
            while (queued_locked() + n > cfg_.queue_capacity) {
              evict_one_low_locked(&victims);
            }
          }
        }
        if (over_budget_locked(now) ||
            queued_locked() + n > cfg_.queue_capacity) {
          counters_.admission.rejected += n;
          reason = RejectReason::kOverload;
        } else {
          auto& cq = queues_[static_cast<std::size_t>(pri)];
          for (std::size_t i = 0; i < n; ++i) {
            Pending p;
            p.node = nodes[slots[i]];
            p.slot = slots[i];
            p.tenant = tenant;
            p.state = state;
            p.enqueued = now;
            p.deadline = state->deadline();
            if (pri == Priority::kLow) {
              const SlackView v{p.enqueued, cfg_.deadline_aware
                                                ? p.deadline
                                                : std::chrono::steady_clock::
                                                      time_point::max()};
              low_next_expiry_ = std::min(
                  low_next_expiry_, effective_deadline(v, cfg_.shed_budget));
            }
            push_locked(cq, std::move(p));
          }
          counters_.admission.admitted += n;
        }
      }
    }
  }
  // Deliveries and stats happen outside the queue lock: finishing a part
  // may run an arbitrary caller callback (CompletionQueue sinks), and a
  // callback that blocked on mu_ would deadlock the admission path.
  if (!victims.empty()) {
    cv_space_.notify_all();
    finish_shed(victims, cfg_.clock->now());
  }
  if (reason == RejectReason::kNone) {
    if (stats_) {
      for (std::size_t i = 0; i < n; ++i) stats_->record_admitted(tenant);
    }
    cv_arrival_.notify_one();
    return RejectReason::kNone;
  }
  // Terminal refusal: the batcher resolves the parts itself (kDraining
  // never reaches here — the caller re-routes those).
  const bool deadline_refusal = reason == RejectReason::kDeadline;
  for (std::size_t i = 0; i < n; ++i) {
    if (stats_) {
      stats_->record_rejected(tenant);
      if (deadline_refusal) stats_->record_deadline_miss();
    }
    state->finish_part(slots[i],
                       deadline_refusal ? ServeStatus::kDeadlineExceeded
                                        : ServeStatus::kShed,
                       nullptr, 0, StageTimings{});
  }
  return reason;
}

Admission MicroBatcher::try_submit(std::int64_t node, Priority pri) {
  // The PR-1 surface as a thin shim over a single-node envelope: the
  // envelope's sink fulfils a promise, so legacy callers keep their
  // future — at the cost of the promise allocation the v2 path exists to
  // avoid.
  auto prom = std::make_shared<std::promise<std::vector<float>>>();
  auto fut = prom->get_future();
  ServeRequest req;
  req.nodes.push_back(node);
  req.priority = pri;
  auto state = std::make_shared<RequestState>(
      std::move(req), [prom](ServeResponse&& r) {
        switch (r.status) {
          case ServeStatus::kOk:
            prom->set_value(std::move(r.logits[0]));
            break;
          case ServeStatus::kError:
            prom->set_exception(r.error);
            break;
          default:
            prom->set_exception(std::make_exception_ptr(RejectedError(
                "shed from queue: delay budget exceeded")));
        }
      });
  const std::uint32_t slot = 0;
  const RejectReason reason = try_submit_parts(state, &slot, 1);
  Admission a;
  a.accepted = reason == RejectReason::kNone;
  a.reason = reason;
  if (a.accepted) a.result = std::move(fut);
  return a;
}

std::future<std::vector<float>> MicroBatcher::submit(std::int64_t node,
                                                     Priority pri) {
  Admission a = try_submit(node, pri);
  if (!a.accepted) {
    throw RejectedError("rejected at admission: queue-delay budget exceeded");
  }
  return std::move(a.result);
}

std::vector<float> MicroBatcher::infer_blocking(std::int64_t node) {
  return submit(node).get();
}

std::vector<MicroBatcher::Pending> MicroBatcher::next_batch(
    std::vector<Pending>* expired,
    std::chrono::steady_clock::time_point* pop_time) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_arrival_.wait(lk, [this] { return stop_ || queued_locked() > 0; });
    if (queued_locked() == 0) return {};  // stopping and fully drained
    // The batch window opens when the oldest pending request arrived; close
    // it at size or deadline, whichever first.  On stop, dispatch
    // immediately — drain latency beats batch quality during shutdown.
    const auto window_close = oldest_enqueued_locked() + cfg_.max_delay;
    while (!stop_ && queued_locked() < cfg_.max_batch_size) {
      if (cv_arrival_.wait_until(lk, window_close) ==
          std::cv_status::timeout) {
        break;
      }
    }
    // Shedding may have emptied the queue while the window was open.
    if (queued_locked() == 0) continue;
    const auto now = cfg_.clock->now();
    std::vector<Pending> batch;
    batch.reserve(std::min(queued_locked(), cfg_.max_batch_size));
    bool popped_low = false;
    // DWRR weights come from the registry snapshot as of this batch close
    // — one atomic load per batch, never per part, and a contract flip
    // mid-storm simply takes effect at the next batch boundary.
    const auto tenant_snap = cfg_.tenants ? cfg_.tenants->snapshot() : nullptr;
    const auto weight_of = [&](std::uint32_t t) {
      return tenant_snap ? tenant_snap->weight_of(t) : 1u;
    };
    // kHigh drains strictly first: under overload the sheddable class
    // waits, which is what makes its queue delay (and shedding) absorb the
    // excess.  Within a class, tenants are drained deficit-weighted
    // round-robin (src/tenancy/fair_share.h) — a weight-2 tenant fills
    // twice the batch slots of a weight-1 peer when both are backlogged,
    // and a lone tenant degenerates to the old FIFO.  A part whose
    // explicit deadline is already blown is moved to `expired` instead of
    // the batch — shedding it here, BEFORE compute, is the deadline-aware
    // half of the v2 contract: a blown request must not burn a batch slot
    // on an answer nobody will read.
    for (auto& cq : queues_) {
      while (batch.size() < cfg_.max_batch_size && !cq.empty()) {
        Pending p = pop_next_locked(cq, weight_of);
        popped_low = popped_low || &cq == &queues_[1];
        if (cfg_.deadline_aware && p.deadline < now) {
          ++counters_.admission.shed;
          expired->push_back(std::move(p));
          continue;
        }
        batch.push_back(std::move(p));
      }
    }
    if (popped_low) recompute_low_expiry_locked();
    if (batch.empty() && expired->empty()) continue;
    if (!batch.empty()) {
      counters_.requests += batch.size();
      ++counters_.batches;
      counters_.max_batch_observed =
          std::max(counters_.max_batch_observed, batch.size());
      in_service_ = batch.size();  // cleared by the dispatcher once answered
    }
    *pop_time = now;
    lk.unlock();
    cv_space_.notify_all();
    if (stats_) {
      // Queue delay (enqueue -> dispatch) is the overload signal the
      // autoscaler watches; record it at the moment the wait ends.
      for (const Pending& p : batch) {
        stats_->record_queue_delay(
            std::chrono::duration<double, std::micro>(now - p.enqueued)
                .count());
      }
    }
    return batch;
  }
}

void MicroBatcher::dispatcher_loop() {
  std::vector<std::int64_t> nodes;
  std::vector<Pending> expired;
  for (;;) {
    expired.clear();
    std::chrono::steady_clock::time_point t_pop{};
    std::vector<Pending> batch = next_batch(&expired, &t_pop);
    const bool had_expired = !expired.empty();
    if (had_expired) finish_shed(expired, t_pop);
    if (batch.empty()) {
      if (!had_expired) return;  // stopped and drained
      continue;  // the whole pop was deadline-shed; wait for more work
    }
    nodes.clear();
    for (const auto& p : batch) nodes.push_back(p.node);
    const auto t_start = cfg_.clock->now();
    try {
      const Tensor logits = session_.infer_nodes(nodes);
      const auto done = cfg_.clock->now();
      if (stats_) stats_->record_batch(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        Pending& p = batch[i];
        StageTimings t;
        t.admission_wait_us =
            std::chrono::duration<double, std::micro>(t_pop - p.enqueued)
                .count();
        t.dispatch_delay_us =
            std::chrono::duration<double, std::micro>(t_start - t_pop)
                .count();
        t.compute_us =
            std::chrono::duration<double, std::micro>(done - t_start).count();
        // A part finished past its deadline is answered anyway — the
        // results may still be useful — but flagged as a miss.  Counted
        // in BOTH eviction modes, so the FIFO baseline's misses are
        // measured, just not acted on.
        const bool late = p.deadline < done;
        // Record before finishing: a finished part may release the
        // client, which could read stats before this loop moves on.
        if (stats_) {
          stats_->record(std::chrono::duration<double, std::micro>(
                             done - p.enqueued)
                             .count(),
                         p.tenant);
          stats_->record_stages(t.admission_wait_us, t.dispatch_delay_us,
                                t.compute_us);
          if (late) stats_->record_deadline_miss();
        }
        p.state->finish_part(
            p.slot, late ? ServeStatus::kDeadlineExceeded : ServeStatus::kOk,
            logits.row(i), logits.cols(), t);
      }
    } catch (...) {
      // A bad node id (or any backend failure) fails this batch's
      // requests, not the server.
      for (auto& p : batch) {
        p.state->finish_part(p.slot, ServeStatus::kError, nullptr, 0,
                             StageTimings{}, std::current_exception());
      }
    }
    std::lock_guard<std::mutex> lk(mu_);
    in_service_ = 0;
  }
}

void MicroBatcher::begin_drain() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    draining_ = true;
  }
  // Wake backpressure-blocked submitters so they can re-route.
  cv_space_.notify_all();
}

bool MicroBatcher::draining() const {
  std::lock_guard<std::mutex> lk(mu_);
  return draining_;
}

void MicroBatcher::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_arrival_.notify_all();
  cv_space_.notify_all();
  // Claim the thread under the lock so concurrent stop() calls (e.g. an
  // explicit stop racing the destructor) can't both join it.
  std::thread t;
  {
    std::lock_guard<std::mutex> lk(mu_);
    t = std::move(dispatcher_);
  }
  if (t.joinable()) t.join();
}

BatchCounters MicroBatcher::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

std::size_t MicroBatcher::queue_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queued_locked() + in_service_;
}

std::size_t MicroBatcher::queued() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queued_locked();
}

}  // namespace ppgnn::serve
