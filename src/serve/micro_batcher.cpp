#include "serve/micro_batcher.h"

#include <stdexcept>
#include <utility>

namespace ppgnn::serve {

MicroBatcher::MicroBatcher(InferenceSession& session,
                           const MicroBatchConfig& cfg, ServerStats* stats)
    : session_(session), cfg_(cfg), stats_(stats) {
  if (cfg_.max_batch_size == 0 || cfg_.queue_capacity == 0) {
    throw std::invalid_argument("MicroBatcher: zero batch size or capacity");
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

MicroBatcher::~MicroBatcher() { stop(); }

std::future<std::vector<float>> MicroBatcher::submit(std::int64_t node) {
  Pending p;
  p.node = node;
  p.enqueued = std::chrono::steady_clock::now();
  auto fut = p.result.get_future();
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_space_.wait(lk, [this] {
      return stop_ || queue_.size() < cfg_.queue_capacity;
    });
    if (stop_) throw std::runtime_error("MicroBatcher: stopped");
    queue_.push_back(std::move(p));
  }
  cv_arrival_.notify_one();
  return fut;
}

std::vector<float> MicroBatcher::infer_blocking(std::int64_t node) {
  return submit(node).get();
}

std::vector<MicroBatcher::Pending> MicroBatcher::next_batch() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_arrival_.wait(lk, [this] { return stop_ || !queue_.empty(); });
  if (queue_.empty()) return {};  // stopping and fully drained
  // The batch window opens when the oldest pending request arrived; close
  // it at size or deadline, whichever first.  On stop, dispatch immediately
  // — drain latency beats batch quality during shutdown.
  const auto deadline = queue_.front().enqueued + cfg_.max_delay;
  while (!stop_ && queue_.size() < cfg_.max_batch_size) {
    if (cv_arrival_.wait_until(lk, deadline) == std::cv_status::timeout) {
      break;
    }
  }
  const std::size_t take = std::min(queue_.size(), cfg_.max_batch_size);
  std::vector<Pending> batch;
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  counters_.requests += take;
  ++counters_.batches;
  counters_.max_batch_observed = std::max(counters_.max_batch_observed, take);
  lk.unlock();
  cv_space_.notify_all();
  return batch;
}

void MicroBatcher::dispatcher_loop() {
  std::vector<std::int64_t> nodes;
  for (;;) {
    std::vector<Pending> batch = next_batch();
    if (batch.empty()) return;
    nodes.clear();
    for (const auto& p : batch) nodes.push_back(p.node);
    try {
      const Tensor logits = session_.infer_nodes(nodes);
      const auto done = std::chrono::steady_clock::now();
      if (stats_) stats_->record_batch(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        // Record before set_value: a resolved future releases the client,
        // which may read stats before this loop finishes otherwise.
        if (stats_) {
          stats_->record(std::chrono::duration<double, std::micro>(
                             done - batch[i].enqueued)
                             .count());
        }
        batch[i].result.set_value(std::vector<float>(
            logits.row(i), logits.row(i) + logits.cols()));
      }
    } catch (...) {
      // A bad node id (or any backend failure) fails this batch's
      // requests, not the server.
      for (auto& p : batch) p.result.set_exception(std::current_exception());
    }
  }
}

void MicroBatcher::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_arrival_.notify_all();
  cv_space_.notify_all();
  // Claim the thread under the lock so concurrent stop() calls (e.g. an
  // explicit stop racing the destructor) can't both join it.
  std::thread t;
  {
    std::lock_guard<std::mutex> lk(mu_);
    t = std::move(dispatcher_);
  }
  if (t.joinable()) t.join();
}

BatchCounters MicroBatcher::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

}  // namespace ppgnn::serve
