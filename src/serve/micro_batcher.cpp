#include "serve/micro_batcher.h"

#include <algorithm>
#include <utility>

namespace ppgnn::serve {

MicroBatcher::MicroBatcher(InferenceSession& session,
                           const MicroBatchConfig& cfg, ServerStats* stats)
    : session_(session), cfg_(cfg), stats_(stats) {
  if (cfg_.max_batch_size == 0 || cfg_.queue_capacity == 0) {
    throw std::invalid_argument("MicroBatcher: zero batch size or capacity");
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

MicroBatcher::~MicroBatcher() { stop(); }

std::chrono::steady_clock::time_point MicroBatcher::oldest_enqueued_locked()
    const {
  // kHigh dispatches first but either class can hold the oldest arrival.
  if (queues_[0].empty()) return queues_[1].front().enqueued;
  if (queues_[1].empty()) return queues_[0].front().enqueued;
  return std::min(queues_[0].front().enqueued, queues_[1].front().enqueued);
}

bool MicroBatcher::over_budget_locked(
    std::chrono::steady_clock::time_point now) const {
  if (queued_locked() == 0) return false;
  return now - oldest_enqueued_locked() > cfg_.shed_budget;
}

void MicroBatcher::shed_front_low_locked() {
  auto& low = queues_[static_cast<std::size_t>(Priority::kLow)];
  Pending victim = std::move(low.front());
  low.pop_front();
  ++counters_.admission.shed;
  if (stats_) stats_->record_shed();
  victim.result.set_exception(std::make_exception_ptr(
      RejectedError("shed from queue: delay budget exceeded")));
}

Admission MicroBatcher::try_submit(std::int64_t node, Priority pri) {
  Pending p;
  p.node = node;
  p.enqueued = std::chrono::steady_clock::now();
  auto fut = p.result.get_future();
  const bool shedding = cfg_.shed_budget.count() > 0;
  bool accepted = true;
  RejectReason reason = RejectReason::kNone;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (!shedding) {
      // Backpressure mode: block for space, always accept — unless the
      // replica starts draining, which must wake blocked waiters and turn
      // them away (they re-route; see begin_drain in the header).
      cv_space_.wait(lk, [this] {
        return stop_ || draining_ || queued_locked() < cfg_.queue_capacity;
      });
      // Draining outranks stopped: a retired replica's batcher is both,
      // and a straggler routed by a pre-resize snapshot (it may have slept
      // through the whole drain) must get the re-routable bounce, not the
      // "server shut down" error reserved for a stopped fleet.
      if (draining_) {
        Admission a;
        a.reason = RejectReason::kDraining;
        return a;
      }
      if (stop_) throw std::runtime_error("MicroBatcher: stopped");
      // One FIFO regardless of class (see Priority in the header): a
      // strict-priority drain without a drop policy would let sustained
      // kHigh load starve queued kLow forever.
      queues_[static_cast<std::size_t>(Priority::kHigh)].push_back(
          std::move(p));
      ++counters_.admission.admitted;
    } else {
      if (draining_) {  // outranks stopped; see the backpressure branch
        Admission a;
        a.reason = RejectReason::kDraining;
        return a;
      }
      if (stop_) throw std::runtime_error("MicroBatcher: stopped");
      const auto now = std::chrono::steady_clock::now();
      // Drop-head: shed kLow entries that have themselves outlived the
      // budget (each is past the deadline its client cares about).  Keyed
      // on the kLow head's own age, not the overall head-of-line — when
      // the oldest waiter is kHigh, flushing in-budget kLow behind it
      // can't restore the budget and would only inflate the shed rate.
      auto& low = queues_[static_cast<std::size_t>(Priority::kLow)];
      while (!low.empty() &&
             now - low.front().enqueued > cfg_.shed_budget) {
        shed_front_low_locked();
      }
      // A full queue never turns away kHigh while kLow occupies it — but
      // only evict when the admission will actually succeed; if the head
      // of line is over budget the kHigh is about to be refused anyway,
      // and killing a servable kLow for it would waste both.
      if (pri == Priority::kHigh && queued_locked() >= cfg_.queue_capacity &&
          !low.empty() && !over_budget_locked(now)) {
        shed_front_low_locked();
      }
      if (over_budget_locked(now) ||
          queued_locked() >= cfg_.queue_capacity) {
        accepted = false;
        reason = RejectReason::kOverload;
        ++counters_.admission.rejected;
      } else {
        queues_[static_cast<std::size_t>(pri)].push_back(std::move(p));
        ++counters_.admission.admitted;
      }
    }
  }
  if (stats_) {
    if (accepted) {
      stats_->record_admitted();
    } else {
      stats_->record_rejected();
    }
  }
  if (accepted) cv_arrival_.notify_one();
  Admission a;
  a.accepted = accepted;
  a.reason = reason;
  if (accepted) a.result = std::move(fut);
  return a;
}

std::future<std::vector<float>> MicroBatcher::submit(std::int64_t node,
                                                     Priority pri) {
  Admission a = try_submit(node, pri);
  if (!a.accepted) {
    throw RejectedError("rejected at admission: queue-delay budget exceeded");
  }
  return std::move(a.result);
}

std::vector<float> MicroBatcher::infer_blocking(std::int64_t node) {
  return submit(node).get();
}

std::vector<MicroBatcher::Pending> MicroBatcher::next_batch() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_arrival_.wait(lk, [this] { return stop_ || queued_locked() > 0; });
    if (queued_locked() == 0) return {};  // stopping and fully drained
    // The batch window opens when the oldest pending request arrived; close
    // it at size or deadline, whichever first.  On stop, dispatch
    // immediately — drain latency beats batch quality during shutdown.
    const auto deadline = oldest_enqueued_locked() + cfg_.max_delay;
    while (!stop_ && queued_locked() < cfg_.max_batch_size) {
      if (cv_arrival_.wait_until(lk, deadline) == std::cv_status::timeout) {
        break;
      }
    }
    // Shedding may have emptied the queue while the window was open.
    if (queued_locked() == 0) continue;
    const std::size_t take = std::min(queued_locked(), cfg_.max_batch_size);
    std::vector<Pending> batch;
    batch.reserve(take);
    // kHigh drains strictly first: under overload the sheddable class
    // waits, which is what makes its queue delay (and shedding) absorb the
    // excess.
    for (auto& queue : queues_) {
      while (batch.size() < take && !queue.empty()) {
        batch.push_back(std::move(queue.front()));
        queue.pop_front();
      }
    }
    counters_.requests += take;
    ++counters_.batches;
    counters_.max_batch_observed =
        std::max(counters_.max_batch_observed, take);
    in_service_ = take;  // cleared by the dispatcher once answered
    lk.unlock();
    cv_space_.notify_all();
    if (stats_) {
      // Queue delay (enqueue -> dispatch) is the overload signal the
      // autoscaler watches; record it at the moment the wait ends.
      const auto now = std::chrono::steady_clock::now();
      for (const Pending& p : batch) {
        stats_->record_queue_delay(
            std::chrono::duration<double, std::micro>(now - p.enqueued)
                .count());
      }
    }
    return batch;
  }
}

void MicroBatcher::dispatcher_loop() {
  std::vector<std::int64_t> nodes;
  for (;;) {
    std::vector<Pending> batch = next_batch();
    if (batch.empty()) return;
    nodes.clear();
    for (const auto& p : batch) nodes.push_back(p.node);
    try {
      const Tensor logits = session_.infer_nodes(nodes);
      const auto done = std::chrono::steady_clock::now();
      if (stats_) stats_->record_batch(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        // Record before set_value: a resolved future releases the client,
        // which may read stats before this loop finishes otherwise.
        if (stats_) {
          stats_->record(std::chrono::duration<double, std::micro>(
                             done - batch[i].enqueued)
                             .count());
        }
        batch[i].result.set_value(std::vector<float>(
            logits.row(i), logits.row(i) + logits.cols()));
      }
    } catch (...) {
      // A bad node id (or any backend failure) fails this batch's
      // requests, not the server.
      for (auto& p : batch) p.result.set_exception(std::current_exception());
    }
    std::lock_guard<std::mutex> lk(mu_);
    in_service_ = 0;
  }
}

void MicroBatcher::begin_drain() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    draining_ = true;
  }
  // Wake backpressure-blocked submitters so they can re-route.
  cv_space_.notify_all();
}

bool MicroBatcher::draining() const {
  std::lock_guard<std::mutex> lk(mu_);
  return draining_;
}

void MicroBatcher::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_arrival_.notify_all();
  cv_space_.notify_all();
  // Claim the thread under the lock so concurrent stop() calls (e.g. an
  // explicit stop racing the destructor) can't both join it.
  std::thread t;
  {
    std::lock_guard<std::mutex> lk(mu_);
    t = std::move(dispatcher_);
  }
  if (t.joinable()) t.join();
}

BatchCounters MicroBatcher::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

std::size_t MicroBatcher::queue_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queued_locked() + in_service_;
}

std::size_t MicroBatcher::queued() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queued_locked();
}

}  // namespace ppgnn::serve
