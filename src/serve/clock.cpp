#include "serve/clock.h"

namespace ppgnn::serve {

namespace {
class RealClock final : public Clock {
 public:
  std::chrono::steady_clock::time_point now() const override {
    return std::chrono::steady_clock::now();
  }
};
}  // namespace

const Clock& real_clock() {
  static const RealClock instance;
  return instance;
}

}  // namespace ppgnn::serve
