#include "serve/server_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ppgnn::serve {

double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const double rank = p / 100.0 * static_cast<double>(sample.size());
  auto idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;  // nearest-rank is 1-based
  if (idx >= sample.size()) idx = sample.size() - 1;
  return sample[idx];
}

std::string LatencySummary::to_json() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%zu,\"p50_us\":%.1f,\"p95_us\":%.1f,"
                "\"p99_us\":%.1f,\"mean_us\":%.1f,\"max_us\":%.1f,"
                "\"wall_seconds\":%.4f,\"throughput_rps\":%.0f}",
                count, p50_us, p95_us, p99_us, mean_us, max_us, wall_seconds,
                throughput_rps);
  return buf;
}

std::string AdmissionCounters::to_json() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"admitted\":%zu,\"rejected\":%zu,\"shed\":%zu,"
                "\"reject_rate\":%.4f,\"shed_rate\":%.4f}",
                admitted, rejected, shed, reject_rate(), shed_rate());
  return buf;
}

void ServerStats::record(double latency_us) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lk(mu_);
  latencies_us_.push_back(latency_us);
  if (!any_) {
    first_done_ = now;
    any_ = true;
  }
  last_done_ = now;
}

void ServerStats::record_batch(std::size_t batch_size) {
  std::lock_guard<std::mutex> lk(mu_);
  ++batches_;
  batched_requests_ += batch_size;
}

void ServerStats::record_admitted() {
  std::lock_guard<std::mutex> lk(mu_);
  ++admission_.admitted;
}

void ServerStats::record_rejected() {
  std::lock_guard<std::mutex> lk(mu_);
  ++admission_.rejected;
}

void ServerStats::record_shed() {
  std::lock_guard<std::mutex> lk(mu_);
  ++admission_.shed;
}

AdmissionCounters ServerStats::admission() const {
  std::lock_guard<std::mutex> lk(mu_);
  return admission_;
}

void ServerStats::merge(const ServerStats& other) {
  // Copy the source under its own lock, then fold in under ours, so the two
  // locks are never held together (no ordering to get wrong).
  std::vector<double> samples;
  std::size_t batches, batched_requests;
  AdmissionCounters adm;
  bool any;
  std::chrono::steady_clock::time_point first, last;
  {
    std::lock_guard<std::mutex> lk(other.mu_);
    samples = other.latencies_us_;
    batches = other.batches_;
    batched_requests = other.batched_requests_;
    adm = other.admission_;
    any = other.any_;
    first = other.first_done_;
    last = other.last_done_;
  }
  std::lock_guard<std::mutex> lk(mu_);
  latencies_us_.insert(latencies_us_.end(), samples.begin(), samples.end());
  batches_ += batches;
  batched_requests_ += batched_requests;
  admission_.admitted += adm.admitted;
  admission_.rejected += adm.rejected;
  admission_.shed += adm.shed;
  if (any) {
    if (!any_ || first < first_done_) first_done_ = first;
    if (!any_ || last > last_done_) last_done_ = last;
    any_ = true;
  }
}

LatencySummary ServerStats::summary() const {
  std::vector<double> sample;
  LatencySummary s;
  {
    std::lock_guard<std::mutex> lk(mu_);
    sample = latencies_us_;
    if (any_) {
      s.wall_seconds =
          std::chrono::duration<double>(last_done_ - first_done_).count();
    }
  }
  s.count = sample.size();
  if (sample.empty()) return s;
  double sum = 0, mx = 0;
  for (const double v : sample) {
    sum += v;
    mx = std::max(mx, v);
  }
  s.mean_us = sum / static_cast<double>(sample.size());
  s.max_us = mx;
  s.p50_us = percentile(sample, 50);
  s.p95_us = percentile(sample, 95);
  s.p99_us = percentile(sample, 99);
  // A single instantaneous completion has no measurable span; report the
  // count over a conservative 1us floor instead of infinity.
  const double span = std::max(s.wall_seconds, 1e-6);
  s.throughput_rps = static_cast<double>(s.count) / span;
  return s;
}

std::size_t ServerStats::batches() const {
  std::lock_guard<std::mutex> lk(mu_);
  return batches_;
}

double ServerStats::mean_batch_size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return batches_ == 0 ? 0.0
                       : static_cast<double>(batched_requests_) /
                             static_cast<double>(batches_);
}

void ServerStats::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  latencies_us_.clear();
  batches_ = 0;
  batched_requests_ = 0;
  admission_ = AdmissionCounters{};
  any_ = false;
}

}  // namespace ppgnn::serve
