#include "serve/server_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ppgnn::serve {

double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const double rank = p / 100.0 * static_cast<double>(sample.size());
  auto idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;  // nearest-rank is 1-based
  if (idx >= sample.size()) idx = sample.size() - 1;
  return sample[idx];
}

std::string LatencySummary::to_json() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%zu,\"p50_us\":%.1f,\"p95_us\":%.1f,"
                "\"p99_us\":%.1f,\"mean_us\":%.1f,\"max_us\":%.1f,"
                "\"wall_seconds\":%.4f,\"throughput_rps\":%.0f}",
                count, p50_us, p95_us, p99_us, mean_us, max_us, wall_seconds,
                throughput_rps);
  return buf;
}

std::string AdmissionCounters::to_json() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"admitted\":%zu,\"rejected\":%zu,\"shed\":%zu,"
                "\"reject_rate\":%.4f,\"shed_rate\":%.4f}",
                admitted, rejected, shed, reject_rate(), shed_rate());
  return buf;
}

std::string TenantStat::to_json() const {
  char buf[352];
  std::snprintf(buf, sizeof(buf),
                "{\"tenant\":%u,\"admitted\":%zu,\"rejected\":%zu,"
                "\"shed\":%zu,\"quota_refused\":%zu,\"samples\":%zu,"
                "\"p50_us\":%.1f,\"p99_us\":%.1f,\"win_samples\":%zu,"
                "\"win_p50_us\":%.1f,\"win_p99_us\":%.1f}",
                tenant, admitted, rejected, shed, quota_refused, samples,
                p50_us, p99_us, win_samples, win_p50_us, win_p99_us);
  return buf;
}

std::string StageGauges::to_json() const {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "{\"admission_us\":%.1f,\"dispatch_us\":%.1f,"
                "\"compute_us\":%.1f,\"shed_wait_us\":%.1f,"
                "\"shed_waits\":%zu}",
                mean_admission_us(), mean_dispatch_us(), mean_compute_us(),
                mean_shed_wait_us(), shed_waits);
  return buf;
}

ServerStats::ServerStats(std::chrono::milliseconds window, const Clock* clock)
    : clock_(clock_or_real(clock)) {
  if (window.count() <= 0) window = std::chrono::milliseconds(1000);
  window_ = window;
  // Bucket length must be a nonzero duration (it divides timestamps);
  // a sub-16ms window degrades to coarser effective bucketing rather
  // than dividing by zero.
  bucket_len_ = std::max<std::chrono::steady_clock::duration>(
      window_ / kBuckets, std::chrono::milliseconds(1));
}

ServerStats::Bucket& ServerStats::current_bucket_locked(
    std::chrono::steady_clock::time_point now) {
  // Buckets are addressed by absolute bucket index mod kBuckets; any bucket
  // whose recorded start doesn't match the slot's current period is stale
  // (the ring wrapped past it) and restarts from zero.
  const auto ticks = now.time_since_epoch() / bucket_len_;
  const auto slot = static_cast<std::size_t>(
      static_cast<std::uint64_t>(ticks) % kBuckets);
  const auto start =
      std::chrono::steady_clock::time_point(bucket_len_ * ticks);
  Bucket& b = buckets_[slot];
  if (b.start != start) {
    b = Bucket{};
    b.start = start;
  }
  return b;
}

void ServerStats::prune_latency_window_locked(
    std::chrono::steady_clock::time_point now) {
  const auto horizon = now - window_;
  while (!windowed_latencies_.empty() &&
         windowed_latencies_.front().when < horizon) {
    windowed_latencies_.pop_front();
  }
}

void ServerStats::record(double latency_us, std::uint32_t tenant) {
  const auto now = clock_->now();
  std::lock_guard<std::mutex> lk(mu_);
  latencies_us_.push_back(latency_us);
  tenants_[tenant].latencies_us.push_back(latency_us);
  if (!any_) {
    first_done_ = now;
    any_ = true;
  }
  last_done_ = now;
  windowed_latencies_.push_back({now, latency_us, tenant});
  prune_latency_window_locked(now);
}

void ServerStats::record_batch(std::size_t batch_size) {
  std::lock_guard<std::mutex> lk(mu_);
  ++batches_;
  batched_requests_ += batch_size;
}

void ServerStats::record_queue_delay(double delay_us) {
  const auto now = clock_->now();
  std::lock_guard<std::mutex> lk(mu_);
  Bucket& b = current_bucket_locked(now);
  b.queue_delay_sum_us += delay_us;
  ++b.queue_delay_count;
}

void ServerStats::record_admitted(std::uint32_t tenant) {
  const auto now = clock_->now();
  std::lock_guard<std::mutex> lk(mu_);
  ++admission_.admitted;
  ++tenants_[tenant].admitted;
  ++current_bucket_locked(now).admission.admitted;
}

void ServerStats::record_rejected(std::uint32_t tenant) {
  const auto now = clock_->now();
  std::lock_guard<std::mutex> lk(mu_);
  ++admission_.rejected;
  ++tenants_[tenant].rejected;
  ++current_bucket_locked(now).admission.rejected;
}

void ServerStats::record_shed(std::uint32_t tenant) {
  const auto now = clock_->now();
  std::lock_guard<std::mutex> lk(mu_);
  ++admission_.shed;
  ++tenants_[tenant].shed;
  ++current_bucket_locked(now).admission.shed;
}

void ServerStats::record_quota_refused(std::uint32_t tenant, std::size_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  quota_refused_ += n;
  tenants_[tenant].quota_refused += n;
  // No bucket update: quota refusals stay out of the windowed admission
  // counters by design (the autoscaler must not see them as shed).
}

void ServerStats::record_deadline_miss() {
  const auto now = clock_->now();
  std::lock_guard<std::mutex> lk(mu_);
  ++deadline_missed_;
  ++current_bucket_locked(now).deadline_missed;
}

void ServerStats::record_stages(double admission_us, double dispatch_us,
                                double compute_us) {
  std::lock_guard<std::mutex> lk(mu_);
  stages_.admission_sum_us += admission_us;
  stages_.dispatch_sum_us += dispatch_us;
  stages_.compute_sum_us += compute_us;
  ++stages_.dispatched;
}

void ServerStats::record_shed_wait(double admission_us) {
  std::lock_guard<std::mutex> lk(mu_);
  stages_.shed_wait_sum_us += admission_us;
  ++stages_.shed_waits;
}

AdmissionCounters ServerStats::admission() const {
  std::lock_guard<std::mutex> lk(mu_);
  return admission_;
}

StageGauges ServerStats::stages() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stages_;
}

std::size_t ServerStats::deadline_missed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return deadline_missed_;
}

std::size_t ServerStats::quota_refused_total() const {
  std::lock_guard<std::mutex> lk(mu_);
  return quota_refused_;
}

std::vector<TenantStat> ServerStats::tenant_stats(
    std::chrono::steady_clock::time_point now) const {
  std::vector<TenantStat> rows;
  std::map<std::uint32_t, std::vector<double>> windowed;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto horizon = now - window_;
    for (const WindowedSample& s : windowed_latencies_) {
      if (s.when >= horizon) windowed[s.tenant].push_back(s.latency_us);
    }
    rows.reserve(tenants_.size());
    for (const auto& [id, slice] : tenants_) {
      TenantStat t;
      t.tenant = id;
      t.admitted = slice.admitted;
      t.rejected = slice.rejected;
      t.shed = slice.shed;
      t.quota_refused = slice.quota_refused;
      t.samples = slice.latencies_us.size();
      t.p50_us = percentile(slice.latencies_us, 50);
      t.p99_us = percentile(slice.latencies_us, 99);
      rows.push_back(t);
    }
  }
  for (TenantStat& t : rows) {
    const auto it = windowed.find(t.tenant);
    if (it == windowed.end()) continue;
    t.win_samples = it->second.size();
    t.win_p50_us = percentile(it->second, 50);
    t.win_p99_us = percentile(it->second, 99);
  }
  return rows;
}

WindowStats ServerStats::window(
    std::chrono::steady_clock::time_point now) const {
  WindowStats w;
  std::vector<double> recent;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto horizon = now - window_;
    double delay_sum = 0;
    for (const Bucket& b : buckets_) {
      // A bucket participates only if its period is inside the window; a
      // start of time_point{} (never written) sorts before any horizon.
      if (b.start < horizon || b.start > now) continue;
      w.admission.admitted += b.admission.admitted;
      w.admission.rejected += b.admission.rejected;
      w.admission.shed += b.admission.shed;
      w.deadline_missed += b.deadline_missed;
      delay_sum += b.queue_delay_sum_us;
      w.queue_delay_samples += b.queue_delay_count;
    }
    if (w.queue_delay_samples > 0) {
      w.mean_queue_delay_us =
          delay_sum / static_cast<double>(w.queue_delay_samples);
    }
    recent.reserve(windowed_latencies_.size());
    for (const WindowedSample& s : windowed_latencies_) {
      if (s.when >= horizon) recent.push_back(s.latency_us);
    }
  }
  w.latency.count = recent.size();
  if (!recent.empty()) {
    double sum = 0, mx = 0;
    for (const double v : recent) {
      sum += v;
      mx = std::max(mx, v);
    }
    w.latency.mean_us = sum / static_cast<double>(recent.size());
    w.latency.max_us = mx;
    w.latency.p50_us = percentile(recent, 50);
    w.latency.p95_us = percentile(recent, 95);
    w.latency.p99_us = percentile(recent, 99);
    const double span = std::chrono::duration<double>(window_).count();
    w.latency.wall_seconds = span;
    w.latency.throughput_rps =
        static_cast<double>(recent.size()) / std::max(span, 1e-6);
  }
  return w;
}

std::vector<double> ServerStats::windowed_latency_samples(
    std::chrono::steady_clock::time_point now) const {
  std::vector<double> out;
  std::lock_guard<std::mutex> lk(mu_);
  const auto horizon = now - window_;
  out.reserve(windowed_latencies_.size());
  for (const WindowedSample& s : windowed_latencies_) {
    if (s.when >= horizon) out.push_back(s.latency_us);
  }
  return out;
}

void ServerStats::merge(const ServerStats& other) {
  // Copy the source under its own lock, then fold in under ours, so the two
  // locks are never held together (no ordering to get wrong).
  std::vector<double> samples;
  std::size_t batches, batched_requests, misses, quota_refused;
  AdmissionCounters adm;
  StageGauges stages;
  std::map<std::uint32_t, TenantSlice> tenants;
  bool any;
  std::chrono::steady_clock::time_point first, last;
  {
    std::lock_guard<std::mutex> lk(other.mu_);
    samples = other.latencies_us_;
    batches = other.batches_;
    batched_requests = other.batched_requests_;
    adm = other.admission_;
    misses = other.deadline_missed_;
    quota_refused = other.quota_refused_;
    stages = other.stages_;
    tenants = other.tenants_;
    any = other.any_;
    first = other.first_done_;
    last = other.last_done_;
  }
  std::lock_guard<std::mutex> lk(mu_);
  latencies_us_.insert(latencies_us_.end(), samples.begin(), samples.end());
  batches_ += batches;
  batched_requests_ += batched_requests;
  admission_.admitted += adm.admitted;
  admission_.rejected += adm.rejected;
  admission_.shed += adm.shed;
  deadline_missed_ += misses;
  quota_refused_ += quota_refused;
  for (const auto& [id, slice] : tenants) {
    TenantSlice& mine = tenants_[id];
    mine.admitted += slice.admitted;
    mine.rejected += slice.rejected;
    mine.shed += slice.shed;
    mine.quota_refused += slice.quota_refused;
    mine.latencies_us.insert(mine.latencies_us.end(),
                             slice.latencies_us.begin(),
                             slice.latencies_us.end());
  }
  stages_.admission_sum_us += stages.admission_sum_us;
  stages_.dispatch_sum_us += stages.dispatch_sum_us;
  stages_.compute_sum_us += stages.compute_sum_us;
  stages_.dispatched += stages.dispatched;
  stages_.shed_wait_sum_us += stages.shed_wait_sum_us;
  stages_.shed_waits += stages.shed_waits;
  if (any) {
    if (!any_ || first < first_done_) first_done_ = first;
    if (!any_ || last > last_done_) last_done_ = last;
    any_ = true;
  }
}

bool ServerStats::merge_once(const ServerStats& other,
                             std::uint64_t generation) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!merged_generations_.insert(generation).second) {
      return false;  // this generation's samples are already pooled here
    }
  }
  merge(other);
  return true;
}

LatencySummary ServerStats::summary() const {
  std::vector<double> sample;
  LatencySummary s;
  {
    std::lock_guard<std::mutex> lk(mu_);
    sample = latencies_us_;
    if (any_) {
      s.wall_seconds =
          std::chrono::duration<double>(last_done_ - first_done_).count();
    }
  }
  s.count = sample.size();
  if (sample.empty()) return s;
  double sum = 0, mx = 0;
  for (const double v : sample) {
    sum += v;
    mx = std::max(mx, v);
  }
  s.mean_us = sum / static_cast<double>(sample.size());
  s.max_us = mx;
  s.p50_us = percentile(sample, 50);
  s.p95_us = percentile(sample, 95);
  s.p99_us = percentile(sample, 99);
  // A single instantaneous completion has no measurable span; report the
  // count over a conservative 1us floor instead of infinity.
  const double span = std::max(s.wall_seconds, 1e-6);
  s.throughput_rps = static_cast<double>(s.count) / span;
  return s;
}

std::size_t ServerStats::batches() const {
  std::lock_guard<std::mutex> lk(mu_);
  return batches_;
}

double ServerStats::mean_batch_size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return batches_ == 0 ? 0.0
                       : static_cast<double>(batched_requests_) /
                             static_cast<double>(batches_);
}

void ServerStats::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  latencies_us_.clear();
  batches_ = 0;
  batched_requests_ = 0;
  admission_ = AdmissionCounters{};
  deadline_missed_ = 0;
  quota_refused_ = 0;
  stages_ = StageGauges{};
  tenants_.clear();
  any_ = false;
  buckets_ = {};
  windowed_latencies_.clear();
  merged_generations_.clear();
}

}  // namespace ppgnn::serve
