// Deterministic, signal-driven replica autoscaling policy.
//
// The admission layer already measures overload precisely: the windowed
// shed rate says how much offered work the fleet is refusing, and the
// windowed queue delay says how close admitted work is sailing to its
// budget.  AutoscalePolicy turns those gauges into spawn/retire decisions
// — the deterministic cousin of learned cluster schedulers like DL2: no
// model, just hysteresis, because a serving tier that oscillates (spawn,
// flush caches, retire, repeat) is worse than one that is briefly
// under-provisioned.
//
// The hysteresis has four guards, each killing one oscillation mode:
//
//  * sustain   — the shed rate must exceed the hi-threshold *continuously*
//                for `sustain` before a spawn: a single hot micro-burst
//                that the queue absorbs anyway must not buy a replica.
//  * idle_window — the fleet queues must be empty for `scale_down_idle` of
//                the ticks across `idle_window` before a retire: a gap
//                between request waves must not tear a replica down.
//  * cooldown  — after any action, no further action for `cooldown`: a
//                freshly spawned replica needs a window of traffic before
//                its effect on the shed rate is measurable, and reacting
//                before that means reacting to stale signals.
//  * bounds    — never below min_replicas (capacity floor for the next
//                wave) or above max_replicas (the machine's core budget —
//                replicas beyond it just timeshare).
//
// The policy is a pure state machine over (signals, now): time is
// injected, so tests replay a staged trace and assert the exact action
// sequence (test_autoscale does: exactly one spawn then one retire).
// The FleetManager's controller thread owns the wall-clock loop.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <utility>

namespace ppgnn::serve {

struct AutoscaleConfig {
  bool enabled = false;
  std::size_t min_replicas = 1;
  std::size_t max_replicas = 4;
  // Spawn when the windowed shed rate stays above this...
  double scale_up_shed = 0.10;
  // ...continuously for this long.
  std::chrono::milliseconds sustain{400};
  // Retire when at least this fraction of ticks across idle_window saw
  // empty fleet queues and no shedding...
  double scale_down_idle = 0.90;
  std::chrono::milliseconds idle_window{1000};
  // ...and no action happened within the last cooldown.
  std::chrono::milliseconds cooldown{1500};
  // Controller cadence (also the signal sampling period).
  std::chrono::milliseconds tick{50};
};

// One tick's fleet-level signal sample, pooled across replicas by the
// caller (sum the window counters, then compute rates).
struct FleetSignals {
  double shed_rate = 0;            // windowed: (rejected+shed)/offered
  double mean_queue_delay_us = 0;  // windowed, dispatch-time
  // Instantaneous fleet total of QUEUED work, in-service batches excluded
  // — the idle predicate keys on work waiting behind current batches.
  std::size_t queue_depth = 0;
  // One dispatch round's worth of queue: replicas * max_batch_size.  A
  // tick counts as idle when nothing was shed in the window AND
  // queue_depth <= batch_capacity — the backlog clears within a single
  // round, i.e. "the queues run empty" at batch granularity.  (A strictly
  // empty queue is the wrong test: micro-batching *deliberately*
  // accumulates arrivals for max_delay, so even a half-loaded fleet's
  // queue is non-empty most of the time.)
  std::size_t batch_capacity = 1;
  std::size_t replicas = 0;        // active replica count
};

enum class ScaleAction { kNone, kUp, kDown };
const char* scale_action_name(ScaleAction a);

class AutoscalePolicy {
 public:
  explicit AutoscalePolicy(const AutoscaleConfig& cfg);

  // Feed one signal sample; returns the action the fleet should take now.
  // `now` must be monotonically non-decreasing across calls.
  ScaleAction on_tick(const FleetSignals& s,
                      std::chrono::steady_clock::time_point now);

  const AutoscaleConfig& config() const { return cfg_; }

 private:
  AutoscaleConfig cfg_;
  // Shed-rate hysteresis: when the rate first crossed the hi threshold
  // (and stayed there since).
  bool over_ = false;
  std::chrono::steady_clock::time_point over_since_{};
  // Idle tracking: (tick time, was the fleet idle at that tick), pruned to
  // the idle window; coverage_start_ marks when tracking last restarted,
  // so "evidence spans the whole window" is judged against real elapsed
  // time rather than tick spacing (ticks jitter on loaded machines).
  std::deque<std::pair<std::chrono::steady_clock::time_point, bool>> idle_;
  bool covering_ = false;
  std::chrono::steady_clock::time_point coverage_start_{};
  bool acted_ = false;
  std::chrono::steady_clock::time_point last_action_{};
};

}  // namespace ppgnn::serve
