// Shared serving-deployment harness: the offline steps every serving
// binary repeats before it can measure anything.
//
// serve_cli, bench_serving_latency and the serving tests all need the same
// artifacts: a synthetic SBM graph with heavy-tailed hubs, generated
// features, one preprocessing pass, a quick_train'd model written out
// through the deployment checkpoint round trip (fp32 reference plus the
// configured precision), optionally a row-granular FeatureFileStore in the
// matching codec, and a Zipf request stream over the same node space.
// Before this header each binary re-implemented that pipeline and they
// drifted (different seeds, different degree tails, one forgetting
// quick_train — which silently turns precision-agreement columns into
// coin flips).  ServingTestbed is the single implementation; binaries
// differ only in the TestbedConfig they pass and the sources/fleets they
// stand up on top.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/pp_model.h"
#include "core/precompute.h"
#include "graph/generator.h"
#include "loader/storage.h"
#include "serve/feature_source.h"
#include "serve/inference_session.h"
#include "serve/workload.h"

namespace ppgnn::serve {

struct TestbedConfig {
  std::size_t nodes = 20000;
  std::size_t feat_dim = 32;
  std::size_t classes = 16;
  std::size_t hops = 2;
  std::size_t hidden = 32;
  std::string model = "SIGN";  // SGC | SIGN
  // Deployment-prep epochs (core::quick_train).  Keep >= 1: an untrained
  // model's near-tie logits make top-1 agreement measurements meaningless.
  std::size_t train_epochs = 2;
  Precision precision = Precision::kFp32;
  // Also write a FeatureFileStore (codec follows `precision`).
  bool create_store = false;
  // Graph shape: heavy-tailed hubs, like real serving graphs.
  double avg_degree = 10.0;
  double degree_power = 1.6;
  std::uint64_t graph_seed = 11;
  // Workload defaults for workload()/stream().
  double skew = 0.99;
  std::uint64_t workload_seed = 31;
};

// The staged load trace both autoscale drivers (bench section 5,
// serve_cli --autoscale) pace against: 0.5x -> 2.5x -> 0.5x of a
// machine-calibrated baseline, equal wall time per phase.  One
// implementation because the pacing is tuning-sensitive: the scheduled
// interval at high rates sits far below the OS timer granularity, so the
// pacer inevitably oversleeps and repays with a short burst — banked at
// most 1ms of slots, because a pacer genuinely outrun (the 2.5x phase
// can outrun one submit thread) must DROP the excess rather than blast
// it into the 0.5x phase and mask the idle tail from the autoscaler,
// while strict slot-dropping would collapse the rate to the timer
// frequency.
class StagedRampPacer {
 public:
  static constexpr double kPhaseMult[3] = {0.5, 2.5, 0.5};
  static constexpr double kMeanMult =
      (kPhaseMult[0] + kPhaseMult[1] + kPhaseMult[2]) / 3;

  // Starts the trace clock now.
  StagedRampPacer(double baseline_rps, double total_seconds);

  // Sleeps until the next scheduled submit slot; returns false once the
  // trace's wall time has elapsed (stop submitting).
  bool pace();

  std::chrono::steady_clock::time_point start() const { return t0_; }
  double total_seconds() const { return total_seconds_; }
  double phase_seconds() const { return total_seconds_ / 3; }
  // The offered rate of the phase containing `elapsed` trace seconds.
  double rate_at(double elapsed_seconds) const;

 private:
  double baseline_rps_;
  double total_seconds_;
  std::chrono::steady_clock::time_point t0_;
  std::chrono::steady_clock::time_point next_submit_;
  std::chrono::steady_clock::time_point t_end_;
};

class ServingTestbed {
 public:
  // Generates, preprocesses, trains and writes every artifact.  The
  // scratch directory is per-instance (mkdtemp), so concurrent runs never
  // share state; files are left behind like every other /tmp artifact in
  // this repo.
  explicit ServingTestbed(const TestbedConfig& cfg);

  const TestbedConfig& config() const { return cfg_; }
  const graph::SbmGraph& sbm() const { return sbm_; }
  const core::Preprocessed& pre() const { return pre_; }
  const std::vector<std::int32_t>& labels() const { return sbm_.labels; }

  const std::string& dir() const { return dir_; }
  // Deployed checkpoint at config().precision (the one fleets load).
  const std::string& checkpoint() const { return ckpt_; }
  // Always-fp32 checkpoint — the accuracy reference for drift columns.
  const std::string& checkpoint_fp32() const { return ckpt_fp32_; }
  // Valid when create_store; codec() names its row encoding.
  std::string store_dir() const { return dir_ + "/store"; }
  loader::RowCodec codec() const;

  // A model shell with the configured architecture (weights are whatever
  // `seed` initializes them to — deployment overwrites them from the
  // checkpoint).
  std::unique_ptr<core::PpModel> make_model(std::uint64_t seed = 7) const;

  ZipfWorkloadConfig workload(std::size_t requests) const;
  std::vector<std::int64_t> stream(std::size_t requests) const;
  std::vector<std::int64_t> stream(std::size_t requests,
                                   std::uint64_t seed) const;
  // The same stream grouped into `batch_nodes`-sized node groups — the
  // multi-node ServeRequest shape of the v2 API (the tail group keeps its
  // remainder).  Deadlines are absolute, so the caller stamps
  // request.deadline at submit time, not here.
  static std::vector<std::vector<std::int64_t>> group_stream(
      const std::vector<std::int64_t>& stream, std::size_t batch_nodes);

  // Ready-made sources over the artifacts.
  std::unique_ptr<FeatureSource> memory_source() const;
  // Concrete type so callers can keep a store handle for pread counters.
  std::unique_ptr<FileStoreSource> file_source() const;  // needs create_store

  // A FleetBuilder over this testbed's checkpoint and architecture;
  // `make_source` decides each replica's feature path.  The builder keeps
  // a reference to this testbed — keep the testbed alive for the
  // builder's (and any fleet's) lifetime.
  FleetBuilder fleet_builder(FleetBuilder::MakeSource make_source,
                             std::uint64_t model_seed_base = 1000) const;

 private:
  TestbedConfig cfg_;
  graph::SbmGraph sbm_;
  core::Preprocessed pre_;
  std::string dir_;
  std::string ckpt_;
  std::string ckpt_fp32_;
};

}  // namespace ppgnn::serve
