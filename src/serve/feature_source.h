// Per-node feature resolution for online serving — and why serving INVERTS
// the paper's Section-4.1 caching argument.
//
// Section 4.1 rejects feature caching for PP-GNN *training*: every training
// row is visited exactly once per epoch in a random order, so any cache's
// hit rate collapses to its capacity fraction and double buffering wins.
// That argument is a property of the access stream, not of PP-GNNs.  An
// online *serving* stream is the opposite regime: requests arrive with the
// heavy-tailed popularity of real user traffic (hot products, hub users),
// so a small cache over the expanded rows absorbs most fetches — exactly
// the PaGraph/GNNLab situation the paper contrasts against.  The same
// loader::RowCache policies training rejected (measured useless in
// bench_ablation_caching) become the serving hot path here, which is why
// CachedSource composes them instead of reimplementing: one policy
// implementation, two opposite verdicts, both measured.
//
// FeatureSource abstracts where a node's expanded row [hop0|...|hopR] comes
// from: MemorySource reads core::Preprocessed (features fit in RAM),
// FileStoreSource reads loader::FeatureFileStore row-granularly (features
// on storage — the deployment case), and CachedSource decorates either with
// a payload cache driven by any loader::RowCache eviction policy.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/precompute.h"
#include "loader/cache.h"
#include "loader/storage.h"
#include "tensor/tensor.h"

namespace ppgnn::serve {

class FeatureSource {
 public:
  virtual ~FeatureSource() = default;

  virtual std::size_t num_rows() const = 0;
  // Expanded row width (R+1)*F — the model's input dimension.
  virtual std::size_t row_dim() const = 0;
  // out is resized to [rows.size(), row_dim()]; out.row(i) = expanded
  // features of rows[i].  Must be safe to call from multiple threads.
  virtual void gather(const std::vector<std::int64_t>& rows, Tensor& out) = 0;
  virtual const char* kind() const = 0;
};

// In-memory resolution over a Preprocessed the caller keeps alive (serving
// from the training box, or graphs small enough to pin in RAM).
class MemorySource : public FeatureSource {
 public:
  explicit MemorySource(const core::Preprocessed& pre) : pre_(&pre) {}

  std::size_t num_rows() const override { return pre_->num_nodes(); }
  std::size_t row_dim() const override {
    return pre_->hop_features.size() * pre_->feat_dim();
  }
  void gather(const std::vector<std::int64_t>& rows, Tensor& out) override;
  const char* kind() const override { return "memory"; }

 private:
  const core::Preprocessed* pre_;
};

// Storage-backed resolution: one row-granular read_rows per miss batch.
// Owns the store; reads use pread and are thread-safe.
class FileStoreSource : public FeatureSource {
 public:
  explicit FileStoreSource(loader::FeatureFileStore store)
      : store_(std::move(store)) {}

  std::size_t num_rows() const override { return store_.num_rows(); }
  std::size_t row_dim() const override {
    return store_.num_hops() * store_.hop_dim();
  }
  void gather(const std::vector<std::int64_t>& rows, Tensor& out) override;
  const char* kind() const override { return "file"; }

  const loader::FeatureFileStore& store() const { return store_; }

 private:
  loader::FeatureFileStore store_;
};

struct FeatureCacheStats {
  std::size_t accesses = 0;   // row occurrences requested
  std::size_t hits = 0;       // served without a backing read (cached
                              // payload, or a repeat within one batch)
  std::size_t rows_read = 0;  // unique rows fetched from the backing source
  double hit_rate() const {
    return accesses ? static_cast<double>(hits) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
};

// Payload cache over any backing source, driven by a loader::RowCache
// policy (LRU for popularity drift, StaticCache pinned on degree- or
// frequency-hot rows for a GNNLab-style fixed hot set).  The policy decides
// admission/eviction; this class keeps the actual row bytes.
class CachedSource : public FeatureSource {
 public:
  CachedSource(std::unique_ptr<FeatureSource> backing,
               std::unique_ptr<loader::RowCache> policy);

  std::size_t num_rows() const override { return backing_->num_rows(); }
  std::size_t row_dim() const override { return backing_->row_dim(); }
  void gather(const std::vector<std::int64_t>& rows, Tensor& out) override;
  const char* kind() const override { return "cached"; }

  FeatureCacheStats stats() const;
  const loader::RowCache& cache_policy() const { return *policy_; }

  // Pre-populates payloads for rows the policy will retain (e.g. a
  // StaticCache pin set) so the first requests already hit.
  void warm(const std::vector<std::int64_t>& rows);

 private:
  std::unique_ptr<FeatureSource> backing_;
  std::unique_ptr<loader::RowCache> policy_;
  std::unordered_map<std::int64_t, std::vector<float>> payload_;
  FeatureCacheStats stats_;
  mutable std::mutex mu_;
};

// Sums cache statistics across a fleet's per-replica CachedSources (null
// entries skipped) — the hit-rate rollup serve_cli and the serving bench
// both report.
FeatureCacheStats aggregate_cache_stats(
    const std::vector<const CachedSource*>& caches);

}  // namespace ppgnn::serve
