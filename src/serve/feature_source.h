// Per-node feature resolution for online serving — and why serving INVERTS
// the paper's Section-4.1 caching argument.
//
// Section 4.1 rejects feature caching for PP-GNN *training*: every training
// row is visited exactly once per epoch in a random order, so any cache's
// hit rate collapses to its capacity fraction and double buffering wins.
// That argument is a property of the access stream, not of PP-GNNs.  An
// online *serving* stream is the opposite regime: requests arrive with the
// heavy-tailed popularity of real user traffic (hot products, hub users),
// so a small cache over the expanded rows absorbs most fetches — exactly
// the PaGraph/GNNLab situation the paper contrasts against.  The same
// loader::RowCache policies training rejected (measured useless in
// bench_ablation_caching) become the serving hot path here, which is why
// CachedSource composes them instead of reimplementing: one policy
// implementation, two opposite verdicts, both measured.
//
// FeatureSource abstracts where a node's expanded row [hop0|...|hopR] comes
// from: MemorySource reads core::Preprocessed (features fit in RAM),
// FileStoreSource reads loader::FeatureFileStore row-granularly (features
// on storage — the deployment case), and CachedSource decorates either with
// a payload cache driven by any loader::RowCache eviction policy.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/precompute.h"
#include "loader/cache.h"
#include "loader/storage.h"
#include "tensor/tensor.h"

namespace ppgnn::serve {

class FeatureSource {
 public:
  virtual ~FeatureSource() = default;

  virtual std::size_t num_rows() const = 0;
  // Expanded row width (R+1)*F — the model's input dimension.
  virtual std::size_t row_dim() const = 0;
  // out is resized to [rows.size(), row_dim()]; out.row(i) = expanded
  // features of rows[i].  Must be safe to call from multiple threads.
  virtual void gather(const std::vector<std::int64_t>& rows, Tensor& out) = 0;
  virtual const char* kind() const = 0;

  // Optional compact-encoding access, for payload caches.  A source whose
  // rows have a compact stored form (the int8 FeatureFileStore codec)
  // reports its encoded row size here; CachedSource then keeps the ENCODED
  // bytes resident — ~4x more rows per byte budget — and decodes on every
  // serve, so hit and miss paths decode the same bytes and caching can
  // never change an answer.  0 (the default) means "no compact form";
  // caches fall back to resident fp32 rows.
  virtual std::size_t encoded_row_bytes() const { return 0; }
  // out must hold rows.size() * encoded_row_bytes() bytes.  Only valid
  // when encoded_row_bytes() > 0.
  virtual void gather_encoded(const std::vector<std::int64_t>& rows,
                              std::uint8_t* out);
  // Decodes one encoded row into row_dim() floats, bit-identical to what
  // gather() would produce for that row.
  virtual void decode_row(const std::uint8_t* enc, float* out) const;
};

// In-memory resolution over a Preprocessed the caller keeps alive (serving
// from the training box, or graphs small enough to pin in RAM).
class MemorySource : public FeatureSource {
 public:
  explicit MemorySource(const core::Preprocessed& pre) : pre_(&pre) {}

  std::size_t num_rows() const override { return pre_->num_nodes(); }
  std::size_t row_dim() const override {
    return pre_->hop_features.size() * pre_->feat_dim();
  }
  void gather(const std::vector<std::int64_t>& rows, Tensor& out) override;
  const char* kind() const override { return "memory"; }

 private:
  const core::Preprocessed* pre_;
};

// Storage-backed resolution: one row-granular read_rows per miss batch.
// Owns the store; reads use pread and are thread-safe.
class FileStoreSource : public FeatureSource {
 public:
  explicit FileStoreSource(loader::FeatureFileStore store)
      : store_(std::move(store)) {}

  std::size_t num_rows() const override { return store_.num_rows(); }
  std::size_t row_dim() const override {
    return store_.num_hops() * store_.hop_dim();
  }
  void gather(const std::vector<std::int64_t>& rows, Tensor& out) override;
  const char* kind() const override { return "file"; }

  // Encoded rows are the store's stored records (fp32: same bytes as the
  // expansion; int8: ~4x smaller, scale headers included).
  std::size_t encoded_row_bytes() const override {
    return store_.row_bytes();
  }
  void gather_encoded(const std::vector<std::int64_t>& rows,
                      std::uint8_t* out) override;
  void decode_row(const std::uint8_t* enc, float* out) const override;

  const loader::FeatureFileStore& store() const { return store_; }

 private:
  loader::FeatureFileStore store_;
};

struct FeatureCacheStats {
  std::size_t accesses = 0;   // row occurrences requested
  std::size_t hits = 0;       // served without a backing read (cached
                              // payload, or a repeat within one batch)
  std::size_t rows_read = 0;  // unique rows fetched from the backing source
  std::size_t resident_rows = 0;   // payload rows held at snapshot time
  std::size_t resident_bytes = 0;  // bytes those payloads occupy — encoded
                                   // size when the backing has a compact
                                   // codec, which is where int8's "4x rows
                                   // per byte budget" shows up
  double hit_rate() const {
    return accesses ? static_cast<double>(hits) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
};

// Payload cache over any backing source, driven by a loader::RowCache
// policy (LRU for popularity drift, StaticCache pinned on degree- or
// frequency-hot rows for a GNNLab-style fixed hot set).  The policy decides
// admission/eviction; this class keeps the actual row bytes — in the
// backing's encoded form when it has one (int8 rows stay int8 while
// resident; every serve decodes, so answers are independent of cache
// state), otherwise as fp32.
class CachedSource : public FeatureSource {
 public:
  CachedSource(std::unique_ptr<FeatureSource> backing,
               std::unique_ptr<loader::RowCache> policy);

  std::size_t num_rows() const override { return backing_->num_rows(); }
  std::size_t row_dim() const override { return backing_->row_dim(); }
  void gather(const std::vector<std::int64_t>& rows, Tensor& out) override;
  const char* kind() const override { return "cached"; }

  FeatureCacheStats stats() const;
  const loader::RowCache& cache_policy() const { return *policy_; }
  // The decorated source (e.g. the FileStoreSource whose store's pread
  // counter the serving bench reads through the cache).
  const FeatureSource& backing() const { return *backing_; }

  // Pre-populates payloads for rows the policy will retain (e.g. a
  // StaticCache pin set) so the first requests already hit.  Fetches the
  // rows from the backing source.
  void warm(const std::vector<std::int64_t>& rows);

  // Peer-to-peer warm-up for replica spin-up: a running replica exports a
  // sample of its hottest resident rows — the bytes as held, i.e. ENCODED
  // when the backing has a compact codec, so int8 and fp32 fleets warm the
  // same way without a decode/re-encode round trip — and a Warming replica
  // admits them without touching the store.  Admission runs the receiver's
  // own policy (rows it declines are dropped) and rejects payloads whose
  // size disagrees with this source's row encoding; returns how many rows
  // became resident.  Neither side's access/hit statistics move: warm
  // traffic is bookkeeping, not workload.
  std::vector<std::pair<std::int64_t, std::vector<std::uint8_t>>>
  export_hot_payloads(std::size_t k) const;
  std::size_t admit_payloads(
      const std::vector<std::pair<std::int64_t, std::vector<std::uint8_t>>>&
          entries);

 private:
  // Bytes one resident row costs (encoded size if the backing has one,
  // else row_dim() floats).
  std::size_t payload_row_bytes() const;
  // Serves out.row(i) from a resident payload.
  void serve_payload(const std::vector<std::uint8_t>& payload, float* out_row,
                     std::size_t dim) const;

  std::unique_ptr<FeatureSource> backing_;
  std::unique_ptr<loader::RowCache> policy_;
  std::unordered_map<std::int64_t, std::vector<std::uint8_t>> payload_;
  FeatureCacheStats stats_;
  mutable std::mutex mu_;
};

// Sums cache statistics across a fleet's per-replica CachedSources (null
// entries skipped) — the hit-rate rollup serve_cli and the serving bench
// both report.
FeatureCacheStats aggregate_cache_stats(
    const std::vector<const CachedSource*>& caches);

}  // namespace ppgnn::serve
