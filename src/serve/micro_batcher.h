// Dynamic micro-batching: coalesce concurrent single-node requests into
// model-sized batches — now with admission control and priority classes.
//
// One forward over b rows costs far less than b forwards over one row (the
// GEMM amortizes weight traffic and the thread-pool fan-out), so the
// classic serving trade applies: hold a request for up to max_delay hoping
// peers arrive, dispatch early when max_batch_size fills.  A single
// dispatcher thread owns the model; intra-batch parallelism comes from the
// kernels' global thread pool (tensor/parallel), so results are
// deterministic regardless of how requests interleave — test_serve proves
// batched output is bit-identical to single-request inference.
//
// Overload is handled in one of two modes:
//
//  * shed_budget == 0 (default, the PR-1 behavior): the admission queue is
//    bounded (queue_capacity) and submit() blocks when full — callers feel
//    backpressure instead of the server melting.
//
//  * shed_budget > 0: explicit load shedding.  Queue delay — how long the
//    oldest queued request has already waited — is the live overload
//    signal.  Past the budget, arrivals are refused with a retriable
//    Rejected verdict instead of queued behind a deadline they can't make,
//    and queued kLow requests that have themselves outlived the budget are
//    dropped from the queue head (drop-head: the longest-waiting sheddable
//    request is the one most likely past its client's deadline anyway).
//    Under sustained overload the kLow queue drains to zero and kHigh
//    arrivals are refused too, so the sheddable class absorbs the overload
//    first but the budget binds for everyone.  The payoff,
//    measured in bench_serving_latency: admitted requests keep a bounded
//    p99 (~budget + one batch's service time) at offered loads where the
//    blocking mode's queue delay grows without bound.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "serve/inference_session.h"
#include "serve/server_stats.h"

namespace ppgnn::serve {

// Two classes are enough for the canonical split: interactive traffic that
// must be answered (kHigh) vs. sheddable background traffic — prefetch,
// retries, speculative requests (kLow).  Classes take effect only with a
// shed budget: in backpressure mode there is no drop policy to back a
// strict-priority drain (queued kLow could starve forever under sustained
// kHigh load), so admission collapses to one FIFO — the PR-1 behavior.
enum class Priority : std::uint8_t { kHigh = 0, kLow = 1 };

// Resolved into a shed request's future, and thrown by the blocking
// submit() on refusal.  Retriable by contract: the server is overloaded
// *now*; the same request succeeds once load drains.  Clients should back
// off and retry rather than treat this as a data error.
class RejectedError : public std::runtime_error {
 public:
  explicit RejectedError(const char* what) : std::runtime_error(what) {}
  bool retriable() const { return true; }
};

struct MicroBatchConfig {
  std::size_t max_batch_size = 64;
  // Longest a request may wait for peers before its batch dispatches.
  std::chrono::microseconds max_delay{200};
  // Admission bound on queued (not yet dispatched) requests.
  std::size_t queue_capacity = 8192;
  // Queue-delay budget for load shedding; zero disables shedding and keeps
  // the blocking-backpressure behavior.
  std::chrono::microseconds shed_budget{0};
};

struct BatchCounters {
  std::size_t requests = 0;  // dispatched into batches
  std::size_t batches = 0;
  std::size_t max_batch_observed = 0;
  // Admission verdicts, maintained by the batcher itself so they exist
  // even when no ServerStats sink is attached.
  AdmissionCounters admission;
  double mean_batch_size() const {
    return batches ? static_cast<double>(requests) /
                         static_cast<double>(batches)
                   : 0.0;
  }
};

// Why a non-throwing submit was refused.  kOverload is the admission
// verdict proper (queue-delay budget or capacity — the client should back
// off).  kDraining is a lifecycle artifact: the replica is being retired
// and was already removed from the routing membership; the submitter
// raced a stale snapshot and should re-route against a fresh one (the
// FleetManager does this transparently).  Draining refusals are therefore
// NOT counted as rejections — the request is not lost, just re-homed —
// so they cannot pollute the shed-rate signal the autoscaler watches.
enum class RejectReason : std::uint8_t { kNone, kOverload, kDraining };

// Outcome of a non-throwing submit.  On rejection `result` is an invalid
// future (valid() == false) — check `accepted` first.
struct Admission {
  bool accepted = false;
  RejectReason reason = RejectReason::kNone;
  std::future<std::vector<float>> result;
};

class MicroBatcher {
 public:
  // stats may be null; when given, per-request latency (submit ->
  // completion), per-batch sizes, and admission verdicts are recorded.
  MicroBatcher(InferenceSession& session, const MicroBatchConfig& cfg,
               ServerStats* stats = nullptr);
  ~MicroBatcher();  // stop() + join

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  // Status-returning admission.  With shedding disabled this blocks for
  // queue space and always accepts (backpressure); with shedding enabled it
  // never blocks — overload returns {accepted = false} immediately.
  // Throws std::runtime_error after stop().
  Admission try_submit(std::int64_t node, Priority pri = Priority::kHigh);

  // Enqueues one request; the future resolves to the node's logits row.
  // Blocks while the queue is at capacity (shedding disabled); with
  // shedding enabled, throws RejectedError when the request is refused.
  // Throws std::runtime_error after stop().
  std::future<std::vector<float>> submit(std::int64_t node,
                                         Priority pri = Priority::kHigh);

  // Convenience closed-loop client call.
  std::vector<float> infer_blocking(std::int64_t node);

  // Enters draining: every subsequent try_submit returns
  // {accepted=false, reason=kDraining} immediately (blocked backpressure
  // waiters wake and return the same), while everything already admitted
  // — kHigh and kLow alike — still dispatches and completes.  The first
  // step of replica retirement: the fleet unpublishes the replica, calls
  // begin_drain() to bounce racing submitters onto a fresh snapshot, then
  // stop() to finish the queue.  Idempotent.
  void begin_drain();
  bool draining() const;

  // Drains everything already admitted, then joins the dispatcher.
  // Idempotent.
  void stop();

  BatchCounters counters() const;
  // Requests admitted but not yet answered: queued (both classes) plus the
  // batch currently in service.  The least-loaded router's load signal —
  // counting the in-service batch is what lets a replica stuck on a slow
  // batch (cold cache, page-cache miss) stop receiving new work.
  std::size_t queue_depth() const;
  // Queued only, in-service excluded — the autoscaler's idle signal.  A
  // healthy replica at moderate load keeps a batch in service almost
  // continuously, so queue_depth() > 0 nearly always; what distinguishes
  // over-provisioning is work *waiting* behind the current batch.
  std::size_t queued() const;

 private:
  struct Pending {
    std::int64_t node = 0;
    std::promise<std::vector<float>> result;
    std::chrono::steady_clock::time_point enqueued;
  };

  void dispatcher_loop();
  // Pops up to max_batch_size requests once the batch window closes, kHigh
  // strictly before kLow.  Returns an empty vector only when stopping with
  // an empty queue.
  std::vector<Pending> next_batch();

  std::size_t queued_locked() const {
    return queues_[0].size() + queues_[1].size();
  }
  // Enqueue time of the oldest queued request (either class); only valid
  // when queued_locked() > 0.
  std::chrono::steady_clock::time_point oldest_enqueued_locked() const;
  bool over_budget_locked(std::chrono::steady_clock::time_point now) const;
  // Drops the head of the kLow queue, failing its future with
  // RejectedError.
  void shed_front_low_locked();

  InferenceSession& session_;
  MicroBatchConfig cfg_;
  ServerStats* stats_;

  mutable std::mutex mu_;
  std::condition_variable cv_arrival_;  // queue became non-empty / stop
  std::condition_variable cv_space_;    // queue has room again
  std::deque<Pending> queues_[2];       // indexed by Priority
  std::size_t in_service_ = 0;          // size of the batch being served
  BatchCounters counters_;
  bool stop_ = false;
  bool draining_ = false;

  std::thread dispatcher_;
};

}  // namespace ppgnn::serve
