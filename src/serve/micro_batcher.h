// Dynamic micro-batching: coalesce concurrent single-node requests into
// model-sized batches.
//
// One forward over b rows costs far less than b forwards over one row (the
// GEMM amortizes weight traffic and the thread-pool fan-out), so the
// classic serving trade applies: hold a request for up to max_delay hoping
// peers arrive, dispatch early when max_batch_size fills.  The admission
// queue is bounded (queue_capacity); submit() blocks when full, which is
// the simplest form of admission control — callers feel backpressure
// instead of the server melting.  A single dispatcher thread owns the
// model; intra-batch parallelism comes from the kernels' global thread pool
// (tensor/parallel), so results are deterministic regardless of how
// requests interleave — test_serve proves batched output is bit-identical
// to single-request inference.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/inference_session.h"
#include "serve/server_stats.h"

namespace ppgnn::serve {

struct MicroBatchConfig {
  std::size_t max_batch_size = 64;
  // Longest a request may wait for peers before its batch dispatches.
  std::chrono::microseconds max_delay{200};
  // Admission bound on queued (not yet dispatched) requests.
  std::size_t queue_capacity = 8192;
};

struct BatchCounters {
  std::size_t requests = 0;
  std::size_t batches = 0;
  std::size_t max_batch_observed = 0;
  double mean_batch_size() const {
    return batches ? static_cast<double>(requests) /
                         static_cast<double>(batches)
                   : 0.0;
  }
};

class MicroBatcher {
 public:
  // stats may be null; when given, per-request latency (submit ->
  // completion) and per-batch sizes are recorded into it.
  MicroBatcher(InferenceSession& session, const MicroBatchConfig& cfg,
               ServerStats* stats = nullptr);
  ~MicroBatcher();  // stop() + join

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  // Enqueues one request; the future resolves to the node's logits row.
  // Blocks while the queue is at capacity.  Throws std::runtime_error after
  // stop().
  std::future<std::vector<float>> submit(std::int64_t node);

  // Convenience closed-loop client call.
  std::vector<float> infer_blocking(std::int64_t node);

  // Drains everything already admitted, then joins the dispatcher.
  // Idempotent.
  void stop();

  BatchCounters counters() const;

 private:
  struct Pending {
    std::int64_t node = 0;
    std::promise<std::vector<float>> result;
    std::chrono::steady_clock::time_point enqueued;
  };

  void dispatcher_loop();
  // Pops up to max_batch_size requests once the batch window closes.
  // Returns an empty vector only when stopping with an empty queue.
  std::vector<Pending> next_batch();

  InferenceSession& session_;
  MicroBatchConfig cfg_;
  ServerStats* stats_;

  mutable std::mutex mu_;
  std::condition_variable cv_arrival_;  // queue became non-empty / stop
  std::condition_variable cv_space_;    // queue has room again
  std::deque<Pending> queue_;
  BatchCounters counters_;
  bool stop_ = false;

  std::thread dispatcher_;
};

}  // namespace ppgnn::serve
