// Dynamic micro-batching: coalesce concurrent requests into model-sized
// batches — with admission control, priority classes, and (API v2)
// deadline-aware shedding over envelope parts.
//
// One forward over b rows costs far less than b forwards over one row (the
// GEMM amortizes weight traffic and the thread-pool fan-out), so the
// classic serving trade applies: hold a request for up to max_delay hoping
// peers arrive, dispatch early when max_batch_size fills.  A single
// dispatcher thread owns the model; intra-batch parallelism comes from the
// kernels' global thread pool (tensor/parallel), so results are
// deterministic regardless of how requests interleave — test_serve proves
// batched output is bit-identical to single-request inference.
//
// The unit of admission is an envelope PART: one (node, slot) of a
// ServeRequest (serve_api.h).  A part carries a shared RequestState — one
// allocation per envelope, not one promise per node — and delivery goes
// through the caller's CompletionQueue when the envelope's last part
// resolves.  The PR-1 future API survives as a thin shim: submit(node)
// wraps a single-node envelope whose sink fulfils a promise.
//
// Overload is handled in one of two modes:
//
//  * shed_budget == 0 (default, the PR-1 behavior): the admission queue is
//    bounded (queue_capacity) and submission blocks when full — callers
//    feel backpressure instead of the server melting.
//
//  * shed_budget > 0: explicit load shedding.  Queue delay — how long the
//    oldest queued request has already waited — is the live overload
//    signal.  Past the budget, arrivals are refused with a retriable
//    verdict instead of queued behind a deadline they can't make, and
//    queued kLow parts that have outlived their EFFECTIVE deadline —
//    min(explicit request deadline, enqueue time + budget) — are dropped
//    from the queue.  Under sustained overload the kLow queue drains to
//    zero and kHigh arrivals are refused too, so the sheddable class
//    absorbs the overload first but the budget binds for everyone.
//
// Deadlines (cfg.deadline_aware, default on) add two behaviors:
//
//  * Dispatch-time shed: a part whose explicit deadline is already blown
//    when its batch is assembled is shed BEFORE compute (status
//    kDeadlineExceeded) instead of burning a batch slot on an answer
//    nobody will read.  This applies to both classes — an explicit client
//    deadline outranks the class contract, which only governs *eviction*
//    (admitted kHigh is still never evicted from the queue).
//
//  * Slack-ordered eviction: when admission must drop a queued kLow part
//    (budget restore, or making room for a kHigh arrival), the victim is
//    the one with the LEAST slack — nearest effective deadline — rather
//    than the FIFO head.  With no explicit deadlines the two orders
//    coincide (enqueue + budget is monotone in enqueue time); with mixed
//    deadlines FIFO evicts requests that could still make it while
//    keeping doomed ones.  bench_serving_latency section 6 measures the
//    difference at 2x saturation.
//
// The shed/eviction decisions are pure functions of (entries, now, budget)
// — see effective_deadline / least_slack_index — so test_serve_api replays
// staged synthetic-clock traces and asserts exact victims.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "serve/inference_session.h"
#include "serve/serve_api.h"
#include "serve/server_stats.h"
#include "tenancy/fair_share.h"
#include "tenancy/tenant.h"

namespace ppgnn::serve {

// Resolved into a shed request's future, and thrown by the blocking
// submit() on refusal.  Retriable by contract: the server is overloaded
// *now*; the same request succeeds once load drains.  Clients should back
// off and retry rather than treat this as a data error.
class RejectedError : public std::runtime_error {
 public:
  explicit RejectedError(const char* what) : std::runtime_error(what) {}
  bool retriable() const { return true; }
};

struct MicroBatchConfig {
  std::size_t max_batch_size = 64;
  // Longest a request may wait for peers before its batch dispatches.
  std::chrono::microseconds max_delay{200};
  // Admission bound on queued (not yet dispatched) parts.
  std::size_t queue_capacity = 8192;
  // Queue-delay budget for load shedding; zero disables shedding and keeps
  // the blocking-backpressure behavior.
  std::chrono::microseconds shed_budget{0};
  // Off = the PR-2 baseline: eviction in FIFO order, no dispatch-time
  // deadline shed (blown deadlines still complete and are *counted* as
  // misses — the bench's comparison arm).
  bool deadline_aware = true;
  // Time source for admission stamps, window closes and stage timings;
  // null = the real steady clock (serve/clock.h).  The dispatcher's
  // condition-variable waits stay real-time regardless — see clock.h for
  // why a sim-clocked batcher dispatches eagerly.
  const Clock* clock = nullptr;
  // Tenant contract table for fair-share batch composition (src/tenancy/).
  // When set, each priority class drains its per-tenant sub-queues by
  // deficit-weighted round-robin using the registry's weights; null (the
  // default) leaves every tenant at weight 1, which for a single-tenant
  // stream is exactly the old global FIFO.  Quota enforcement does NOT
  // live here — that's the fleet front's TenantAdmission; the batcher only
  // arbitrates order among already-admitted parts.
  const tenancy::TenantRegistry* tenants = nullptr;
};

struct BatchCounters {
  std::size_t requests = 0;  // parts dispatched into batches
  std::size_t batches = 0;
  std::size_t max_batch_observed = 0;
  // Admission verdicts, maintained by the batcher itself so they exist
  // even when no ServerStats sink is attached.
  AdmissionCounters admission;
  double mean_batch_size() const {
    return batches ? static_cast<double>(requests) /
                         static_cast<double>(batches)
                   : 0.0;
  }
};

// Why a non-throwing submit was refused.  kOverload is the admission
// verdict proper (queue-delay budget or capacity — the client should back
// off); kDeadline means the request's deadline had already passed at
// submit time.  kDraining is a lifecycle artifact: the replica is being
// retired and was already removed from the routing membership; the
// submitter raced a stale snapshot and should re-route against a fresh
// one (the FleetManager does this transparently).  Draining refusals are
// therefore NOT counted as rejections — the request is not lost, just
// re-homed — so they cannot pollute the shed-rate signal the autoscaler
// watches.
enum class RejectReason : std::uint8_t {
  kNone,
  kOverload,
  kDeadline,
  kDraining
};

// Outcome of a non-throwing legacy submit.  On rejection `result` is an
// invalid future (valid() == false) — check `accepted` first.
struct Admission {
  bool accepted = false;
  RejectReason reason = RejectReason::kNone;
  std::future<std::vector<float>> result;
};

// --- Pure slack policy -----------------------------------------------------
// Clock-injected and side-effect free, so the eviction order is testable
// deterministically (test_serve_api stages traces with synthetic
// time_points).

struct SlackView {
  std::chrono::steady_clock::time_point enqueued{};
  // Explicit request deadline; time_point::max() = none.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

// The deadline the shed policy orders on: the explicit one when given,
// capped by enqueue + budget (the implicit client patience the queue-delay
// budget has always modeled).  With budget <= 0 only the explicit deadline
// binds.
std::chrono::steady_clock::time_point effective_deadline(
    const SlackView& e, std::chrono::steady_clock::duration budget);

// Index of the least-slack entry — nearest effective deadline, ties to the
// lowest index (oldest first under FIFO enqueue order) — or SIZE_MAX when
// empty.  This is the eviction victim order; with no explicit deadlines it
// degenerates to drop-head FIFO.
std::size_t least_slack_index(const std::vector<SlackView>& entries,
                              std::chrono::steady_clock::duration budget);

class MicroBatcher {
 public:
  // stats may be null; when given, per-part latency (submit -> completion),
  // per-batch sizes, admission verdicts, deadline misses and per-stage
  // timings are recorded.
  MicroBatcher(InferenceSession& session, const MicroBatchConfig& cfg,
               ServerStats* stats = nullptr);
  ~MicroBatcher();  // stop() + join

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  // --- API v2: envelope parts --------------------------------------------
  // Admits parts `slots[0..n)` of `state`'s request as one sub-batch,
  // all-or-nothing.  Returns kNone when admitted.  On every TERMINAL
  // refusal (kOverload -> parts finished kShed; kDeadline -> parts
  // finished kDeadlineExceeded) the batcher resolves the parts itself —
  // delivery happens through the envelope's queue/sink as usual.  Only
  // kDraining leaves the parts untouched: the caller re-routes them
  // against a fresh membership snapshot.  With shedding disabled this
  // blocks for queue space (backpressure) and only refuses on draining —
  // except a sub-batch larger than queue_capacity, which can never be
  // admitted and is refused kOverload in either mode (never blocks,
  // never throws: the exactly-one-response contract holds even for a
  // misconfigured giant envelope).  Throws std::runtime_error after
  // stop().
  RejectReason try_submit_parts(const std::shared_ptr<RequestState>& state,
                                const std::uint32_t* slots, std::size_t n);

  // --- PR-1 compatibility shims over a single-node envelope --------------
  // Status-returning admission; the future resolves to the node's logits
  // row, or throws RejectedError if the part is later shed.
  Admission try_submit(std::int64_t node, Priority pri = Priority::kHigh);
  // Throwing form: RejectedError on refusal (shedding enabled only).
  std::future<std::vector<float>> submit(std::int64_t node,
                                         Priority pri = Priority::kHigh);
  // Convenience closed-loop client call.
  std::vector<float> infer_blocking(std::int64_t node);

  // Enters draining: every subsequent submission returns kDraining
  // immediately (blocked backpressure waiters wake and return the same),
  // while everything already admitted — kHigh and kLow alike — still
  // dispatches and completes.  The first step of replica retirement: the
  // fleet unpublishes the replica, calls begin_drain() to bounce racing
  // submitters onto a fresh snapshot, then stop() to finish the queue.
  // Idempotent.
  void begin_drain();
  bool draining() const;

  // Drains everything already admitted, then joins the dispatcher.
  // Idempotent.
  void stop();

  BatchCounters counters() const;
  // Parts admitted but not yet answered: queued (both classes) plus the
  // batch currently in service.  The least-loaded router's load signal —
  // counting the in-service batch is what lets a replica stuck on a slow
  // batch (cold cache, page-cache miss) stop receiving new work.
  std::size_t queue_depth() const;
  // Queued only, in-service excluded — the autoscaler's idle signal.  A
  // healthy replica at moderate load keeps a batch in service almost
  // continuously, so queue_depth() > 0 nearly always; what distinguishes
  // over-provisioning is work *waiting* behind the current batch.
  std::size_t queued() const;

 private:
  // One envelope part in the queue.  enqueued/deadline/tenant are
  // duplicated out of the shared state so the shed policy never chases the
  // pointer.
  struct Pending {
    std::int64_t node = 0;
    std::uint32_t slot = 0;
    std::uint32_t tenant = 0;
    std::shared_ptr<RequestState> state;
    std::chrono::steady_clock::time_point enqueued{};
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
  };

  // One priority class's admission queue: FIFO per tenant, tenants
  // arbitrated by DWRR at pop time.  std::map keeps tenant iteration
  // deterministic (sweeps, eviction scans, expiry recomputes all walk
  // tenants in ascending id order — same order every run).  `size` is
  // maintained on every push/pop/erase so queued_locked() stays O(1).
  struct ClassQueue {
    std::map<std::uint32_t, std::deque<Pending>> by_tenant;
    tenancy::DwrrScheduler sched;
    std::size_t size = 0;
    bool empty() const { return size == 0; }
  };

  void dispatcher_loop();
  // Pops up to max_batch_size parts once the batch window closes, kHigh
  // strictly before kLow; deadline-blown parts (deadline_aware) are moved
  // to `expired` instead of the batch.  Returns an empty batch only when
  // stopping with an empty queue.  `pop_time` is when the batch closed.
  std::vector<Pending> next_batch(std::vector<Pending>* expired,
                                  std::chrono::steady_clock::time_point* pop_time);

  std::size_t queued_locked() const {
    return queues_[0].size + queues_[1].size;
  }
  // Appends `p` to its tenant's sub-queue in class `cq`, arming the tenant
  // in the DWRR ring if its queue was empty.
  static void push_locked(ClassQueue& cq, Pending&& p);
  // Pops the next part per the class's DWRR order; `weight_of` maps tenant
  // id -> weight.  Requires a non-empty class.
  template <typename WeightFn>
  Pending pop_next_locked(ClassQueue& cq, WeightFn&& weight_of);
  // Enqueue time of the oldest queued part (either class); only valid
  // when queued_locked() > 0.
  std::chrono::steady_clock::time_point oldest_enqueued_locked() const;
  bool over_budget_locked(std::chrono::steady_clock::time_point now) const;
  // Removes expired kLow parts (effective deadline passed) into *victims.
  // Cheap when nothing expired: gated on low_next_expiry_.
  void sweep_expired_low_locked(std::chrono::steady_clock::time_point now,
                                std::vector<Pending>* victims);
  // Removes the GLOBALLY least-slack (deadline_aware) or globally oldest
  // (FIFO) kLow part — scanned across every tenant sub-queue, never just
  // one tenant's head — into *victims.  Requires a non-empty kLow class.
  void evict_one_low_locked(std::vector<Pending>* victims);
  void recompute_low_expiry_locked();
  // Resolves shed parts (outside the lock) and records the stats — the
  // admission wait of a shed part is recorded too, so the shed-latency
  // column is honest, not zero.
  void finish_shed(std::vector<Pending>& victims,
                   std::chrono::steady_clock::time_point now);

  InferenceSession& session_;
  MicroBatchConfig cfg_;
  ServerStats* stats_;

  mutable std::mutex mu_;
  std::condition_variable cv_arrival_;  // queue became non-empty / stop
  std::condition_variable cv_space_;    // queue has room again
  ClassQueue queues_[2];                // indexed by Priority
  // Earliest effective deadline among queued kLow parts; max() when none.
  // Lets the arrival path skip the expiry sweep in O(1) when nothing can
  // have expired yet.
  std::chrono::steady_clock::time_point low_next_expiry_ =
      std::chrono::steady_clock::time_point::max();
  std::size_t in_service_ = 0;  // size of the batch being served
  BatchCounters counters_;
  bool stop_ = false;
  bool draining_ = false;

  std::thread dispatcher_;
};

}  // namespace ppgnn::serve
