#include "serve/workload.h"

#include <cmath>
#include <functional>
#include <numeric>
#include <stdexcept>

#include "graph/generator.h"
#include "tensor/rng.h"

namespace ppgnn::serve {

namespace {

// Rank -> node id permutation shared by zipf_stream and zipf_hot_set:
// same (num_nodes, seed) -> same popularity assignment.
std::vector<std::int64_t> rank_to_node(std::size_t n, std::uint64_t seed) {
  std::vector<std::int64_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::int64_t{0});
  Rng rng(seed);
  rng.shuffle(perm);
  return perm;
}

}  // namespace

std::vector<std::int64_t> zipf_stream(const ZipfWorkloadConfig& cfg) {
  if (cfg.num_nodes == 0) {
    throw std::invalid_argument("zipf_stream: num_nodes must be > 0");
  }
  std::vector<double> weights(cfg.num_nodes);
  for (std::size_t r = 0; r < cfg.num_nodes; ++r) {
    weights[r] = std::pow(static_cast<double>(r + 1), -cfg.skew);
  }
  const graph::AliasTable table(weights);
  const auto perm = rank_to_node(cfg.num_nodes, cfg.seed);
  Rng rng(cfg.seed + 0x5e1ec7ed);
  std::vector<std::int64_t> stream;
  stream.reserve(cfg.num_requests);
  for (std::size_t i = 0; i < cfg.num_requests; ++i) {
    stream.push_back(perm[table.sample(rng)]);
  }
  return stream;
}

std::vector<std::int64_t> degree_stream(const graph::CsrGraph& g,
                                        std::size_t num_requests,
                                        std::uint64_t seed) {
  std::vector<double> weights(g.num_nodes());
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    weights[v] =
        static_cast<double>(g.degree(static_cast<graph::NodeId>(v)) + 1);
  }
  const graph::AliasTable table(weights);
  Rng rng(seed);
  std::vector<std::int64_t> stream;
  stream.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i) {
    stream.push_back(static_cast<std::int64_t>(table.sample(rng)));
  }
  return stream;
}

std::vector<std::int64_t> zipf_hot_set(const ZipfWorkloadConfig& cfg,
                                       std::size_t k) {
  const auto perm = rank_to_node(cfg.num_nodes, cfg.seed);
  const std::size_t take = std::min(k, perm.size());
  return std::vector<std::int64_t>(perm.begin(), perm.begin() + take);
}

// Shared emitter: walks t over [0, span) integrating rate(t) and emits an
// event each time the accumulated mass crosses a whole arrival.  The
// integration step is fine enough (1ms) that the realized envelope tracks
// rate(t) to well under a batching window.
std::vector<TraceEvent> trace_from_rate(
    const TraceMixConfig& mix, double span_seconds,
    const std::function<double(double)>& rate) {
  if (mix.num_nodes == 0) {
    throw std::invalid_argument("trace_from_rate: num_nodes must be > 0");
  }
  if (mix.batch_nodes == 0) {
    throw std::invalid_argument("trace_from_rate: batch_nodes must be > 0");
  }
  std::vector<double> weights(mix.num_nodes);
  for (std::size_t r = 0; r < mix.num_nodes; ++r) {
    weights[r] = std::pow(static_cast<double>(r + 1), -mix.skew);
  }
  const graph::AliasTable table(weights);
  const auto perm = rank_to_node(mix.num_nodes, mix.seed);
  Rng rng(mix.seed + 0xd1ca7e5ULL);

  std::vector<TraceEvent> trace;
  const double dt = 1e-3;  // integration step, seconds
  double mass = 0;         // fractional arrivals accumulated
  for (double t = 0; t < span_seconds; t += dt) {
    mass += std::max(0.0, rate(t)) * dt;
    while (mass >= 1.0) {
      mass -= 1.0;
      TraceEvent e;
      // Arrivals within one step spread evenly by their remaining mass.
      e.t_us = static_cast<std::uint64_t>(t * 1e6);
      e.priority = rng.bernoulli(mix.low_frac) ? Priority::kLow
                                               : Priority::kHigh;
      e.deadline_us = mix.deadline_us;
      e.tenant = mix.tenants > 1
                     ? static_cast<std::uint32_t>(rng.uniform_int(mix.tenants))
                     : 0;
      e.nodes.reserve(mix.batch_nodes);
      for (std::size_t i = 0; i < mix.batch_nodes; ++i) {
        e.nodes.push_back(perm[table.sample(rng)]);
      }
      trace.push_back(std::move(e));
    }
  }
  return trace;
}

double diurnal_rate_at(const DiurnalTraceConfig& cfg, double t_seconds) {
  // One full sinusoidal day over the span, crest at peak_at * span.
  const double phase =
      2.0 * M_PI * (t_seconds / cfg.span_seconds - cfg.peak_at);
  const double mid = 0.5 * (cfg.base_rps + cfg.peak_rps);
  const double amp = 0.5 * (cfg.peak_rps - cfg.base_rps);
  return mid + amp * std::cos(phase);
}

std::vector<TraceEvent> diurnal_trace(const DiurnalTraceConfig& cfg) {
  return trace_from_rate(cfg.mix, cfg.span_seconds,
                    [&cfg](double t) { return diurnal_rate_at(cfg, t); });
}

double burst_rate_at(const BurstTraceConfig& cfg, double t_seconds) {
  const double within =
      cfg.burst_every_seconds > 0
          ? std::fmod(t_seconds, cfg.burst_every_seconds)
          : cfg.burst_seconds;  // no period -> permanently bursting
  const bool bursting = within < cfg.burst_seconds;
  return cfg.base_rps * (bursting ? cfg.burst_mult : 1.0);
}

std::vector<TraceEvent> burst_trace(const BurstTraceConfig& cfg) {
  return trace_from_rate(cfg.mix, cfg.span_seconds,
                    [&cfg](double t) { return burst_rate_at(cfg, t); });
}

std::vector<std::int64_t> first_unique(const std::vector<std::int64_t>& stream,
                                       std::size_t limit,
                                       std::size_t num_nodes) {
  std::vector<std::int64_t> sample;
  std::vector<bool> seen(num_nodes, false);
  for (const auto node : stream) {
    if (sample.size() >= limit) break;
    if (node < 0 || static_cast<std::size_t>(node) >= num_nodes) {
      throw std::out_of_range("first_unique: node id out of range");
    }
    if (seen[static_cast<std::size_t>(node)]) continue;
    seen[static_cast<std::size_t>(node)] = true;
    sample.push_back(node);
  }
  return sample;
}

}  // namespace ppgnn::serve
