#include "serve/workload.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "graph/generator.h"
#include "tensor/rng.h"

namespace ppgnn::serve {

namespace {

// Rank -> node id permutation shared by zipf_stream and zipf_hot_set:
// same (num_nodes, seed) -> same popularity assignment.
std::vector<std::int64_t> rank_to_node(std::size_t n, std::uint64_t seed) {
  std::vector<std::int64_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::int64_t{0});
  Rng rng(seed);
  rng.shuffle(perm);
  return perm;
}

}  // namespace

std::vector<std::int64_t> zipf_stream(const ZipfWorkloadConfig& cfg) {
  if (cfg.num_nodes == 0) {
    throw std::invalid_argument("zipf_stream: num_nodes must be > 0");
  }
  std::vector<double> weights(cfg.num_nodes);
  for (std::size_t r = 0; r < cfg.num_nodes; ++r) {
    weights[r] = std::pow(static_cast<double>(r + 1), -cfg.skew);
  }
  const graph::AliasTable table(weights);
  const auto perm = rank_to_node(cfg.num_nodes, cfg.seed);
  Rng rng(cfg.seed + 0x5e1ec7ed);
  std::vector<std::int64_t> stream;
  stream.reserve(cfg.num_requests);
  for (std::size_t i = 0; i < cfg.num_requests; ++i) {
    stream.push_back(perm[table.sample(rng)]);
  }
  return stream;
}

std::vector<std::int64_t> degree_stream(const graph::CsrGraph& g,
                                        std::size_t num_requests,
                                        std::uint64_t seed) {
  std::vector<double> weights(g.num_nodes());
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    weights[v] =
        static_cast<double>(g.degree(static_cast<graph::NodeId>(v)) + 1);
  }
  const graph::AliasTable table(weights);
  Rng rng(seed);
  std::vector<std::int64_t> stream;
  stream.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i) {
    stream.push_back(static_cast<std::int64_t>(table.sample(rng)));
  }
  return stream;
}

std::vector<std::int64_t> zipf_hot_set(const ZipfWorkloadConfig& cfg,
                                       std::size_t k) {
  const auto perm = rank_to_node(cfg.num_nodes, cfg.seed);
  const std::size_t take = std::min(k, perm.size());
  return std::vector<std::int64_t>(perm.begin(), perm.begin() + take);
}

std::vector<std::int64_t> first_unique(const std::vector<std::int64_t>& stream,
                                       std::size_t limit,
                                       std::size_t num_nodes) {
  std::vector<std::int64_t> sample;
  std::vector<bool> seen(num_nodes, false);
  for (const auto node : stream) {
    if (sample.size() >= limit) break;
    if (node < 0 || static_cast<std::size_t>(node) >= num_nodes) {
      throw std::out_of_range("first_unique: node id out of range");
    }
    if (seen[static_cast<std::size_t>(node)]) continue;
    seen[static_cast<std::size_t>(node)] = true;
    sample.push_back(node);
  }
  return sample;
}

}  // namespace ppgnn::serve
