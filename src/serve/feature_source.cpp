#include "serve/feature_source.h"

#include <cstring>
#include <stdexcept>

namespace ppgnn::serve {

namespace {

void check_rows(const std::vector<std::int64_t>& rows, std::size_t n) {
  for (const auto r : rows) {
    if (r < 0 || static_cast<std::size_t>(r) >= n) {
      throw std::out_of_range("FeatureSource: node id out of range");
    }
  }
}

}  // namespace

void FeatureSource::gather_encoded(const std::vector<std::int64_t>& rows,
                                   std::uint8_t* out) {
  (void)rows;
  (void)out;
  throw std::logic_error("FeatureSource: no encoded form (kind=" +
                         std::string(kind()) + ")");
}

void FeatureSource::decode_row(const std::uint8_t* enc, float* out) const {
  (void)enc;
  (void)out;
  throw std::logic_error("FeatureSource: no encoded form (kind=" +
                         std::string(kind()) + ")");
}

void MemorySource::gather(const std::vector<std::int64_t>& rows, Tensor& out) {
  check_rows(rows, num_rows());
  out = pre_->expanded_rows(rows);
}

void FileStoreSource::gather(const std::vector<std::int64_t>& rows,
                             Tensor& out) {
  check_rows(rows, num_rows());
  if (out.ndim() != 2 || out.rows() != rows.size() ||
      out.cols() != row_dim()) {
    out = Tensor({rows.size(), row_dim()});
  }
  store_.read_rows(rows, out);
}

void FileStoreSource::gather_encoded(const std::vector<std::int64_t>& rows,
                                     std::uint8_t* out) {
  check_rows(rows, num_rows());
  store_.read_rows_encoded(rows, out);
}

void FileStoreSource::decode_row(const std::uint8_t* enc, float* out) const {
  store_.decode_row(enc, out);
}

CachedSource::CachedSource(std::unique_ptr<FeatureSource> backing,
                           std::unique_ptr<loader::RowCache> policy)
    : backing_(std::move(backing)), policy_(std::move(policy)) {
  if (!backing_ || !policy_) {
    throw std::invalid_argument("CachedSource: null backing or policy");
  }
}

std::size_t CachedSource::payload_row_bytes() const {
  const std::size_t enc = backing_->encoded_row_bytes();
  return enc ? enc : backing_->row_dim() * sizeof(float);
}

void CachedSource::serve_payload(const std::vector<std::uint8_t>& payload,
                                 float* out_row, std::size_t dim) const {
  if (backing_->encoded_row_bytes()) {
    backing_->decode_row(payload.data(), out_row);
  } else {
    std::memcpy(out_row, payload.data(), dim * sizeof(float));
  }
}

void CachedSource::gather(const std::vector<std::int64_t>& rows, Tensor& out) {
  const std::size_t dim = row_dim();
  const bool encoded = backing_->encoded_row_bytes() > 0;
  if (out.ndim() != 2 || out.rows() != rows.size() || out.cols() != dim) {
    out = Tensor({rows.size(), dim});
  }
  // Pass 1 (under the lock): run the policy, serve payload hits, and group
  // misses by unique row (a row requested twice in one batch is fetched
  // once).
  std::vector<std::int64_t> miss_rows;
  std::unordered_map<std::int64_t, std::vector<std::size_t>> miss_positions;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const std::int64_t r = rows[i];
      ++stats_.accesses;
      std::int64_t evicted = -1;
      policy_->access(r, &evicted);
      if (evicted >= 0) payload_.erase(evicted);
      const auto it = payload_.find(r);
      if (it != payload_.end()) {
        ++stats_.hits;
        serve_payload(it->second, out.row(i), dim);
        continue;
      }
      auto& positions = miss_positions[r];
      if (positions.empty()) {
        miss_rows.push_back(r);
      } else {
        ++stats_.hits;  // repeat within the batch: served without a re-read
      }
      positions.push_back(i);
    }
  }
  if (miss_rows.empty()) return;
  // Pass 2 (no lock): one backing fetch for all unique misses — encoded
  // when the backing has a compact form (hit and miss then decode the same
  // bytes), fp32 otherwise.
  const std::size_t prb = payload_row_bytes();
  std::vector<std::uint8_t> fetched(miss_rows.size() * prb);
  if (encoded) {
    backing_->gather_encoded(miss_rows, fetched.data());
  } else {
    Tensor rows_f32({miss_rows.size(), dim});
    backing_->gather(miss_rows, rows_f32);
    std::memcpy(fetched.data(), rows_f32.data(), fetched.size());
  }
  // Pass 3 (under the lock): scatter to output and retain payloads the
  // policy admitted (StaticCache declines non-pinned rows; LRU admits all).
  std::lock_guard<std::mutex> lk(mu_);
  stats_.rows_read += miss_rows.size();
  for (std::size_t m = 0; m < miss_rows.size(); ++m) {
    const std::int64_t r = miss_rows[m];
    const std::uint8_t* enc_row = fetched.data() + m * prb;
    for (const std::size_t i : miss_positions[r]) {
      if (encoded) {
        backing_->decode_row(enc_row, out.row(i));
      } else {
        std::memcpy(out.row(i), enc_row, dim * sizeof(float));
      }
    }
    if (policy_->resident(r)) {
      payload_[r].assign(enc_row, enc_row + prb);
    }
  }
}

FeatureCacheStats CachedSource::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  FeatureCacheStats s = stats_;
  s.resident_rows = payload_.size();
  s.resident_bytes = payload_.size() * payload_row_bytes();
  return s;
}

void CachedSource::warm(const std::vector<std::int64_t>& rows) {
  if (rows.empty()) return;
  const std::size_t prb = payload_row_bytes();
  const bool encoded = backing_->encoded_row_bytes() > 0;
  std::vector<std::uint8_t> fetched(rows.size() * prb);
  if (encoded) {
    backing_->gather_encoded(rows, fetched.data());
  } else {
    Tensor rows_f32({rows.size(), row_dim()});
    backing_->gather(rows, rows_f32);
    std::memcpy(fetched.data(), rows_f32.data(), fetched.size());
  }
  std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::int64_t evicted = -1;
    policy_->access(rows[i], &evicted);
    if (evicted >= 0) payload_.erase(evicted);
    if (policy_->resident(rows[i])) {
      payload_[rows[i]].assign(fetched.data() + i * prb,
                               fetched.data() + (i + 1) * prb);
    }
  }
}

std::vector<std::pair<std::int64_t, std::vector<std::uint8_t>>>
CachedSource::export_hot_payloads(std::size_t k) const {
  std::vector<std::pair<std::int64_t, std::vector<std::uint8_t>>> out;
  std::lock_guard<std::mutex> lk(mu_);
  const auto hot = policy_->hot_rows(k);
  out.reserve(hot.size());
  for (const auto row : hot) {
    const auto it = payload_.find(row);
    // The policy may consider a row hot whose payload was declined or
    // dropped (StaticCache pins without bytes until first touch); only
    // rows with bytes on hand are exportable.
    if (it != payload_.end()) out.emplace_back(row, it->second);
  }
  return out;
}

std::size_t CachedSource::admit_payloads(
    const std::vector<std::pair<std::int64_t, std::vector<std::uint8_t>>>&
        entries) {
  const std::size_t prb = payload_row_bytes();
  std::size_t admitted = 0;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [row, bytes] : entries) {
    if (bytes.size() != prb) {
      throw std::invalid_argument(
          "CachedSource::admit_payloads: payload size disagrees with this "
          "source's row encoding (peer fleet built over a different codec?)");
    }
    if (row < 0 || static_cast<std::size_t>(row) >= backing_->num_rows()) {
      throw std::out_of_range("CachedSource::admit_payloads: row id");
    }
    std::int64_t evicted = -1;
    policy_->access(row, &evicted);
    if (evicted >= 0) payload_.erase(evicted);
    if (policy_->resident(row)) {
      payload_[row] = bytes;
      ++admitted;
    }
  }
  return admitted;
}

FeatureCacheStats aggregate_cache_stats(
    const std::vector<const CachedSource*>& caches) {
  FeatureCacheStats total;
  for (const auto* c : caches) {
    if (!c) continue;
    const FeatureCacheStats s = c->stats();
    total.accesses += s.accesses;
    total.hits += s.hits;
    total.rows_read += s.rows_read;
    total.resident_rows += s.resident_rows;
    total.resident_bytes += s.resident_bytes;
  }
  return total;
}

}  // namespace ppgnn::serve
