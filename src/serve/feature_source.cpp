#include "serve/feature_source.h"

#include <cstring>
#include <stdexcept>

namespace ppgnn::serve {

namespace {

void check_rows(const std::vector<std::int64_t>& rows, std::size_t n) {
  for (const auto r : rows) {
    if (r < 0 || static_cast<std::size_t>(r) >= n) {
      throw std::out_of_range("FeatureSource: node id out of range");
    }
  }
}

}  // namespace

void MemorySource::gather(const std::vector<std::int64_t>& rows, Tensor& out) {
  check_rows(rows, num_rows());
  out = pre_->expanded_rows(rows);
}

void FileStoreSource::gather(const std::vector<std::int64_t>& rows,
                             Tensor& out) {
  check_rows(rows, num_rows());
  if (out.ndim() != 2 || out.rows() != rows.size() ||
      out.cols() != row_dim()) {
    out = Tensor({rows.size(), row_dim()});
  }
  store_.read_rows(rows, out);
}

CachedSource::CachedSource(std::unique_ptr<FeatureSource> backing,
                           std::unique_ptr<loader::RowCache> policy)
    : backing_(std::move(backing)), policy_(std::move(policy)) {
  if (!backing_ || !policy_) {
    throw std::invalid_argument("CachedSource: null backing or policy");
  }
}

void CachedSource::gather(const std::vector<std::int64_t>& rows, Tensor& out) {
  const std::size_t dim = row_dim();
  if (out.ndim() != 2 || out.rows() != rows.size() || out.cols() != dim) {
    out = Tensor({rows.size(), dim});
  }
  // Pass 1 (under the lock): run the policy, serve payload hits, and group
  // misses by unique row (a row requested twice in one batch is fetched
  // once).
  std::vector<std::int64_t> miss_rows;
  std::unordered_map<std::int64_t, std::vector<std::size_t>> miss_positions;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const std::int64_t r = rows[i];
      ++stats_.accesses;
      std::int64_t evicted = -1;
      policy_->access(r, &evicted);
      if (evicted >= 0) payload_.erase(evicted);
      const auto it = payload_.find(r);
      if (it != payload_.end()) {
        ++stats_.hits;
        std::memcpy(out.row(i), it->second.data(), dim * sizeof(float));
        continue;
      }
      auto& positions = miss_positions[r];
      if (positions.empty()) {
        miss_rows.push_back(r);
      } else {
        ++stats_.hits;  // repeat within the batch: served without a re-read
      }
      positions.push_back(i);
    }
  }
  if (miss_rows.empty()) return;
  // Pass 2 (no lock): one backing fetch for all unique misses.
  Tensor fetched({miss_rows.size(), dim});
  backing_->gather(miss_rows, fetched);
  // Pass 3 (under the lock): scatter to output and retain payloads the
  // policy admitted (StaticCache declines non-pinned rows; LRU admits all).
  std::lock_guard<std::mutex> lk(mu_);
  stats_.rows_read += miss_rows.size();
  for (std::size_t m = 0; m < miss_rows.size(); ++m) {
    const std::int64_t r = miss_rows[m];
    for (const std::size_t i : miss_positions[r]) {
      std::memcpy(out.row(i), fetched.row(m), dim * sizeof(float));
    }
    if (policy_->resident(r)) {
      payload_[r].assign(fetched.row(m), fetched.row(m) + dim);
    }
  }
}

FeatureCacheStats CachedSource::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void CachedSource::warm(const std::vector<std::int64_t>& rows) {
  if (rows.empty()) return;
  Tensor fetched({rows.size(), row_dim()});
  backing_->gather(rows, fetched);
  std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::int64_t evicted = -1;
    policy_->access(rows[i], &evicted);
    if (evicted >= 0) payload_.erase(evicted);
    if (policy_->resident(rows[i])) {
      payload_[rows[i]].assign(fetched.row(i), fetched.row(i) + row_dim());
    }
  }
}

FeatureCacheStats aggregate_cache_stats(
    const std::vector<const CachedSource*>& caches) {
  FeatureCacheStats total;
  for (const auto* c : caches) {
    if (!c) continue;
    const FeatureCacheStats s = c->stats();
    total.accesses += s.accesses;
    total.hits += s.hits;
    total.rows_read += s.rows_read;
  }
  return total;
}

}  // namespace ppgnn::serve
