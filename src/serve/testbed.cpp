#include "serve/testbed.h"

#include <unistd.h>

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "core/sgc.h"
#include "core/sign.h"
#include "core/trainer.h"

namespace ppgnn::serve {

StagedRampPacer::StagedRampPacer(double baseline_rps, double total_seconds)
    : baseline_rps_(baseline_rps),
      total_seconds_(total_seconds),
      t0_(std::chrono::steady_clock::now()),
      next_submit_(t0_),
      t_end_(t0_ +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(total_seconds))) {
  if (baseline_rps <= 0 || total_seconds <= 0) {
    throw std::invalid_argument(
        "StagedRampPacer: baseline rate and duration must be positive");
  }
}

double StagedRampPacer::rate_at(double elapsed_seconds) const {
  const int phase = std::min(
      2, std::max(0, static_cast<int>(elapsed_seconds / phase_seconds())));
  return kPhaseMult[phase] * baseline_rps_;
}

bool StagedRampPacer::pace() {
  const auto now0 = std::chrono::steady_clock::now();
  if (now0 > t_end_) return false;
  const double rate =
      rate_at(std::chrono::duration<double>(now0 - t0_).count());
  std::this_thread::sleep_until(next_submit_);
  const auto now = std::chrono::steady_clock::now();
  if (next_submit_ < now - std::chrono::milliseconds(1)) {
    next_submit_ = now - std::chrono::milliseconds(1);  // drop, don't bank
  }
  next_submit_ +=
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(1.0 / rate));
  return true;
}

namespace {

std::string scratch_dir() {
  char tmpl[] = "/tmp/ppgnn_serving.XXXXXX";
  if (!::mkdtemp(tmpl)) {
    throw std::runtime_error("ServingTestbed: mkdtemp failed");
  }
  return tmpl;
}

}  // namespace

ServingTestbed::ServingTestbed(const TestbedConfig& cfg) : cfg_(cfg) {
  if (cfg_.nodes == 0 || cfg_.feat_dim == 0 || cfg_.classes == 0) {
    throw std::invalid_argument("ServingTestbed: zero-sized config");
  }
  graph::SbmConfig sc;
  sc.num_nodes = cfg_.nodes;
  sc.num_classes = cfg_.classes;
  sc.avg_degree = cfg_.avg_degree;
  sc.degree_power = cfg_.degree_power;
  sc.seed = cfg_.graph_seed;
  sbm_ = graph::generate_sbm(sc);

  graph::FeatureConfig fc;
  fc.dim = cfg_.feat_dim;
  const Tensor x = graph::generate_features(sbm_.labels, cfg_.classes, fc);
  core::PrecomputeConfig pc;
  pc.hops = cfg_.hops;
  pre_ = core::precompute(sbm_.graph, x, pc);

  dir_ = scratch_dir();
  ckpt_ = dir_ + "/model.ckpt";
  ckpt_fp32_ = dir_ + "/model_fp32.ckpt";
  {
    auto trained = make_model(7);
    core::quick_train(*trained, pre_, sbm_.labels, cfg_.train_epochs);
    save_deployed_model(*trained, ckpt_fp32_);
    save_deployed_model(*trained, ckpt_, cfg_.precision);
  }
  if (cfg_.create_store) {
    loader::FeatureFileStore::create(store_dir(), pre_.hop_features, codec());
  }
}

loader::RowCodec ServingTestbed::codec() const {
  return cfg_.precision == Precision::kInt8 ? loader::RowCodec::kInt8
                                            : loader::RowCodec::kFp32;
}

std::unique_ptr<core::PpModel> ServingTestbed::make_model(
    std::uint64_t seed) const {
  Rng rng(seed);
  if (cfg_.model == "SGC") {
    return std::make_unique<core::Sgc>(cfg_.feat_dim, cfg_.hops,
                                       cfg_.classes, rng);
  }
  if (cfg_.model == "SIGN") {
    core::SignConfig sc;
    sc.feat_dim = cfg_.feat_dim;
    sc.hops = cfg_.hops;
    sc.hidden = cfg_.hidden;
    sc.classes = cfg_.classes;
    sc.mlp_layers = 2;
    sc.dropout = 0.f;
    return std::make_unique<core::Sign>(sc, rng);
  }
  throw std::invalid_argument("ServingTestbed: unknown model " + cfg_.model +
                              " (SGC|SIGN)");
}

ZipfWorkloadConfig ServingTestbed::workload(std::size_t requests) const {
  ZipfWorkloadConfig wc;
  wc.num_nodes = cfg_.nodes;
  wc.num_requests = requests;
  wc.skew = cfg_.skew;
  wc.seed = cfg_.workload_seed;
  return wc;
}

std::vector<std::int64_t> ServingTestbed::stream(std::size_t requests) const {
  return zipf_stream(workload(requests));
}

std::vector<std::int64_t> ServingTestbed::stream(std::size_t requests,
                                                 std::uint64_t seed) const {
  ZipfWorkloadConfig wc = workload(requests);
  wc.seed = seed;
  return zipf_stream(wc);
}

std::vector<std::vector<std::int64_t>> ServingTestbed::group_stream(
    const std::vector<std::int64_t>& stream, std::size_t batch_nodes) {
  if (batch_nodes == 0) {
    throw std::invalid_argument("group_stream: zero batch_nodes");
  }
  std::vector<std::vector<std::int64_t>> groups;
  groups.reserve((stream.size() + batch_nodes - 1) / batch_nodes);
  for (std::size_t i = 0; i < stream.size(); i += batch_nodes) {
    groups.emplace_back(stream.begin() + static_cast<std::ptrdiff_t>(i),
                        stream.begin() + static_cast<std::ptrdiff_t>(
                                             std::min(stream.size(),
                                                      i + batch_nodes)));
  }
  return groups;
}

std::unique_ptr<FeatureSource> ServingTestbed::memory_source() const {
  return std::make_unique<MemorySource>(pre_);
}

std::unique_ptr<FileStoreSource> ServingTestbed::file_source() const {
  if (!cfg_.create_store) {
    throw std::logic_error(
        "ServingTestbed: file_source() needs create_store=true");
  }
  return std::make_unique<FileStoreSource>(loader::FeatureFileStore::open(
      store_dir(), pre_.num_nodes(), pre_.num_hops() + 1, pre_.feat_dim(),
      codec()));
}

FleetBuilder ServingTestbed::fleet_builder(
    FleetBuilder::MakeSource make_source,
    std::uint64_t model_seed_base) const {
  return FleetBuilder(
      ckpt_,
      [this, model_seed_base](std::size_t i) {
        return make_model(model_seed_base + i);
      },
      std::move(make_source), cfg_.precision);
}

}  // namespace ppgnn::serve
