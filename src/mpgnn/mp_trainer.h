// Mini-batch training loop for sampling-based MP-GNNs.
//
// Mirrors the DGL reference loop the paper benchmarks: shuffle train ids
// (SGD-RR), sample blocks per batch, gather input features, forward /
// backward / Adam step, then exact full-graph evaluation.  Also accounts
// per-phase wall time and total feature rows fetched (Appendix I's data
// transfer metric).
#pragma once

#include "core/metrics.h"
#include "graph/dataset.h"
#include "mpgnn/gat.h"
#include "mpgnn/sage.h"
#include "sampling/sampler.h"

namespace ppgnn::mpgnn {

struct MpTrainConfig {
  std::size_t epochs = 50;
  std::size_t batch_size = 1024;
  float lr = 3e-3f;
  float weight_decay = 0.f;
  std::size_t eval_every = 1;   // full-graph eval cadence
  std::uint64_t seed = 7;
};

struct MpTrainResult {
  TrainHistory history;
  sampling::SamplerStats sampler_stats;
};

// Model must provide forward(batch, feats, train), backward(grad),
// collect_params(out) and full_forward(graph, x) — GraphSage and Gat do.
template <typename Model>
MpTrainResult train_mp(Model& model, const graph::Dataset& ds,
                       const sampling::Sampler& sampler,
                       const MpTrainConfig& cfg);

extern template MpTrainResult train_mp<GraphSage>(GraphSage&,
                                                  const graph::Dataset&,
                                                  const sampling::Sampler&,
                                                  const MpTrainConfig&);
extern template MpTrainResult train_mp<Gat>(Gat&, const graph::Dataset&,
                                            const sampling::Sampler&,
                                            const MpTrainConfig&);

}  // namespace ppgnn::mpgnn
