// GraphSAGE with mean aggregation (Hamilton et al., 2017).
//
// Layer: h'_i = h_i W_self + mean_{j in N_sampled(i)} h_j W_neigh + b,
// with ReLU + dropout between layers.  Mini-batch training runs over
// sampled bipartite blocks; evaluation runs layer-wise over the full graph
// (exact inference, as DGL does for reporting accuracy).
#pragma once

#include <memory>
#include <vector>

#include "nn/activations.h"
#include "nn/module.h"
#include "sampling/subgraph.h"
#include "tensor/rng.h"

namespace ppgnn::mpgnn {

using sampling::Block;
using sampling::SampledBatch;

// One SAGE layer over a bipartite block.
class SageLayer {
 public:
  SageLayer(std::size_t in_dim, std::size_t out_dim, Rng& rng);

  // h_src: [block.src_size, in] -> [block.dst_size, out].
  Tensor forward(const Block& block, const Tensor& h_src, bool train);
  // Returns grad w.r.t. h_src; accumulates weight grads.
  Tensor backward(const Tensor& grad_out);
  void collect_params(std::vector<nn::ParamSlot>& out);

  // Full-graph forward: X [n, in] -> [n, out] using exact mean aggregation
  // over g (no sampling).
  Tensor full_forward(const graph::CsrGraph& g, const Tensor& x) const;

 private:
  Tensor w_self_, w_neigh_, bias_;
  Tensor gw_self_, gw_neigh_, gbias_;
  // caches
  const Block* block_ = nullptr;
  Tensor h_src_, agg_;
};

struct SageConfig {
  std::size_t in_dim = 0;
  std::size_t hidden_dim = 256;
  std::size_t out_dim = 0;      // num classes
  std::size_t num_layers = 3;
  float dropout = 0.5f;
};

class GraphSage {
 public:
  GraphSage(const SageConfig& cfg, Rng& rng);

  // Mini-batch: returns logits for the batch seeds.
  Tensor forward(const SampledBatch& batch, const Tensor& input_feats,
                 bool train);
  void backward(const Tensor& grad_logits);
  void collect_params(std::vector<nn::ParamSlot>& out);
  std::size_t num_layers() const { return layers_.size(); }

  // Exact full-graph logits for evaluation.
  Tensor full_forward(const graph::CsrGraph& g, const Tensor& x);

 private:
  std::vector<std::unique_ptr<SageLayer>> layers_;
  std::vector<std::unique_ptr<nn::ReLU>> relus_;
  std::vector<std::unique_ptr<nn::Dropout>> dropouts_;
};

}  // namespace ppgnn::mpgnn
