#include "mpgnn/sage.h"

#include <cmath>
#include <stdexcept>

#include "graph/spmm.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace ppgnn::mpgnn {

namespace {

// agg[i] = (weighted) mean over block edges of h_src rows.
Tensor block_mean_aggregate(const Block& b, const Tensor& h_src) {
  Tensor agg({b.dst_size(), h_src.cols()});
  const std::size_t f = h_src.cols();
  const bool weighted = !b.values.empty();
  parallel_for(b.dst_size(), [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      float* out = agg.row(i);
      const auto lo = b.offsets[i], hi = b.offsets[i + 1];
      if (lo == hi) continue;
      for (auto e = lo; e < hi; ++e) {
        const float* src = h_src.row(static_cast<std::size_t>(b.indices[e]));
        const float w = weighted ? b.values[e] : 1.f;
        for (std::size_t j = 0; j < f; ++j) out[j] += w * src[j];
      }
      if (!weighted) {
        const float inv = 1.f / static_cast<float>(hi - lo);
        for (std::size_t j = 0; j < f; ++j) out[j] *= inv;
      }
    }
  }, 64);
  return agg;
}

// Transpose of block_mean_aggregate: distributes d_agg back to src rows.
void block_mean_aggregate_backward(const Block& b, const Tensor& d_agg,
                                   Tensor& d_src) {
  const std::size_t f = d_agg.cols();
  const bool weighted = !b.values.empty();
  for (std::size_t i = 0; i < b.dst_size(); ++i) {
    const auto lo = b.offsets[i], hi = b.offsets[i + 1];
    if (lo == hi) continue;
    const float inv = weighted ? 1.f : 1.f / static_cast<float>(hi - lo);
    const float* g = d_agg.row(i);
    for (auto e = lo; e < hi; ++e) {
      float* dst = d_src.row(static_cast<std::size_t>(b.indices[e]));
      const float w = weighted ? b.values[e] : inv;
      for (std::size_t j = 0; j < f; ++j) dst[j] += w * g[j];
    }
  }
}

}  // namespace

SageLayer::SageLayer(std::size_t in_dim, std::size_t out_dim, Rng& rng) {
  const float bound = std::sqrt(6.f / static_cast<float>(in_dim + out_dim));
  w_self_ = Tensor::uniform({in_dim, out_dim}, rng, -bound, bound);
  w_neigh_ = Tensor::uniform({in_dim, out_dim}, rng, -bound, bound);
  bias_ = Tensor({out_dim});
  gw_self_ = Tensor({in_dim, out_dim});
  gw_neigh_ = Tensor({in_dim, out_dim});
  gbias_ = Tensor({out_dim});
}

Tensor SageLayer::forward(const Block& block, const Tensor& h_src,
                          bool train) {
  if (h_src.rows() != block.src_size()) {
    throw std::invalid_argument("SageLayer: h_src rows != block src size");
  }
  Tensor agg = block_mean_aggregate(block, h_src);
  // Self rows are the dst prefix of src.
  Tensor y({block.dst_size(), w_self_.cols()});
  // y = h_dst @ W_self: reuse gemm on a prefix view via gather-free trick —
  // h_src's first dst_size rows are exactly h_dst, so make a shallow slice.
  Tensor h_dst({block.dst_size(), h_src.cols()});
  std::copy(h_src.data(), h_src.data() + h_dst.size(), h_dst.data());
  gemm(h_dst, false, w_self_, false, y);
  gemm(agg, false, w_neigh_, false, y, 1.f, 1.f);
  add_row_vector(y, bias_);
  if (train) {
    block_ = &block;
    h_src_ = h_src;
    agg_ = std::move(agg);
  }
  return y;
}

Tensor SageLayer::backward(const Tensor& grad_out) {
  const Block& b = *block_;
  const std::size_t in_dim = w_self_.rows();
  // Weight grads.
  Tensor h_dst({b.dst_size(), in_dim});
  std::copy(h_src_.data(), h_src_.data() + h_dst.size(), h_dst.data());
  gemm(h_dst, true, grad_out, false, gw_self_, 1.f, 1.f);
  gemm(agg_, true, grad_out, false, gw_neigh_, 1.f, 1.f);
  Tensor db({bias_.size()});
  sum_rows(grad_out, db);
  add_inplace(gbias_, db);
  // Input grads.
  Tensor d_src({b.src_size(), in_dim});
  Tensor d_dst = matmul_nt(grad_out, w_self_);
  std::copy(d_dst.data(), d_dst.data() + d_dst.size(), d_src.data());
  Tensor d_agg = matmul_nt(grad_out, w_neigh_);
  block_mean_aggregate_backward(b, d_agg, d_src);
  return d_src;
}

void SageLayer::collect_params(std::vector<nn::ParamSlot>& out) {
  out.push_back({&w_self_, &gw_self_, "sage.w_self"});
  out.push_back({&w_neigh_, &gw_neigh_, "sage.w_neigh"});
  out.push_back({&bias_, &gbias_, "sage.bias"});
}

Tensor SageLayer::full_forward(const graph::CsrGraph& g,
                               const Tensor& x) const {
  // Exact mean over all neighbors.
  std::vector<graph::NodeId> all(g.num_nodes());
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    all[v] = static_cast<graph::NodeId>(v);
  }
  Tensor agg({g.num_nodes(), x.cols()});
  graph::spmm_mean_rows(g, all, x, agg);
  Tensor y = matmul(x, w_self_);
  gemm(agg, false, w_neigh_, false, y, 1.f, 1.f);
  add_row_vector(y, bias_);
  return y;
}

GraphSage::GraphSage(const SageConfig& cfg, Rng& rng) {
  if (cfg.num_layers == 0) throw std::invalid_argument("GraphSage: 0 layers");
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    const std::size_t in = l == 0 ? cfg.in_dim : cfg.hidden_dim;
    const std::size_t out =
        l + 1 == cfg.num_layers ? cfg.out_dim : cfg.hidden_dim;
    layers_.push_back(std::make_unique<SageLayer>(in, out, rng));
    if (l + 1 < cfg.num_layers) {
      relus_.push_back(std::make_unique<nn::ReLU>());
      dropouts_.push_back(std::make_unique<nn::Dropout>(cfg.dropout, rng));
    }
  }
}

Tensor GraphSage::forward(const SampledBatch& batch, const Tensor& input_feats,
                          bool train) {
  if (batch.blocks.size() != layers_.size()) {
    throw std::invalid_argument("GraphSage: block/layer count mismatch");
  }
  Tensor h = input_feats;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    h = layers_[l]->forward(batch.blocks[l], h, train);
    if (l < relus_.size()) {
      h = relus_[l]->forward(h, train);
      h = dropouts_[l]->forward(h, train);
    }
  }
  return h;
}

void GraphSage::backward(const Tensor& grad_logits) {
  Tensor g = grad_logits;
  for (std::size_t l = layers_.size(); l-- > 0;) {
    if (l < relus_.size()) {
      g = dropouts_[l]->backward(g);
      g = relus_[l]->backward(g);
    }
    g = layers_[l]->backward(g);
  }
}

void GraphSage::collect_params(std::vector<nn::ParamSlot>& out) {
  for (auto& l : layers_) l->collect_params(out);
}

Tensor GraphSage::full_forward(const graph::CsrGraph& g, const Tensor& x) {
  Tensor h = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    h = layers_[l]->full_forward(g, h);
    if (l + 1 < layers_.size()) {
      Tensor act(h.shape());
      relu(h, act);
      h = std::move(act);
    }
  }
  return h;
}

}  // namespace ppgnn::mpgnn
