#include "mpgnn/gat.h"

#include <cmath>
#include <stdexcept>

#include "sampling/subgraph.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace ppgnn::mpgnn {

namespace {
inline float leaky(float x, float s) { return x > 0.f ? x : s * x; }
inline float leaky_grad(float x, float s) { return x > 0.f ? 1.f : s; }
}  // namespace

GatLayer::GatLayer(std::size_t in_dim, std::size_t head_dim, std::size_t heads,
                   bool concat, Rng& rng, float negative_slope)
    : head_dim_(head_dim), heads_(heads), concat_(concat),
      slope_(negative_slope) {
  const std::size_t out = heads * head_dim;
  const float bound = std::sqrt(6.f / static_cast<float>(in_dim + out));
  w_ = Tensor::uniform({in_dim, out}, rng, -bound, bound);
  const float abound = std::sqrt(6.f / static_cast<float>(head_dim + 1));
  a_l_ = Tensor::uniform({heads, head_dim}, rng, -abound, abound);
  a_r_ = Tensor::uniform({heads, head_dim}, rng, -abound, abound);
  gw_ = Tensor({in_dim, out});
  ga_l_ = Tensor({heads, head_dim});
  ga_r_ = Tensor({heads, head_dim});
}

Tensor GatLayer::forward(const Block& block, const Tensor& h_src, bool train) {
  if (h_src.rows() != block.src_size()) {
    throw std::invalid_argument("GatLayer: h_src rows != block src size");
  }
  const std::size_t src = block.src_size();
  const std::size_t dst = block.dst_size();
  Tensor z = matmul(h_src, w_);  // [src, heads*head_dim]

  // Attention halves: sl[j,h] = a_l[h] . z_j[h], sr likewise.
  Tensor sl({src, heads_});
  Tensor sr({src, heads_});
  parallel_for(src, [&](std::size_t j0, std::size_t j1) {
    for (std::size_t j = j0; j < j1; ++j) {
      const float* zj = z.row(j);
      for (std::size_t h = 0; h < heads_; ++h) {
        const float* al = a_l_.row(h);
        const float* ar = a_r_.row(h);
        float accl = 0.f, accr = 0.f;
        const float* zh = zj + h * head_dim_;
        for (std::size_t d = 0; d < head_dim_; ++d) {
          accl += al[d] * zh[d];
          accr += ar[d] * zh[d];
        }
        sl.at(j, h) = accl;
        sr.at(j, h) = accr;
      }
    }
  }, 256);

  // Scores over (self + sampled neighbors) per dst; slot layout:
  // for dst i, slots [soff(i), soff(i+1)) where slot 0 is the self edge.
  std::vector<float> alpha((block.num_edges() + dst) * heads_);
  std::vector<float> pre(alpha.size());
  Tensor out({dst, concat_ ? heads_ * head_dim_ : head_dim_});

  parallel_for(dst, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const auto lo = block.offsets[i], hi = block.offsets[i + 1];
      const std::size_t nslots = static_cast<std::size_t>(hi - lo) + 1;
      const std::size_t base = (static_cast<std::size_t>(lo) + i) * heads_;
      for (std::size_t h = 0; h < heads_; ++h) {
        // self edge first (dst prefix invariant: local dst i == local src i)
        float mx = -1e30f;
        for (std::size_t s = 0; s < nslots; ++s) {
          const std::size_t j =
              s == 0 ? i : static_cast<std::size_t>(block.indices[lo + s - 1]);
          const float p = sl.at(i, h) + sr.at(j, h);
          const float v = leaky(p, slope_);
          pre[base + s * heads_ + h] = p;
          alpha[base + s * heads_ + h] = v;
          mx = std::max(mx, v);
        }
        float zsum = 0.f;
        for (std::size_t s = 0; s < nslots; ++s) {
          float& a = alpha[base + s * heads_ + h];
          a = std::exp(a - mx);
          zsum += a;
        }
        const float inv = 1.f / zsum;
        float* orow = out.row(i) + (concat_ ? h * head_dim_ : 0);
        if (concat_ || h == 0) std::fill(orow, orow + head_dim_, 0.f);
        for (std::size_t s = 0; s < nslots; ++s) {
          float& a = alpha[base + s * heads_ + h];
          a *= inv;
          const std::size_t j =
              s == 0 ? i : static_cast<std::size_t>(block.indices[lo + s - 1]);
          const float* zh = z.row(j) + h * head_dim_;
          const float scale = concat_ ? a : a / static_cast<float>(heads_);
          for (std::size_t d = 0; d < head_dim_; ++d) orow[d] += scale * zh[d];
        }
      }
    }
  }, 64);

  if (train) {
    block_ = &block;
    h_src_ = h_src;
    z_ = std::move(z);
    sl_ = std::move(sl);
    sr_ = std::move(sr);
    alpha_ = std::move(alpha);
    pre_ = std::move(pre);
  }
  return out;
}

Tensor GatLayer::backward(const Tensor& grad_out) {
  const Block& b = *block_;
  const std::size_t src = b.src_size();
  const std::size_t dst = b.dst_size();
  Tensor dz({src, heads_ * head_dim_});
  Tensor dsl({src, heads_});
  Tensor dsr({src, heads_});

  // Serial over dst: dz/dsl/dsr writes hit shared src rows.
  std::vector<float> dalpha_buf;
  for (std::size_t i = 0; i < dst; ++i) {
    const auto lo = b.offsets[i], hi = b.offsets[i + 1];
    const std::size_t nslots = static_cast<std::size_t>(hi - lo) + 1;
    const std::size_t base = (static_cast<std::size_t>(lo) + i) * heads_;
    dalpha_buf.resize(nslots);
    for (std::size_t h = 0; h < heads_; ++h) {
      const float* gy = grad_out.row(i) + (concat_ ? h * head_dim_ : 0);
      const float head_scale = concat_ ? 1.f : 1.f / static_cast<float>(heads_);
      // dalpha and dz from the weighted sum.
      float dot = 0.f;
      for (std::size_t s = 0; s < nslots; ++s) {
        const std::size_t j =
            s == 0 ? i : static_cast<std::size_t>(b.indices[lo + s - 1]);
        const float a = alpha_[base + s * heads_ + h];
        const float* zh = z_.row(j) + h * head_dim_;
        float da = 0.f;
        float* dzh = dz.row(j) + h * head_dim_;
        for (std::size_t d = 0; d < head_dim_; ++d) {
          da += gy[d] * zh[d];
          dzh[d] += head_scale * a * gy[d];
        }
        da *= head_scale;
        dalpha_buf[s] = da;
        dot += da * a;
      }
      // Softmax + LeakyReLU backward into the score halves.
      for (std::size_t s = 0; s < nslots; ++s) {
        const std::size_t j =
            s == 0 ? i : static_cast<std::size_t>(b.indices[lo + s - 1]);
        const float a = alpha_[base + s * heads_ + h];
        const float de = a * (dalpha_buf[s] - dot);
        const float dp = de * leaky_grad(pre_[base + s * heads_ + h], slope_);
        dsl.at(i, h) += dp;
        dsr.at(j, h) += dp;
      }
    }
  }

  // dz += dsl * a_l + dsr * a_r; da_l += sum_j dsl[j] z_j; da_r likewise.
  for (std::size_t j = 0; j < src; ++j) {
    float* dzj = dz.row(j);
    const float* zj = z_.row(j);
    for (std::size_t h = 0; h < heads_; ++h) {
      const float dl = dsl.at(j, h);
      const float dr = dsr.at(j, h);
      const float* al = a_l_.row(h);
      const float* ar = a_r_.row(h);
      float* gal = ga_l_.row(h);
      float* gar = ga_r_.row(h);
      float* dzh = dzj + h * head_dim_;
      const float* zh = zj + h * head_dim_;
      for (std::size_t d = 0; d < head_dim_; ++d) {
        dzh[d] += dl * al[d] + dr * ar[d];
        gal[d] += dl * zh[d];
        gar[d] += dr * zh[d];
      }
    }
  }

  gemm(h_src_, true, dz, false, gw_, 1.f, 1.f);
  return matmul_nt(dz, w_);
}

void GatLayer::collect_params(std::vector<nn::ParamSlot>& out) {
  out.push_back({&w_, &gw_, "gat.w"});
  out.push_back({&a_l_, &ga_l_, "gat.a_l"});
  out.push_back({&a_r_, &ga_r_, "gat.a_r"});
}

Gat::Gat(const GatConfig& cfg, Rng& rng) {
  if (cfg.num_layers == 0) throw std::invalid_argument("Gat: 0 layers");
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    const bool last = l + 1 == cfg.num_layers;
    const std::size_t in = l == 0 ? cfg.in_dim : cfg.head_dim * cfg.heads;
    const std::size_t hd = last ? cfg.out_dim : cfg.head_dim;
    layers_.push_back(
        std::make_unique<GatLayer>(in, hd, cfg.heads, /*concat=*/!last, rng));
    if (!last) {
      relus_.push_back(std::make_unique<nn::ReLU>());
      dropouts_.push_back(std::make_unique<nn::Dropout>(cfg.dropout, rng));
    }
  }
}

Tensor Gat::forward(const SampledBatch& batch, const Tensor& input_feats,
                    bool train) {
  if (batch.blocks.size() != layers_.size()) {
    throw std::invalid_argument("Gat: block/layer count mismatch");
  }
  Tensor h = input_feats;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    h = layers_[l]->forward(batch.blocks[l], h, train);
    if (l < relus_.size()) {
      h = relus_[l]->forward(h, train);
      h = dropouts_[l]->forward(h, train);
    }
  }
  return h;
}

void Gat::backward(const Tensor& grad_logits) {
  Tensor g = grad_logits;
  for (std::size_t l = layers_.size(); l-- > 0;) {
    if (l < relus_.size()) {
      g = dropouts_[l]->backward(g);
      g = relus_[l]->backward(g);
    }
    g = layers_[l]->backward(g);
  }
}

void Gat::collect_params(std::vector<nn::ParamSlot>& out) {
  for (auto& l : layers_) l->collect_params(out);
}

Tensor Gat::full_forward(const graph::CsrGraph& g, const Tensor& x) {
  // Full graph as a single self-block: exact attention over every edge.
  std::vector<graph::NodeId> all(g.num_nodes());
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    all[v] = static_cast<graph::NodeId>(v);
  }
  const Block full = sampling::induced_block(g, all);
  Tensor h = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    h = layers_[l]->forward(full, h, /*train=*/false);
    if (l + 1 < layers_.size()) {
      Tensor act(h.shape());
      relu(h, act);
      h = std::move(act);
    }
  }
  return h;
}

}  // namespace ppgnn::mpgnn
