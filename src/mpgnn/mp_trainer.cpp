#include "mpgnn/mp_trainer.h"

#include <chrono>

#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace ppgnn::mpgnn {

namespace {
using Clock = std::chrono::steady_clock;
double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

template <typename Model>
MpTrainResult train_mp(Model& model, const graph::Dataset& ds,
                       const sampling::Sampler& sampler,
                       const MpTrainConfig& cfg) {
  Rng rng(cfg.seed);
  std::vector<nn::ParamSlot> params;
  model.collect_params(params);
  nn::Adam opt(params, cfg.lr, 0.9f, 0.999f, 1e-8f, cfg.weight_decay);

  std::vector<std::int64_t> train_idx = ds.split.train;
  MpTrainResult result;

  for (std::size_t epoch = 1; epoch <= cfg.epochs; ++epoch) {
    const auto t_epoch = Clock::now();
    rng.shuffle(train_idx);
    double loss_sum = 0.0;
    std::size_t batches = 0;
    EpochRecord rec;
    rec.epoch = epoch;

    for (std::size_t pos = 0; pos < train_idx.size();
         pos += cfg.batch_size) {
      const std::size_t end = std::min(pos + cfg.batch_size, train_idx.size());
      std::vector<graph::NodeId> seeds;
      seeds.reserve(end - pos);
      for (std::size_t i = pos; i < end; ++i) {
        seeds.push_back(static_cast<graph::NodeId>(train_idx[i]));
      }

      // Sampling + feature gathering = the MP-GNN "data loading" phase.
      const auto t_load = Clock::now();
      const auto batch = sampler.sample(ds.graph, seeds, rng);
      result.sampler_stats.observe(batch);
      std::vector<std::int64_t> input_ids(batch.input_nodes().begin(),
                                          batch.input_nodes().end());
      const Tensor feats = gather_rows(ds.features, input_ids);
      rec.data_loading_seconds += seconds_since(t_load);

      const auto t_fwd = Clock::now();
      Tensor logits = model.forward(batch, feats, /*train=*/true);
      std::vector<std::int32_t> labels(batch.seeds().size());
      for (std::size_t i = 0; i < labels.size(); ++i) {
        labels[i] = ds.labels[static_cast<std::size_t>(batch.seeds()[i])];
      }
      Tensor grad(logits.shape());
      loss_sum += cross_entropy(logits, labels, grad);
      rec.forward_seconds += seconds_since(t_fwd);

      const auto t_bwd = Clock::now();
      opt.zero_grad();
      model.backward(grad);
      rec.backward_seconds += seconds_since(t_bwd);

      const auto t_opt = Clock::now();
      opt.step();
      rec.optimizer_seconds += seconds_since(t_opt);
      ++batches;
    }
    rec.epoch_seconds = seconds_since(t_epoch);
    rec.train_loss = batches ? loss_sum / static_cast<double>(batches) : 0.0;

    if (epoch % cfg.eval_every == 0 || epoch == cfg.epochs) {
      const Tensor logits = model.full_forward(ds.graph, ds.features);
      rec.val_acc = accuracy(gather_rows(logits, ds.split.valid),
                             ds.labels_at(ds.split.valid));
      rec.test_acc = accuracy(gather_rows(logits, ds.split.test),
                              ds.labels_at(ds.split.test));
    } else if (!result.history.epochs.empty()) {
      rec.val_acc = result.history.epochs.back().val_acc;
      rec.test_acc = result.history.epochs.back().test_acc;
    }
    result.history.epochs.push_back(rec);
  }
  return result;
}

template MpTrainResult train_mp<GraphSage>(GraphSage&, const graph::Dataset&,
                                           const sampling::Sampler&,
                                           const MpTrainConfig&);
template MpTrainResult train_mp<Gat>(Gat&, const graph::Dataset&,
                                     const sampling::Sampler&,
                                     const MpTrainConfig&);

}  // namespace ppgnn::mpgnn
