// Full-batch GCN (Kipf & Welling, ICLR 2017).
//
// The model whose scaling limits motivate this entire literature: every
// layer propagates over the *whole* graph (H' = ReLU(B H W) with
// B = D~^-1/2 (A+I) D~^-1/2), so one training step touches all n nodes and
// all m edges, and activation memory is O(L·n·F) — the baseline against
// which both graph sampling (Section 2.3) and pre-propagation (Section
// 2.5) are escape routes.  On the scaled-down analogues it trains fine and
// gives the no-sampling reference accuracy; `training_bytes()` makes the
// paper-scale infeasibility concrete.
#pragma once

#include <memory>
#include <vector>

#include "graph/csr.h"
#include "nn/module.h"
#include "tensor/rng.h"

namespace ppgnn::mpgnn {

struct GcnConfig {
  std::size_t in_dim = 0;
  std::size_t hidden_dim = 64;
  std::size_t out_dim = 0;
  std::size_t num_layers = 2;
  float dropout = 0.f;  // applied between layers during training
};

class Gcn {
 public:
  // `op` must outlive the model: the normalized operator is shared with
  // preprocessing (graph::sym_normalized) rather than rebuilt per model.
  Gcn(const GcnConfig& cfg, Rng& rng);

  // Full-graph forward: x is [n, in_dim], returns [n, out_dim] logits.
  // train=true caches activations for backward and applies dropout.
  Tensor forward(const graph::CsrGraph& op, const Tensor& x, bool train);

  // Full-graph backward from d(loss)/d(logits).  Relies on the operator
  // being symmetric (B^T = B), which sym_normalized guarantees.
  void backward(const graph::CsrGraph& op, const Tensor& grad_logits);

  void collect_params(std::vector<nn::ParamSlot>& out);
  std::size_t num_params();

  // Activation + parameter bytes for one training step on an n-node,
  // f-feature graph — the quantity that exceeds device memory at paper
  // scale (O(L n F)).
  static std::size_t training_bytes(std::size_t nodes, std::size_t in_dim,
                                    std::size_t hidden, std::size_t layers);

 private:
  GcnConfig cfg_;
  std::vector<Tensor> weights_;       // [layers] of [in, out]
  std::vector<Tensor> grad_weights_;
  // forward caches (train mode): per layer, the propagated input B·H and
  // the pre-activation output.
  std::vector<Tensor> cached_bh_;
  std::vector<Tensor> cached_out_;
  std::vector<std::vector<std::uint8_t>> dropout_masks_;
  Rng dropout_rng_{0x6cf};
};

}  // namespace ppgnn::mpgnn
