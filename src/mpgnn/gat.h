// Graph Attention Network (Velickovic et al., 2018) over sampled blocks.
//
// Per head: e_ij = LeakyReLU(a_l . z_i + a_r . z_j), alpha = softmax over
// j in N_sampled(i) + {i} (an implicit self edge is always included),
// h'_i = sum_j alpha_ij z_j.  Hidden layers concatenate heads; the output
// layer averages them (standard GAT head treatment).
#pragma once

#include <memory>
#include <vector>

#include "nn/activations.h"
#include "nn/module.h"
#include "sampling/subgraph.h"
#include "tensor/rng.h"

namespace ppgnn::mpgnn {

using sampling::Block;
using sampling::SampledBatch;

class GatLayer {
 public:
  // Output dim is head_dim * heads when concat, head_dim otherwise.
  GatLayer(std::size_t in_dim, std::size_t head_dim, std::size_t heads,
           bool concat, Rng& rng, float negative_slope = 0.2f);

  Tensor forward(const Block& block, const Tensor& h_src, bool train);
  Tensor backward(const Tensor& grad_out);
  void collect_params(std::vector<nn::ParamSlot>& out);
  std::size_t out_dim() const { return concat_ ? head_dim_ * heads_ : head_dim_; }

 private:
  std::size_t head_dim_, heads_;
  bool concat_;
  float slope_;
  Tensor w_;             // [in, heads*head_dim]
  Tensor a_l_, a_r_;     // [heads, head_dim]
  Tensor gw_, ga_l_, ga_r_;
  // caches (train)
  const Block* block_ = nullptr;
  Tensor h_src_, z_;             // z: [src, heads*head_dim]
  Tensor sl_, sr_;               // [src, heads] attention halves
  std::vector<float> alpha_;     // per (dst-edge incl. self) per head
  std::vector<float> pre_;       // pre-LeakyReLU scores, same layout
};

struct GatConfig {
  std::size_t in_dim = 0;
  std::size_t head_dim = 128;   // paper: hidden 128 per channel
  std::size_t heads = 4;
  std::size_t out_dim = 0;      // classes
  std::size_t num_layers = 3;
  float dropout = 0.5f;
};

class Gat {
 public:
  Gat(const GatConfig& cfg, Rng& rng);

  Tensor forward(const SampledBatch& batch, const Tensor& input_feats,
                 bool train);
  void backward(const Tensor& grad_logits);
  void collect_params(std::vector<nn::ParamSlot>& out);
  std::size_t num_layers() const { return layers_.size(); }

  // Exact full-graph logits (runs attention over the whole graph).
  Tensor full_forward(const graph::CsrGraph& g, const Tensor& x);

 private:
  std::vector<std::unique_ptr<GatLayer>> layers_;
  std::vector<std::unique_ptr<nn::ReLU>> relus_;
  std::vector<std::unique_ptr<nn::Dropout>> dropouts_;
};

}  // namespace ppgnn::mpgnn
