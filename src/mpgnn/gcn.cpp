#include "mpgnn/gcn.h"

#include <cmath>
#include <stdexcept>

#include "graph/spmm.h"
#include "tensor/ops.h"

namespace ppgnn::mpgnn {

Gcn::Gcn(const GcnConfig& cfg, Rng& rng) : cfg_(cfg) {
  if (cfg.in_dim == 0 || cfg.out_dim == 0 || cfg.num_layers == 0) {
    throw std::invalid_argument("Gcn: in_dim/out_dim/num_layers required");
  }
  weights_.reserve(cfg.num_layers);
  grad_weights_.reserve(cfg.num_layers);
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    const std::size_t in = l == 0 ? cfg.in_dim : cfg.hidden_dim;
    const std::size_t out =
        l + 1 == cfg.num_layers ? cfg.out_dim : cfg.hidden_dim;
    // Glorot-uniform, as in the original GCN.
    Tensor w({in, out});
    const float bound = std::sqrt(6.f / static_cast<float>(in + out));
    for (std::size_t i = 0; i < w.size(); ++i) {
      w.data()[i] = static_cast<float>(rng.uniform(-bound, bound));
    }
    weights_.push_back(std::move(w));
    grad_weights_.emplace_back(Tensor({in, out}));
    grad_weights_.back().zero();
  }
  dropout_rng_ = rng.split(0xd70);
}

Tensor Gcn::forward(const graph::CsrGraph& op, const Tensor& x, bool train) {
  if (x.rows() != op.num_nodes() || x.cols() != cfg_.in_dim) {
    throw std::invalid_argument("Gcn::forward: input shape mismatch");
  }
  cached_bh_.clear();
  cached_out_.clear();
  dropout_masks_.clear();

  Tensor h = x;
  for (std::size_t l = 0; l < cfg_.num_layers; ++l) {
    if (train && cfg_.dropout > 0.f && l > 0) {
      Tensor dropped(h.shape());
      dropout_masks_.emplace_back();
      dropout(h, dropped, dropout_masks_.back(), cfg_.dropout, dropout_rng_);
      h = std::move(dropped);
    } else if (train) {
      dropout_masks_.emplace_back();  // keep indices aligned
    }
    Tensor bh = graph::spmm(op, h);        // B @ H
    Tensor z = matmul(bh, weights_[l]);    // (B H) W
    if (train) cached_bh_.push_back(bh);
    if (l + 1 < cfg_.num_layers) {
      Tensor activated(z.shape());
      relu(z, activated);
      if (train) cached_out_.push_back(activated);
      h = std::move(activated);
    } else {
      h = std::move(z);
    }
  }
  return h;
}

void Gcn::backward(const graph::CsrGraph& op, const Tensor& grad_logits) {
  if (cached_bh_.size() != cfg_.num_layers) {
    throw std::logic_error("Gcn::backward without cached train forward");
  }
  Tensor grad = grad_logits;
  for (std::size_t l = cfg_.num_layers; l-- > 0;) {
    if (l + 1 < cfg_.num_layers) {
      // ReLU backward through the cached activation.
      Tensor masked(grad.shape());
      relu_backward(cached_out_[l], grad, masked);
      grad = std::move(masked);
    }
    // z = (B h) W:  dW += (B h)^T grad;  dh = B (grad W^T)  (B symmetric).
    gemm(cached_bh_[l], true, grad, false, grad_weights_[l], 1.f, 1.f);
    if (l > 0) {
      Tensor gw = matmul_nt(grad, weights_[l]);
      grad = graph::spmm(op, gw);
      if (cfg_.dropout > 0.f && !dropout_masks_[l].empty()) {
        Tensor g(grad.shape());
        dropout_backward(grad, dropout_masks_[l], g, cfg_.dropout);
        grad = std::move(g);
      }
    }
  }
  cached_bh_.clear();
  cached_out_.clear();
}

void Gcn::collect_params(std::vector<nn::ParamSlot>& out) {
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    out.push_back({&weights_[l], &grad_weights_[l],
                   "gcn.w" + std::to_string(l)});
  }
}

std::size_t Gcn::num_params() {
  std::size_t n = 0;
  for (const auto& w : weights_) n += w.size();
  return n;
}

std::size_t Gcn::training_bytes(std::size_t nodes, std::size_t in_dim,
                                std::size_t hidden, std::size_t layers) {
  // Input + per-layer propagated activations kept for backward, fp32.
  const std::size_t acts = nodes * (in_dim + layers * hidden) * sizeof(float);
  const std::size_t params =
      (in_dim * hidden + (layers > 1 ? (layers - 1) * hidden * hidden : 0)) *
      sizeof(float) * 3;  // weights + grads + Adam moments (~)
  return acts + params;
}

}  // namespace ppgnn::mpgnn
