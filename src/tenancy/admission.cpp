#include "tenancy/admission.h"

#include <chrono>

namespace ppgnn::tenancy {

bool TenantAdmission::try_admit(TenantId tenant, std::size_t parts,
                                double now_s) {
  const auto snap = registry_.snapshot();
  const TenantContract& c = snap->of(tenant);
  if (c.rate_per_s <= 0) return true;  // unmetered: no bucket state at all

  const double burst = c.effective_burst();
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, fresh] = buckets_.try_emplace(tenant);
  if (fresh) {
    // New buckets start full: the first burst after a contract install is
    // the tenant's to spend, not a refusal.
    it->second.level = burst;
    it->second.last_refill_s = now_s;
  }
  if (!it->second.try_take(now_s, c.rate_per_s, burst,
                           static_cast<double>(parts))) {
    refused_ += 1;
    return false;
  }
  return true;
}

double TenantAdmission::level(TenantId tenant, double now_s) {
  const auto snap = registry_.snapshot();
  const TenantContract& c = snap->of(tenant);
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = buckets_.find(tenant);
  if (it == buckets_.end()) return c.effective_burst();
  TokenBucket b = it->second;  // refill a copy; level() must not mutate
  b.try_take(now_s, c.rate_per_s, c.effective_burst(), 0.0);
  return b.level;
}

std::uint64_t TenantAdmission::refused_total() const {
  std::lock_guard<std::mutex> lk(mu_);
  return refused_;
}

double TenantAdmission::seconds_now() const {
  // Integer microseconds, then one divide: the same tick count always maps
  // to the same double, which is what the bit-determinism tests lean on.
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      clock_.now().time_since_epoch())
                      .count();
  return static_cast<double>(us) / 1e6;
}

}  // namespace ppgnn::tenancy
