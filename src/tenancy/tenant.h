// Multi-tenant serving contracts: who a request belongs to and what that
// tenant is entitled to.
//
// The serving tier has carried a tenant id through its trace format and
// workload generator since the trace work landed, but the id never meant
// anything: every caller shared one anonymous FIFO and one admission
// budget, so a single aggressive caller could starve everyone else — the
// exact failure DL2-style shared ML infrastructure exists to prevent.
// This subsystem turns the id into an enforceable contract:
//
//  * TenantContract — the per-tenant SLO knobs: an admitted-rate quota
//    with a burst allowance (enforced by the token buckets in
//    admission.h), a fair-share weight (consumed by the DWRR scheduler in
//    fair_share.h), a default deadline budget stamped onto requests that
//    carry none, and a priority ceiling that caps how urgent the tenant's
//    traffic may claim to be.
//
//  * TenantRegistry — the contract table, published as an immutable
//    epoch-versioned snapshot exactly like FleetManager's membership
//    (replica_set.h): readers take one atomic shared_ptr load and never a
//    lock, writers publish a whole new snapshot.  A contract flip
//    mid-storm is therefore safe by construction — in-flight submits keep
//    the snapshot they loaded, the next submit sees the new one, and no
//    envelope is ever lost to the transition (test_tenancy hammers this).
//
// The registry deliberately knows nothing about buckets or queues: it is
// the read-mostly policy table, and the stateful enforcement (bucket
// levels, DWRR deficits) lives with the components that mutate per
// arrival.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/serve_api.h"

namespace ppgnn::tenancy {

// Tenant ids are dense small integers chosen by the deployment (CLI flag,
// config file).  Id 0 is the default tenant: requests that never set one
// land there, so an untenanted deployment behaves exactly as before.
using TenantId = std::uint32_t;

struct TenantContract {
  // Admitted-parts-per-second quota (an n-node envelope costs n tokens).
  // 0 = unmetered: the tenant is never quota-refused.
  double rate_per_s = 0;
  // Bucket capacity in parts — how far the tenant may burst above its
  // sustained rate.  0 defaults to max(rate_per_s, 1): one second of
  // quota, the conventional bucket depth.
  double burst = 0;
  // DWRR fair-share weight: a weight-2 tenant drains twice the parts per
  // scheduling round of a weight-1 tenant when both are backlogged.
  // Clamped to >= 1 (a zero weight would starve the ring).
  std::uint32_t weight = 1;
  // Stamped onto admitted requests that carry no explicit deadline
  // (0 = leave them deadline-free).  Relative budget, microseconds.
  std::uint64_t default_deadline_us = 0;
  // Highest priority class the tenant may submit at; a request claiming
  // better is clamped down to this.  kHigh (the default) allows both.
  serve::Priority priority_ceiling = serve::Priority::kHigh;

  double effective_burst() const {
    if (burst > 0) return burst;
    return rate_per_s > 1.0 ? rate_per_s : 1.0;
  }
};

class TenantRegistry {
 public:
  // One immutable published generation of the contract table.  `of()` is
  // the hot-path lookup: contracts map misses fall back to the default
  // contract, so a registry with no explicit entries still serves every
  // tenant (unmetered, weight 1 — the pre-tenancy behavior).
  struct Snapshot {
    std::uint64_t epoch = 0;
    // std::map, not unordered: snapshot iteration order (stats tables,
    // fleetsim per-tenant slices) is deterministic by tenant id.
    std::map<TenantId, TenantContract> contracts;
    TenantContract default_contract;

    const TenantContract& of(TenantId t) const {
      const auto it = contracts.find(t);
      return it == contracts.end() ? default_contract : it->second;
    }
    std::uint32_t weight_of(TenantId t) const {
      const std::uint32_t w = of(t).weight;
      return w == 0 ? 1 : w;
    }
  };

  TenantRegistry() {
    std::atomic_store(&snapshot_, std::make_shared<const Snapshot>());
  }

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  // Hot path: one atomic load, no lock (same atomic_load/atomic_store free
  // functions as fleet membership — see replica_set.h for why these beat
  // std::atomic<std::shared_ptr> under TSan).
  std::shared_ptr<const Snapshot> snapshot() const {
    return std::atomic_load(&snapshot_);
  }

  std::uint64_t epoch() const { return snapshot()->epoch; }

  // Writers: copy-on-write under a writer lock, publish atomically.
  void set_contract(TenantId t, const TenantContract& c) {
    mutate([&](Snapshot& s) { s.contracts[t] = c; });
  }
  void erase_contract(TenantId t) {
    mutate([&](Snapshot& s) { s.contracts.erase(t); });
  }
  void set_default(const TenantContract& c) {
    mutate([&](Snapshot& s) { s.default_contract = c; });
  }

 private:
  template <typename Fn>
  void mutate(Fn&& fn) {
    std::lock_guard<std::mutex> lk(write_mu_);
    auto next = std::make_shared<Snapshot>(*std::atomic_load(&snapshot_));
    next->epoch += 1;
    fn(*next);
    std::atomic_store(&snapshot_,
                      std::shared_ptr<const Snapshot>(std::move(next)));
  }

  std::shared_ptr<const Snapshot> snapshot_;
  std::mutex write_mu_;  // serializes writers; readers never touch it
};

// CLI glue (serve_cli --tenant-mix, fleetsim_cli): parse a comma-separated
// weight list "2,1,1,1" — tenant i gets weight list[i % size], so a short
// list tiles across --tenants N.  Empty spec → all weights 1.  False (with
// *err) on malformed input; weights are clamped to >= 1.
bool parse_tenant_mix(const std::string& spec,
                      std::vector<std::uint32_t>* weights, std::string* err);

// One-line human-readable contract ("rate=100/s burst=200 weight=2
// deadline=50ms ceiling=high") for stats blocks and the tenancy runbook.
std::string describe(const TenantContract& c);

}  // namespace ppgnn::tenancy
