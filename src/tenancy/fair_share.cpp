#include "tenancy/fair_share.h"

namespace ppgnn::tenancy {

void DwrrScheduler::arm(TenantId t) {
  if (deficit_.count(t)) return;
  ring_.push_back(t);
  deficit_[t] = 0.0;
}

void DwrrScheduler::note_popped(TenantId t, bool now_empty) {
  auto it = deficit_.find(t);
  if (it == deficit_.end()) return;
  it->second -= 1.0;
  if (now_empty) disarm(t);
}

void DwrrScheduler::disarm(TenantId t) {
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    if (ring_[i] != t) continue;
    ring_.erase(ring_.begin() + static_cast<std::ptrdiff_t>(i));
    deficit_.erase(t);
    if (i < cursor_) {
      --cursor_;
    } else if (i == cursor_) {
      // The tenant under the cursor vanished: the next call starts a
      // fresh visit on whoever slid into this position.
      charged_ = false;
      if (cursor_ >= ring_.size()) cursor_ = 0;
    }
    return;
  }
}

void DwrrScheduler::clear() {
  ring_.clear();
  deficit_.clear();
  cursor_ = 0;
  charged_ = false;
}

}  // namespace ppgnn::tenancy
