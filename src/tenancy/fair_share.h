// Deficit-weighted round-robin (DWRR) tenant scheduling.
//
// DwrrScheduler decides WHICH tenant's sub-queue the next micro-batch
// part comes from; it never touches the parts themselves.  MicroBatcher
// keeps one sub-queue per tenant per priority class and consults a
// scheduler instance per class; fleetsim drives the *same* class over its
// simulated queues, which is how threaded serving and single-threaded
// replay stay bit-identical in their batch composition.
//
// The discipline is classic DWRR with a unit part cost: each active
// tenant sits in an activation-ordered ring; when the cursor lands on a
// tenant for a new round visit, the tenant's deficit grows by
// quantum × weight (quantum = 1.0, cost = 1.0 per part), and the tenant
// may emit parts until the deficit drops below one part.  A weight-2
// tenant therefore drains two parts per visit to a weight-1 tenant's one
// — 2:1 admitted throughput when both are backlogged, exact and
// integer-valued (all deficit arithmetic stays on whole doubles, so runs
// are reproducible to the bit).  A single active tenant degenerates to
// plain FIFO: existing single-tenant ordering tests hold unchanged.
//
// Fairness ranks BELOW deadlines by design: MicroBatcher sheds and
// evicts on slack before the scheduler ever sees the queue, so DWRR only
// arbitrates among parts that are all still worth serving.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>

#include "tenancy/tenant.h"

namespace ppgnn::tenancy {

class DwrrScheduler {
 public:
  // A tenant whose sub-queue just went non-empty enters the ring at the
  // back with a zero deficit (no credit survives an idle period — an idle
  // tenant cannot bank quantum to burst later).  No-op if already armed.
  void arm(TenantId t);

  // Pick the tenant that owns the next part.  `weight_of` maps tenant →
  // weight (>= 1; zero is treated as one).  Must only be called when at
  // least one tenant is armed.  Does not consume — call note_popped()
  // after actually dequeuing a part.
  template <typename WeightFn>
  TenantId next(WeightFn&& weight_of) {
    for (;;) {
      const TenantId t = ring_[cursor_];
      if (!charged_) {
        std::uint32_t w = weight_of(t);
        if (w == 0) w = 1;
        deficit_[t] += static_cast<double>(w);  // quantum 1.0 × weight
        charged_ = true;
      }
      if (deficit_[t] >= 1.0) return t;
      cursor_ = (cursor_ + 1) % ring_.size();
      charged_ = false;
      // Terminates: every visit charges >= 1.0, so the next lap over this
      // tenant returns it even from a zero deficit.
    }
  }

  // One part was dequeued from `t` (cost 1.0).  `now_empty` disarms the
  // tenant when its sub-queue drained.
  void note_popped(TenantId t, bool now_empty);

  // Remove a tenant from the ring (queue drained or parts evicted away).
  // Its deficit is forgotten; reactivation starts from zero.
  void disarm(TenantId t);

  bool empty() const { return ring_.empty(); }
  std::size_t active_tenants() const { return ring_.size(); }

  void clear();

 private:
  std::deque<TenantId> ring_;  // activation order
  std::map<TenantId, double> deficit_;
  std::size_t cursor_ = 0;
  // Whether the tenant currently under the cursor already received this
  // visit's quantum (so re-entering next() mid-visit doesn't double-pay).
  bool charged_ = false;
};

}  // namespace ppgnn::tenancy
