// Per-tenant token-bucket admission over the injected clock contract.
//
// TenantAdmission is the fleet-front quota gate: every v2-envelope submit
// asks it whether the tenant's contract has tokens for the request's part
// count.  A refusal becomes ServeStatus::kQuotaExceeded — deliberately a
// different answer than kShed/kOverload, because the fixes differ: shed
// means the *fleet* is out of capacity (scale up), quota-refused means
// the *tenant* is out of contract (raise the contract or fix the caller).
// Autoscaling and shed-rate signals must therefore never count quota
// refusals; see ServerStats.
//
// Determinism: all bucket arithmetic is plain double add/multiply driven
// by caller-supplied `now` timestamps, so the same arrival sequence
// against the same contracts produces the same admit/refuse sequence —
// bit-identical between the threaded serving path under SimClock and the
// single-threaded fleetsim replay (test_tenancy asserts this).  The
// wall-clock convenience overloads read the injected serve::Clock.
//
// Locking: contract *lookup* is the registry's lock-free snapshot; bucket
// *mutation* takes a small mutex (buckets are inherently read-modify-
// write).  That is one uncontended lock per envelope at the fleet front,
// nowhere near the per-part hot path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "serve/clock.h"
#include "tenancy/tenant.h"

namespace ppgnn::tenancy {

// One bucket: `level` tokens available, refilled at `rate` tokens/sec up
// to `burst`, spent in whole-request units (no partial admission — an
// envelope either fits or is refused, so a big request can't be half
// admitted).  Pure value type; TenantAdmission owns the clock/registry
// wiring.
struct TokenBucket {
  double level = 0;
  double last_refill_s = 0;  // seconds on the caller's clock

  // Refill for the elapsed time, then try to spend `cost` tokens.
  // `now_s` must be monotone per bucket; a stale timestamp refills
  // nothing (never drains).  rate==0 means unmetered: always admitted,
  // nothing spent.
  bool try_take(double now_s, double rate, double burst, double cost) {
    if (rate <= 0) return true;
    if (now_s > last_refill_s) {
      level += (now_s - last_refill_s) * rate;
      if (level > burst) level = burst;
      last_refill_s = now_s;
    }
    if (level + 1e-9 < cost) return false;
    level -= cost;
    return true;
  }
};

class TenantAdmission {
 public:
  // `registry` must outlive the admission gate.  `clock` may be null
  // (falls back to the process-wide real clock) and is only consulted by
  // the no-`now` overload — explicit-now callers (fleetsim, tests) never
  // touch it.
  TenantAdmission(const TenantRegistry& registry, const serve::Clock* clock)
      : registry_(registry), clock_(*serve::clock_or_real(clock)) {}

  TenantAdmission(const TenantAdmission&) = delete;
  TenantAdmission& operator=(const TenantAdmission&) = delete;

  // Charge `parts` tokens against `tenant`'s bucket at time `now_s`
  // (seconds; any fixed origin — only deltas matter).  Returns false on
  // quota refusal.  New tenants start with a full burst allowance, so the
  // first arrival after a contract is installed is never refused.
  bool try_admit(TenantId tenant, std::size_t parts, double now_s);

  // Wall-clock overload for the serving path: `now_s` from the injected
  // clock's epoch.
  bool try_admit(TenantId tenant, std::size_t parts) {
    return try_admit(tenant, parts, seconds_now());
  }

  // Current token level (post-refill to `now_s`) — observability only.
  double level(TenantId tenant, double now_s);

  std::uint64_t refused_total() const;

 private:
  double seconds_now() const;

  const TenantRegistry& registry_;
  const serve::Clock& clock_;
  mutable std::mutex mu_;
  std::map<TenantId, TokenBucket> buckets_;
  std::uint64_t refused_ = 0;
};

}  // namespace ppgnn::tenancy
