#include "tenancy/tenant.h"

#include <cstdio>
#include <cstdlib>

namespace ppgnn::tenancy {

bool parse_tenant_mix(const std::string& spec,
                      std::vector<std::uint32_t>* weights, std::string* err) {
  weights->clear();
  if (spec.empty()) return true;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    char* end = nullptr;
    const unsigned long w = std::strtoul(tok.c_str(), &end, 10);
    if (tok.empty() || end == tok.c_str() || *end != '\0') {
      if (err) *err = "bad --tenant-mix token '" + tok + "' (want integers)";
      weights->clear();
      return false;
    }
    weights->push_back(w == 0 ? 1u : static_cast<std::uint32_t>(w));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

std::string describe(const TenantContract& c) {
  char buf[160];
  std::snprintf(
      buf, sizeof buf,
      "rate=%.6g/s burst=%.6g weight=%u deadline=%lluus ceiling=%s",
      c.rate_per_s, c.effective_burst(), c.weight == 0 ? 1u : c.weight,
      static_cast<unsigned long long>(c.default_deadline_us),
      c.priority_ceiling == serve::Priority::kHigh ? "high" : "low");
  return buf;
}

}  // namespace ppgnn::tenancy
