#include "graph/normalize.h"

#include <cmath>

namespace ppgnn::graph {

namespace {

std::vector<float> inv_sqrt_degrees(const CsrGraph& g) {
  std::vector<float> inv(g.num_nodes());
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    const auto d = g.degree(static_cast<NodeId>(v));
    inv[v] = d > 0 ? 1.f / std::sqrt(static_cast<float>(d)) : 0.f;
  }
  return inv;
}

}  // namespace

CsrGraph sym_normalized(const CsrGraph& g, bool add_self_loops) {
  CsrGraph a = add_self_loops ? with_self_loops(g) : g;
  const auto inv_sqrt = inv_sqrt_degrees(a);
  std::vector<float> values(a.num_edges());
  for (std::size_t v = 0; v < a.num_nodes(); ++v) {
    const auto vid = static_cast<NodeId>(v);
    const auto nbrs = a.neighbors(vid);
    const EdgeIdx base = a.offsets()[v];
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      values[base + i] = inv_sqrt[v] * inv_sqrt[nbrs[i]];
    }
  }
  return CsrGraph(a.num_nodes(), a.offsets(), a.indices(), std::move(values));
}

CsrGraph row_normalized(const CsrGraph& g, bool add_self_loops) {
  CsrGraph a = add_self_loops ? with_self_loops(g) : g;
  std::vector<float> values(a.num_edges());
  for (std::size_t v = 0; v < a.num_nodes(); ++v) {
    const auto vid = static_cast<NodeId>(v);
    const auto d = a.degree(vid);
    const float inv = d > 0 ? 1.f / static_cast<float>(d) : 0.f;
    const EdgeIdx base = a.offsets()[v];
    for (EdgeIdx i = 0; i < d; ++i) values[base + i] = inv;
  }
  return CsrGraph(a.num_nodes(), a.offsets(), a.indices(), std::move(values));
}

double edge_homophily(const CsrGraph& g,
                      const std::vector<std::int32_t>& labels) {
  std::size_t same = 0, total = 0;
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    const auto lv = labels[v];
    if (lv < 0) continue;
    for (const NodeId u : g.neighbors(static_cast<NodeId>(v))) {
      const auto lu = labels[u];
      if (lu < 0) continue;
      ++total;
      if (lu == lv) ++same;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(same) / total;
}

}  // namespace ppgnn::graph
