// The six benchmark datasets of the paper (Table 2) as seeded synthetic
// analogues, plus their *paper-scale* statistics for the cost-model benches.
//
// Real training (accuracy / convergence experiments) uses the scaled-down
// in-memory analogue; throughput tables (3/4/5, Figures 4/9/14) feed the
// paper-scale statistics into the hardware cost model, because modeled
// epoch time depends only on sizes, not on feature values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "graph/generator.h"
#include "tensor/tensor.h"

namespace ppgnn::graph {

enum class DatasetName {
  kProductsSim,    // ogbn-products analogue: homophilous, 47 classes
  kPokecSim,       // pokec analogue: 2 classes, moderate homophily
  kWikiSim,        // wiki analogue: non-homophilous, dense, 5 classes
  kPapers100MSim,  // ogbn-papers100M analogue: 1.4% labeled
  kIgbMediumSim,   // IGB-medium analogue: wide features (1024)
  kIgbLargeSim,    // IGB-large analogue: wide features, huge at paper scale
};

const char* to_string(DatasetName name);
std::vector<DatasetName> all_datasets();
std::vector<DatasetName> medium_datasets();  // products / pokec / wiki

// Statistics at the *paper's* scale (Table 2) — used by the cost model.
struct PaperScale {
  std::size_t nodes = 0;
  std::size_t edges = 0;  // directed edge slots (as reported in Table 2)
  std::size_t feature_dim = 0;
  std::size_t classes = 0;
  double labeled_fraction = 1.0;
  double train_fraction = 0.5;  // of labeled nodes
  std::size_t train_nodes() const {
    return static_cast<std::size_t>(nodes * labeled_fraction * train_fraction);
  }
  std::size_t feature_bytes() const {
    return nodes * feature_dim * sizeof(float);
  }
  // Bytes of the training-relevant preprocessed features for R hops and K
  // kernels: PP-GNN inputs cover labeled nodes only (Section 6.4), expanded
  // K*(R+1) times — the "input expansion problem" (Section 3.4).
  std::size_t preprocessed_bytes(std::size_t hops, std::size_t kernels = 1) const {
    const auto labeled = static_cast<std::size_t>(nodes * labeled_fraction);
    return labeled * feature_dim * sizeof(float) * kernels * (hops + 1);
  }
};

struct Dataset {
  std::string name;
  CsrGraph graph;                      // undirected, scaled-down analogue
  Tensor features;                     // [n, f]
  std::vector<std::int32_t> labels;    // -1 for unlabeled nodes
  std::size_t num_classes = 0;
  Split split;
  PaperScale paper;                    // Table 2 statistics
  double homophily = 0.0;              // measured on the analogue

  std::size_t num_nodes() const { return graph.num_nodes(); }
  std::size_t feature_dim() const { return features.cols(); }
  std::vector<std::int32_t> labels_at(const std::vector<std::int64_t>& idx) const;
};

// Generates the analogue deterministically; `scale` in (0, 1] multiplies the
// default analogue node count (use < 1 in unit tests for speed).
Dataset make_dataset(DatasetName name, double scale = 1.0,
                     std::uint64_t seed = 42);

// Paper-scale statistics only (no generation) — cheap, for cost-model-only
// benches that never touch real features.
PaperScale paper_scale(DatasetName name);

}  // namespace ppgnn::graph
