// Graph-filter operator construction.
//
// PP-GNN preprocessing multiplies node features by operators derived from
// the adjacency matrix (Section 2.5 of the paper).  This module materializes
// the operators as weighted CSR graphs so the same SpMM kernel drives every
// propagation scheme (symmetric normalization, random-walk normalization,
// and the PPR / heat-kernel diffusion recurrences built on top of them).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace ppgnn::graph {

// B = D~^{-1/2} (A + I) D~^{-1/2} — the SGC/SIGN/HOGA default operator.
// When add_self_loops is false, normalizes the raw adjacency (isolated nodes
// get zero rows).
CsrGraph sym_normalized(const CsrGraph& g, bool add_self_loops = true);

// B = D~^{-1} (A + I) — random-walk (row) normalization.
CsrGraph row_normalized(const CsrGraph& g, bool add_self_loops = true);

// Edge homophily: fraction of edges whose endpoints share a label.
// Labels < 0 (unlabeled) are skipped.
double edge_homophily(const CsrGraph& g, const std::vector<std::int32_t>& labels);

}  // namespace ppgnn::graph
