#include "graph/dataset.h"

#include <cmath>
#include <stdexcept>

#include "graph/normalize.h"

namespace ppgnn::graph {

namespace {

// Knobs for one analogue: scaled-down generation parameters chosen so the
// paper's accuracy *trends* reproduce (see DESIGN.md §1), plus the
// paper-scale statistics from Table 2.
struct AnalogueSpec {
  const char* name;
  std::size_t nodes;
  double avg_degree;
  std::size_t classes;
  std::size_t feature_dim;
  double homophily;
  double signal;
  // Fraction of observed labels replaced with a random class — the
  // irreducible-error knob that sets each analogue's accuracy ceiling
  // (products ~82%, pokec ~82%, wiki ~60%, papers100M ~67%, IGB ~76%).
  double label_noise;
  SplitConfig split;
  PaperScale paper;
  // Classes grouped per SBM block (> 1 makes class info hop-heterogeneous:
  // connectivity identifies the block, only *raw* features distinguish
  // classes within a block — neighborhoods mix the grouped classes
  // uniformly, so propagated hops provably collapse the within-group
  // signal).  Used by the wiki analogue to reproduce "SGC sacrifices
  // substantial accuracy due to not fully utilizing all the hops"
  // (Section 6.1) and wiki's non-homophilous label structure.
  std::size_t classes_per_block = 1;
  // Strong per-node-decodable feature dims carrying the within-group bit.
  double local_dims_fraction = 0.0;
  double local_signal = 0.0;
};

AnalogueSpec spec_for(DatasetName name) {
  switch (name) {
    case DatasetName::kProductsSim:
      // ogbn-products: strongly homophilous co-purchase graph, tiny train
      // split (8%), many classes.
      return {"products-sim", 16000, 20.0, 12, 100, 0.70, 0.15, 0.17,
              {0.08, 0.02, 0.90, 1.0, 3},
              {2449029, 61859140, 100, 47, 1.0, 0.08}};
    case DatasetName::kPokecSim:
      // pokec: social network, binary task, moderate homophily.
      return {"pokec-sim", 14000, 19.0, 2, 65, 0.62, 0.05, 0.33,
              {0.50, 0.25, 0.25, 1.0, 3},
              {1632803, 30622564, 65, 2, 1.0, 0.50}};
    case DatasetName::kWikiSim:
      // wiki: non-homophilous (classes pair up within SBM blocks, so label
      // homophily measures ~0.33) and much denser than the others; accuracy
      // is low in the paper (~50-60%) and rises with hops for the models
      // that use all hops.  The block structure splits class information
      // across hops: connectivity resolves the block, raw features resolve
      // the class within the block — which is what caps SGC well below the
      // MLP-based PP-GNNs (Figure 7).
      return {"wiki-sim", 12000, 18.0, 5, 192, 0.60, 0.05, 0.32,
              {0.50, 0.25, 0.25, 1.0, 3},
              {1925342, 303434860, 600, 5, 1.0, 0.50},
              /*classes_per_block=*/2, /*local_dims_fraction=*/0.12,
              /*local_signal=*/0.35};
    case DatasetName::kPapers100MSim:
      // ogbn-papers100M: only 1.4% of nodes labeled — the preprocessing
      // output covers labeled nodes only, which is why PP-GNN inputs fit in
      // GPU memory at paper scale (Section 6.4).  The analogue keeps a small
      // labeled fraction so the same code path (propagate over all nodes,
      // train on few) is exercised.
      return {"papers100m-sim", 40000, 14.0, 20, 128, 0.68, 0.09, 0.32,
              {0.78, 0.08, 0.14, 0.10, 3},
              {111059956, 1615685872, 128, 172, 0.014, 0.78}};
    case DatasetName::kIgbMediumSim:
      // IGB-medium: fully labeled, very wide features (1024) — the data
      // volume per node, not the node count, is the stressor.
      return {"igb-medium-sim", 16000, 12.0, 19, 384, 0.68, 0.06, 0.26,
              {0.60, 0.20, 0.20, 1.0, 3},
              {10000000, 120077694, 1024, 19, 1.0, 0.60}};
    case DatasetName::kIgbLargeSim:
      // IGB-large: paper-scale preprocessed input is ~1.6 TB with R=3 —
      // the storage-resident case.
      return {"igb-large-sim", 24000, 12.0, 19, 384, 0.68, 0.06, 0.26,
              {0.60, 0.20, 0.20, 1.0, 3},
              {100000000, 1223571364, 1024, 19, 1.0, 0.60}};
  }
  throw std::invalid_argument("spec_for: unknown dataset");
}

}  // namespace

const char* to_string(DatasetName name) { return spec_for(name).name; }

std::vector<DatasetName> all_datasets() {
  return {DatasetName::kProductsSim,    DatasetName::kPokecSim,
          DatasetName::kWikiSim,        DatasetName::kPapers100MSim,
          DatasetName::kIgbMediumSim,   DatasetName::kIgbLargeSim};
}

std::vector<DatasetName> medium_datasets() {
  return {DatasetName::kProductsSim, DatasetName::kPokecSim,
          DatasetName::kWikiSim};
}

PaperScale paper_scale(DatasetName name) { return spec_for(name).paper; }

Dataset make_dataset(DatasetName name, double scale, std::uint64_t seed) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("make_dataset: scale must be in (0, 1]");
  }
  const AnalogueSpec spec = spec_for(name);
  const auto n = static_cast<std::size_t>(std::lround(spec.nodes * scale));

  // With class grouping, the SBM is generated over blocks and each node
  // then draws its class uniformly within its block; edges depend only on
  // the block, so any propagated hop mixes the grouped classes uniformly.
  const std::size_t cpb = std::max<std::size_t>(spec.classes_per_block, 1);
  const std::size_t blocks = (spec.classes + cpb - 1) / cpb;

  SbmConfig sbm;
  sbm.num_nodes = n;
  sbm.num_classes = blocks;
  sbm.avg_degree = spec.avg_degree;
  sbm.homophily = spec.homophily;
  sbm.seed = seed;
  SbmGraph g = generate_sbm(sbm);

  if (cpb > 1) {
    Rng sub_rng(seed + 5);
    for (auto& y : g.labels) {
      const auto b = static_cast<std::size_t>(y);
      const std::size_t width = std::min(cpb, spec.classes - b * cpb);
      y = static_cast<std::int32_t>(b * cpb + sub_rng.uniform_int(width));
    }
  }

  FeatureConfig fc;
  fc.dim = spec.feature_dim;
  fc.signal = spec.signal;
  fc.local_dims_fraction = spec.local_dims_fraction;
  fc.local_signal = spec.local_signal;
  fc.seed = seed + 1;

  Dataset ds;
  ds.name = spec.name;
  ds.features = generate_features(g.labels, spec.classes, fc);
  ds.num_classes = spec.classes;
  ds.paper = spec.paper;

  SplitConfig sc = spec.split;
  sc.seed = seed + 2;
  ds.split = make_split(n, sc);

  // Mask labels outside the splits when the dataset is partially labeled:
  // unlabeled nodes still participate in propagation but never in a loss.
  if (sc.labeled_fraction < 1.0) {
    std::vector<std::int32_t> masked(n, -1);
    for (const auto idx : ds.split.train) masked[idx] = g.labels[idx];
    for (const auto idx : ds.split.valid) masked[idx] = g.labels[idx];
    for (const auto idx : ds.split.test) masked[idx] = g.labels[idx];
    ds.labels = std::move(masked);
  } else {
    ds.labels = g.labels;
  }
  ds.homophily = edge_homophily(g.graph, g.labels);
  // Observed labels carry irreducible noise; topology/features above follow
  // the true communities (homophily is measured on true labels).
  apply_label_noise(ds.labels, spec.classes, spec.label_noise, seed + 9);
  ds.graph = std::move(g.graph);
  return ds;
}

std::vector<std::int32_t> Dataset::labels_at(
    const std::vector<std::int64_t>& idx) const {
  std::vector<std::int32_t> out(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    out[i] = labels[static_cast<std::size_t>(idx[i])];
  }
  return out;
}

}  // namespace ppgnn::graph
