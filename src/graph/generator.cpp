#include "graph/generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ppgnn::graph {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasTable: empty weights");
  double total = 0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("AliasTable: negative weight");
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("AliasTable: zero total weight");
  prob_.resize(n);
  alias_.resize(n);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;
  std::vector<std::uint32_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (const std::uint32_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (const std::uint32_t i : small) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
}

std::size_t AliasTable::sample(Rng& rng) const {
  const std::size_t i = static_cast<std::size_t>(rng.uniform_int(prob_.size()));
  return rng.uniform() < prob_[i] ? i : alias_[i];
}

SbmGraph generate_sbm(const SbmConfig& cfg) {
  if (cfg.num_nodes == 0 || cfg.num_classes == 0) {
    throw std::invalid_argument("generate_sbm: empty configuration");
  }
  if (cfg.homophily < 0 || cfg.homophily > 1) {
    throw std::invalid_argument("generate_sbm: homophily must be in [0,1]");
  }
  Rng rng(cfg.seed);
  const std::size_t n = cfg.num_nodes;
  const std::size_t k = cfg.num_classes;

  // Class per node, iid — decorrelates node id from class.
  std::vector<std::int32_t> labels(n);
  for (auto& y : labels) y = static_cast<std::int32_t>(rng.uniform_int(k));

  // Pareto degree propensities, clipped and normalized to mean 1.
  std::vector<double> theta(n);
  const double shape = cfg.degree_power;
  double mean_theta = 0;
  for (auto& t : theta) {
    double u = rng.uniform();
    while (u <= 1e-12) u = rng.uniform();
    t = std::pow(u, -1.0 / shape);  // Pareto(shape), min 1
    mean_theta += t;
  }
  mean_theta /= static_cast<double>(n);
  for (auto& t : theta) {
    t = std::min(t / mean_theta, cfg.max_propensity_ratio);
  }

  // Per-class alias tables over propensities for target selection.
  std::vector<std::vector<std::uint32_t>> class_members(k);
  for (std::size_t v = 0; v < n; ++v) {
    class_members[labels[v]].push_back(static_cast<std::uint32_t>(v));
  }
  std::vector<AliasTable> class_tables;
  class_tables.reserve(k);
  std::vector<double> w;
  for (std::size_t c = 0; c < k; ++c) {
    if (class_members[c].empty()) {
      throw std::invalid_argument("generate_sbm: a class received no nodes");
    }
    w.clear();
    w.reserve(class_members[c].size());
    for (const auto v : class_members[c]) w.push_back(theta[v]);
    class_tables.emplace_back(w);
  }
  std::vector<double> all_w(theta.begin(), theta.end());
  const AliasTable all_table(all_w);

  // Each node emits ~ avg_degree/2 * theta_v half-edges (symmetrization
  // doubles them back up to avg_degree on expectation).
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n * cfg.avg_degree / 2 * 1.1));
  for (std::size_t v = 0; v < n; ++v) {
    const double expect = cfg.avg_degree / 2.0 * theta[v];
    auto d = static_cast<std::size_t>(expect);
    if (rng.uniform() < expect - static_cast<double>(d)) ++d;
    for (std::size_t e = 0; e < d; ++e) {
      NodeId u;
      if (rng.uniform() < cfg.homophily) {
        const auto c = static_cast<std::size_t>(labels[v]);
        u = static_cast<NodeId>(class_members[c][class_tables[c].sample(rng)]);
      } else {
        u = static_cast<NodeId>(all_table.sample(rng));
      }
      if (static_cast<std::size_t>(u) != v) {
        edges.push_back({static_cast<NodeId>(v), u});
      }
    }
  }
  return {build_csr(n, std::move(edges), /*symmetrize=*/true),
          std::move(labels)};
}

Tensor generate_features(const std::vector<std::int32_t>& labels,
                         std::size_t num_classes, const FeatureConfig& cfg) {
  Rng rng(cfg.seed);
  const std::size_t n = labels.size();
  const std::size_t f = cfg.dim;
  const auto signal_dims =
      static_cast<std::size_t>(std::lround(f * (1.0 - cfg.noise_dims_fraction)));

  // Class means on the signal-carrying dimensions.
  Tensor means({num_classes, f});
  for (std::size_t c = 0; c < num_classes; ++c) {
    for (std::size_t j = 0; j < signal_dims; ++j) {
      means.at(c, j) = static_cast<float>(rng.normal());
    }
  }

  Tensor x({n, f});
  Rng noise = rng.split(0x5eed);
  for (std::size_t v = 0; v < n; ++v) {
    const auto c = static_cast<std::size_t>(labels[v]);
    float* row = x.row(v);
    const float* mu = means.row(c);
    for (std::size_t j = 0; j < f; ++j) {
      row[j] = static_cast<float>(cfg.signal) * mu[j] +
               static_cast<float>(noise.normal());
    }
  }

  // Local (strong-signal) dims overwrite the tail of the feature vector —
  // the dims past signal_dims, which carry no weak signal anyway.
  if (cfg.local_dims_fraction > 0.0) {
    const auto local_dims = static_cast<std::size_t>(
        std::lround(f * cfg.local_dims_fraction));
    if (local_dims > f) {
      throw std::invalid_argument("generate_features: local fraction > 1");
    }
    const std::size_t first = f - local_dims;
    Rng mean_rng = rng.split(0x9a1);
    Tensor local_means({num_classes, local_dims});
    for (std::size_t i = 0; i < local_means.size(); ++i) {
      local_means.data()[i] = static_cast<float>(mean_rng.normal());
    }
    Rng draw_rng = rng.split(0x51c);
    const auto amp = static_cast<float>(cfg.local_signal);
    for (std::size_t v = 0; v < n; ++v) {
      const auto c = static_cast<std::size_t>(labels[v]);
      float* row = x.row(v);
      const float* mu = local_means.row(c);
      for (std::size_t d = 0; d < local_dims; ++d) {
        row[first + d] = amp * mu[d] + static_cast<float>(draw_rng.normal());
      }
    }
  }
  return x;
}

void apply_label_noise(std::vector<std::int32_t>& labels,
                       std::size_t num_classes, double fraction,
                       std::uint64_t seed) {
  if (fraction <= 0.0) return;
  if (fraction > 1.0) {
    throw std::invalid_argument("apply_label_noise: fraction > 1");
  }
  Rng rng(seed);
  for (auto& y : labels) {
    if (y >= 0 && rng.uniform() < fraction) {
      y = static_cast<std::int32_t>(rng.uniform_int(num_classes));
    }
  }
}

Split make_split(std::size_t num_nodes, const SplitConfig& cfg) {
  if (cfg.train + cfg.valid + cfg.test > 1.0 + 1e-9) {
    throw std::invalid_argument("make_split: fractions exceed 1");
  }
  Rng rng(cfg.seed);
  std::vector<std::int64_t> perm(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    perm[i] = static_cast<std::int64_t>(i);
  }
  rng.shuffle(perm);
  const auto labeled =
      static_cast<std::size_t>(std::lround(num_nodes * cfg.labeled_fraction));
  const auto n_train = static_cast<std::size_t>(std::lround(labeled * cfg.train));
  const auto n_valid = static_cast<std::size_t>(std::lround(labeled * cfg.valid));
  const auto n_test = std::min(
      labeled - std::min(labeled, n_train + n_valid),
      static_cast<std::size_t>(std::lround(labeled * cfg.test)));
  Split s;
  s.train.assign(perm.begin(), perm.begin() + n_train);
  s.valid.assign(perm.begin() + n_train, perm.begin() + n_train + n_valid);
  s.test.assign(perm.begin() + n_train + n_valid,
                perm.begin() + n_train + n_valid + n_test);
  return s;
}

}  // namespace ppgnn::graph
