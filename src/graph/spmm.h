// Sparse-dense products over CSR graphs.
//
// These kernels implement feature propagation: Y[v] = sum_{u in N(v)}
// w(v,u) * X[u].  They are the compute core of PP-GNN preprocessing
// (src/core/precompute.*) and of the MP-GNN aggregation layers.
#pragma once

#include "graph/csr.h"
#include "tensor/tensor.h"

namespace ppgnn::graph {

// Y = A @ X, parallel over destination rows.  X is [n, f]; Y is [n, f].
// Unweighted graphs use weight 1 per edge.
void spmm(const CsrGraph& a, const Tensor& x, Tensor& y);
Tensor spmm(const CsrGraph& a, const Tensor& x);

// Y = A @ X restricted to a set of destination rows: for each i,
// Y.row(i) = sum over neighbors of rows[i] in A of w * X[u].
// Used by MP-GNN blocks where only sampled destinations are materialized.
void spmm_rows(const CsrGraph& a, const std::vector<NodeId>& rows,
               const Tensor& x, Tensor& y);

// Mean variant: divides each output row by max(degree, 1).
void spmm_mean_rows(const CsrGraph& a, const std::vector<NodeId>& rows,
                    const Tensor& x, Tensor& y);

}  // namespace ppgnn::graph
