// Synthetic graph generation: degree-corrected stochastic block model.
//
// The paper evaluates on ogbn-products, pokec, wiki, ogbn-papers100M and two
// IGB graphs, none of which ship with this repository.  The generator below
// produces seeded analogues whose *learning-relevant* properties are
// controllable:
//   - homophily: probability that an edge endpoint is drawn from the same
//     class (products/pokec are homophilous; wiki is not);
//   - power-law degree propensities (real web/social graphs are heavy-tailed);
//   - class-dependent Gaussian features with tunable signal-to-noise ratio.
// Low per-node feature SNR is what makes multi-hop aggregation profitable,
// reproducing the paper's "larger receptive field improves accuracy" trend
// (Figure 2).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace ppgnn::graph {

struct SbmConfig {
  std::size_t num_nodes = 1000;
  std::size_t num_classes = 4;
  double avg_degree = 10.0;
  // Probability that a generated edge connects nodes of the same class.
  double homophily = 0.7;
  // Pareto shape for degree propensities; larger = more uniform.  Must be
  // > 1 so the mean exists; 2.1 gives a realistic heavy tail.
  double degree_power = 2.1;
  // Cap on a node's degree propensity relative to the mean (tail clipping).
  double max_propensity_ratio = 50.0;
  std::uint64_t seed = 1;
};

struct SbmGraph {
  CsrGraph graph;                     // undirected, deduplicated
  std::vector<std::int32_t> labels;   // class per node, in [0, num_classes)
};

// Generates the topology and class assignment.  Node ids are uncorrelated
// with classes (class is drawn iid per node), so contiguous id chunks are
// class-balanced — matching real datasets where node order is arbitrary,
// which is the property chunk reshuffling relies on (Section 6.2).
SbmGraph generate_sbm(const SbmConfig& cfg);

struct FeatureConfig {
  std::size_t dim = 32;
  // Distance scale between class means; per-node noise is N(0, 1).  The
  // effective single-node SNR is ~ signal; keep it < 1 so aggregation helps.
  double signal = 0.4;
  // Fraction of dimensions that carry no class signal at all.
  double noise_dims_fraction = 0.25;
  // Fraction of dimensions carrying a *local* (strong, per-node decodable)
  // class signal on top of the weak `signal` block, written over the tail
  // of the feature vector with mean scale `local_signal`.  On their own
  // these dims are just a stronger Gaussian signal; combined with
  // `SbmConfig-level class grouping` (classes_per_block > 1 in the dataset
  // builder) they become hop-heterogeneous: neighborhoods mix the grouped
  // classes uniformly, so any propagated hop collapses these dims to the
  // group average and only hop 0 distinguishes classes within a group.
  // That reproduces the paper's "SGC sacrifices substantial accuracy due
  // to not fully utilizing all the hops" (Section 6.1): a final-hop-only
  // model cannot see the within-group bit no matter how strong it is.
  double local_dims_fraction = 0.0;
  double local_signal = 0.4;
  std::uint64_t seed = 2;
};

// Class-conditional Gaussian features: x_v = signal * mu_{y_v} + eps.
Tensor generate_features(const std::vector<std::int32_t>& labels,
                         std::size_t num_classes, const FeatureConfig& cfg);

struct SplitConfig {
  double train = 0.5;
  double valid = 0.25;
  double test = 0.25;
  // Fraction of nodes that are labeled at all (papers100M: 0.014).  The
  // train/valid/test fractions partition the *labeled* subset.
  double labeled_fraction = 1.0;
  std::uint64_t seed = 3;
};

struct Split {
  std::vector<std::int64_t> train;
  std::vector<std::int64_t> valid;
  std::vector<std::int64_t> test;
};

Split make_split(std::size_t num_nodes, const SplitConfig& cfg);

// Replaces `fraction` of the labels with a uniformly random class (possibly
// the same one).  Applied to the *observed* labels only — topology and
// features still follow the true community — so it models the irreducible
// error real benchmarks have: test accuracy saturates near
// 1 - fraction * (K-1)/K no matter how strong the model, matching the
// plateaus of Figure 2.
void apply_label_noise(std::vector<std::int32_t>& labels,
                       std::size_t num_classes, double fraction,
                       std::uint64_t seed);

// Weak alias-table sampler used by the generator (exposed for tests):
// draws indices proportional to the given non-negative weights in O(1).
class AliasTable {
 public:
  explicit AliasTable(const std::vector<double>& weights);
  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace ppgnn::graph
