#include "graph/csr.h"

#include <algorithm>
#include <stdexcept>

namespace ppgnn::graph {

CsrGraph::CsrGraph(std::size_t n, std::vector<EdgeIdx> offsets,
                   std::vector<NodeId> indices, std::vector<float> values)
    : n_(n),
      offsets_(std::move(offsets)),
      indices_(std::move(indices)),
      values_(std::move(values)) {
  if (offsets_.size() != n_ + 1) {
    throw std::invalid_argument("CsrGraph: offsets must have n+1 entries");
  }
  if (!values_.empty() && values_.size() != indices_.size()) {
    throw std::invalid_argument("CsrGraph: values/indices size mismatch");
  }
  if (offsets_.front() != 0 ||
      offsets_.back() != static_cast<EdgeIdx>(indices_.size())) {
    throw std::invalid_argument("CsrGraph: malformed offsets");
  }
}

bool CsrGraph::has_edge(NodeId v, NodeId u) const {
  const auto nbrs = neighbors(v);
  return std::binary_search(nbrs.begin(), nbrs.end(), u);
}

EdgeIdx CsrGraph::max_degree() const {
  EdgeIdx mx = 0;
  for (std::size_t v = 0; v < n_; ++v) {
    mx = std::max(mx, degree(static_cast<NodeId>(v)));
  }
  return mx;
}

std::size_t CsrGraph::topology_bytes() const {
  return offsets_.size() * sizeof(EdgeIdx) + indices_.size() * sizeof(NodeId) +
         values_.size() * sizeof(float);
}

CsrGraph build_csr(std::size_t n, std::vector<Edge> edges, bool symmetrize) {
  if (symmetrize) {
    const std::size_t orig = edges.size();
    edges.reserve(orig * 2);
    for (std::size_t i = 0; i < orig; ++i) {
      if (edges[i].src != edges[i].dst) {
        edges.push_back({edges[i].dst, edges[i].src});
      }
    }
  }
  for (const Edge& e : edges) {
    if (e.src < 0 || e.dst < 0 || static_cast<std::size_t>(e.src) >= n ||
        static_cast<std::size_t>(e.dst) >= n) {
      throw std::invalid_argument("build_csr: edge endpoint out of range");
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const Edge& a, const Edge& b) {
                            return a.src == b.src && a.dst == b.dst;
                          }),
              edges.end());

  std::vector<EdgeIdx> offsets(n + 1, 0);
  std::vector<NodeId> indices(edges.size());
  for (const Edge& e : edges) ++offsets[e.src + 1];
  for (std::size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  for (std::size_t i = 0; i < edges.size(); ++i) indices[i] = edges[i].dst;
  return CsrGraph(n, std::move(offsets), std::move(indices));
}

CsrGraph with_self_loops(const CsrGraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<EdgeIdx> offsets(n + 1, 0);
  std::vector<NodeId> indices;
  std::vector<float> values;
  const bool weighted = g.weighted();
  indices.reserve(g.num_edges() + n);
  if (weighted) values.reserve(g.num_edges() + n);

  for (std::size_t v = 0; v < n; ++v) {
    const auto vid = static_cast<NodeId>(v);
    const auto nbrs = g.neighbors(vid);
    const auto vals = g.edge_values(vid);
    bool inserted = false;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (!inserted && nbrs[i] >= vid) {
        if (nbrs[i] != vid) {
          indices.push_back(vid);
          if (weighted) values.push_back(1.f);
        }
        inserted = true;
      }
      indices.push_back(nbrs[i]);
      if (weighted) values.push_back(vals[i]);
    }
    if (!inserted) {
      indices.push_back(vid);
      if (weighted) values.push_back(1.f);
    }
    offsets[v + 1] = static_cast<EdgeIdx>(indices.size());
  }
  return CsrGraph(n, std::move(offsets), std::move(indices), std::move(values));
}

CsrGraph transpose(const CsrGraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<EdgeIdx> offsets(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    for (const NodeId u : g.neighbors(static_cast<NodeId>(v))) {
      ++offsets[u + 1];
    }
  }
  for (std::size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  std::vector<EdgeIdx> cursor(offsets.begin(), offsets.end() - 1);
  std::vector<NodeId> indices(g.num_edges());
  std::vector<float> values(g.weighted() ? g.num_edges() : 0);
  for (std::size_t v = 0; v < n; ++v) {
    const auto vid = static_cast<NodeId>(v);
    const auto nbrs = g.neighbors(vid);
    const auto vals = g.edge_values(vid);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const EdgeIdx pos = cursor[nbrs[i]]++;
      indices[pos] = vid;
      if (g.weighted()) values[pos] = vals[i];
    }
  }
  return CsrGraph(n, std::move(offsets), std::move(indices), std::move(values));
}

}  // namespace ppgnn::graph
