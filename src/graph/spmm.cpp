#include "graph/spmm.h"

#include <stdexcept>

#include "tensor/parallel.h"

namespace ppgnn::graph {

namespace {

void check_spmm_shapes(const CsrGraph& a, const Tensor& x, const Tensor& y,
                       std::size_t out_rows) {
  if (x.ndim() != 2 || y.ndim() != 2) {
    throw std::invalid_argument("spmm: tensors must be 2-D");
  }
  if (x.rows() != a.num_nodes()) {
    throw std::invalid_argument("spmm: X rows != graph nodes");
  }
  if (y.rows() != out_rows || y.cols() != x.cols()) {
    throw std::invalid_argument("spmm: bad output shape");
  }
}

}  // namespace

void spmm(const CsrGraph& a, const Tensor& x, Tensor& y) {
  check_spmm_shapes(a, x, y, a.num_nodes());
  const std::size_t f = x.cols();
  const bool weighted = a.weighted();
  parallel_for(a.num_nodes(), [&](std::size_t v0, std::size_t v1) {
    for (std::size_t v = v0; v < v1; ++v) {
      const auto vid = static_cast<NodeId>(v);
      float* out = y.row(v);
      std::fill(out, out + f, 0.f);
      const auto nbrs = a.neighbors(vid);
      const auto vals = a.edge_values(vid);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const float* src = x.row(static_cast<std::size_t>(nbrs[i]));
        const float w = weighted ? vals[i] : 1.f;
        for (std::size_t j = 0; j < f; ++j) out[j] += w * src[j];
      }
    }
  }, /*grain=*/64);
}

Tensor spmm(const CsrGraph& a, const Tensor& x) {
  Tensor y({a.num_nodes(), x.cols()});
  spmm(a, x, y);
  return y;
}

void spmm_rows(const CsrGraph& a, const std::vector<NodeId>& rows,
               const Tensor& x, Tensor& y) {
  check_spmm_shapes(a, x, y, rows.size());
  const std::size_t f = x.cols();
  const bool weighted = a.weighted();
  parallel_for(rows.size(), [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const NodeId vid = rows[i];
      float* out = y.row(i);
      std::fill(out, out + f, 0.f);
      const auto nbrs = a.neighbors(vid);
      const auto vals = a.edge_values(vid);
      for (std::size_t e = 0; e < nbrs.size(); ++e) {
        const float* src = x.row(static_cast<std::size_t>(nbrs[e]));
        const float w = weighted ? vals[e] : 1.f;
        for (std::size_t j = 0; j < f; ++j) out[j] += w * src[j];
      }
    }
  }, 64);
}

void spmm_mean_rows(const CsrGraph& a, const std::vector<NodeId>& rows,
                    const Tensor& x, Tensor& y) {
  spmm_rows(a, rows, x, y);
  const std::size_t f = x.cols();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto d = a.degree(rows[i]);
    if (d > 1) {
      const float inv = 1.f / static_cast<float>(d);
      float* out = y.row(i);
      for (std::size_t j = 0; j < f; ++j) out[j] *= inv;
    }
  }
}

}  // namespace ppgnn::graph
