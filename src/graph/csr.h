// Compressed-sparse-row graph representation and construction utilities.
//
// CsrGraph is the single topology structure used everywhere: preprocessing
// (SpMM feature propagation), the samplers, and the MP-GNN blocks.  Values
// are optional; an empty values vector means every edge has weight 1.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ppgnn::graph {

using NodeId = std::int32_t;
using EdgeIdx = std::int64_t;

struct Edge {
  NodeId src;
  NodeId dst;
};

class CsrGraph {
 public:
  CsrGraph() = default;
  CsrGraph(std::size_t n, std::vector<EdgeIdx> offsets,
           std::vector<NodeId> indices, std::vector<float> values = {});

  std::size_t num_nodes() const { return n_; }
  std::size_t num_edges() const { return indices_.size(); }
  bool weighted() const { return !values_.empty(); }

  EdgeIdx degree(NodeId v) const { return offsets_[v + 1] - offsets_[v]; }
  std::span<const NodeId> neighbors(NodeId v) const {
    return {indices_.data() + offsets_[v],
            static_cast<std::size_t>(degree(v))};
  }
  std::span<const float> edge_values(NodeId v) const {
    if (values_.empty()) return {};
    return {values_.data() + offsets_[v], static_cast<std::size_t>(degree(v))};
  }

  const std::vector<EdgeIdx>& offsets() const { return offsets_; }
  const std::vector<NodeId>& indices() const { return indices_; }
  const std::vector<float>& values() const { return values_; }
  std::vector<float>& mutable_values() { return values_; }

  // True if v has an edge to u (binary search; requires sorted indices).
  bool has_edge(NodeId v, NodeId u) const;

  double avg_degree() const {
    return n_ == 0 ? 0.0 : static_cast<double>(num_edges()) / n_;
  }
  EdgeIdx max_degree() const;

  // Bytes of the topology (offsets + indices + values).
  std::size_t topology_bytes() const;

 private:
  std::size_t n_ = 0;
  std::vector<EdgeIdx> offsets_;  // length n_ + 1
  std::vector<NodeId> indices_;   // length m, sorted within each row
  std::vector<float> values_;     // length m or 0
};

// Builds a CSR graph from an edge list.  Duplicate edges are removed and
// neighbor lists sorted.  If symmetrize is set, the reverse of every edge is
// added (making the graph undirected).  Self loops in the input are kept.
CsrGraph build_csr(std::size_t n, std::vector<Edge> edges,
                   bool symmetrize = true);

// Returns g with self loops added to every node (weight 1 if unweighted).
CsrGraph with_self_loops(const CsrGraph& g);

// Returns the reverse (transpose) graph; weights follow their edges.
CsrGraph transpose(const CsrGraph& g);

}  // namespace ppgnn::graph
