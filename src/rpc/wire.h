// ppgnn-wire v2: the binary codec that carries ServeRequest/ServeResponse
// envelopes across a process boundary.
//
// The serving API v2 envelope (serve/serve_api.h) was designed as a wire
// format — a correlation id, plain enums, a deadline, node ids, and a
// response of per-part rows — so the codec here is a direct field-for-field
// encoding of it, with exactly one translation: DEADLINES.  A ServeRequest
// deadline is an absolute steady_clock time point, which is meaningless in
// another process (steady_clock epochs are process-local), so the wire
// carries the REMAINING BUDGET in microseconds (i64, -1 = no deadline) and
// the receiver reconstitutes an absolute deadline against its own clock.
// Clock skew between hosts cancels out because both ends only ever look at
// relative time.
//
// Layout rules (normative copy in docs/wire-protocol.md — the spec and this
// header must agree byte for byte, and test_wire encodes a reference
// envelope against the documented offsets to keep them honest):
//   * every frame is an 8-byte header [u32 body_len][u8 msg_type]
//     [u8 version][u16 reserved] followed by body_len body bytes;
//   * all integers little-endian; floats/doubles as their IEEE-754 bit
//     pattern, little-endian;
//   * decoders reject unknown versions, unknown message types, bodies over
//     kMaxFrameBody, and any length field that disagrees with the actual
//     byte count — a corrupt frame kills the connection, never the process.
//
// VERSION NEGOTIATION (v2).  v2 adds one field — the tenant id (u32) in
// the Request body, between deadline_rel_us and the node count — and the
// kQuotaExceeded status value (5).  The handshake negotiates per
// connection:
//   * Hello and HelloAck FRAMES always carry frame-header version 1, on
//     both ends, forever: negotiation hasn't happened yet when they are
//     sent, and a fixed pre-negotiation version is what lets any two
//     versions complete a handshake.  The OFFER travels in the Hello
//     body's `protocol` field.
//   * The server acks min(client_protocol, kWireVersion); both sides then
//     frame every post-handshake message at the negotiated version, and
//     decode Request bodies per the frame's header version — a v1 client
//     against a v2 server works unmodified (its requests simply carry
//     tenant 0).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/serve_api.h"

namespace ppgnn::rpc {

inline constexpr std::uint8_t kWireVersion = 2;
// Oldest version current binaries still decode (see the negotiation note
// above); frame headers outside [kMinWireVersion, kWireVersion] are
// rejected.
inline constexpr std::uint8_t kMinWireVersion = 1;
// Bytes "PPG1" on the wire (little-endian u32) — the handshake's sanity
// check that both ends speak ppgnn-wire at all.
inline constexpr std::uint32_t kWireMagic = 0x31475050u;
// Upper bound on one frame body: a 4096-node envelope of 4096-class fp32
// logits rows is ~64 MiB; 16 MiB covers every realistic deployment here
// while keeping a corrupt length field from allocating the moon.
inline constexpr std::size_t kMaxFrameBody = 16u << 20;
inline constexpr std::size_t kFrameHeaderBytes = 8;
// deadline_rel_us is clamped to one year: big enough to be "effectively
// none", small enough that now + budget can never overflow a time_point.
inline constexpr std::int64_t kMaxDeadlineUs =
    std::int64_t{365} * 24 * 3600 * 1000000;

enum class MsgType : std::uint8_t {
  kHello = 0x01,     // client -> server, opens every connection
  kHelloAck = 0x02,  // server -> client, completes the handshake
  kRequest = 0x10,
  kResponse = 0x11,
};

struct FrameHeader {
  std::uint32_t body_len = 0;
  MsgType type = MsgType::kHello;
  std::uint8_t version = kWireVersion;
};

void encode_frame_header(const FrameHeader& h,
                         std::uint8_t out[kFrameHeaderBytes]);
// False (with *err set) on bad version, unknown type, or oversized body.
bool decode_frame_header(const std::uint8_t in[kFrameHeaderBytes],
                         FrameHeader* out, std::string* err);

// Appends a complete frame (header + body) to `out`, framed at `version`
// (the negotiated one; handshake frames pin 1).
void append_frame(std::vector<std::uint8_t>& out, MsgType type,
                  const std::uint8_t* body, std::size_t body_len,
                  std::uint8_t version = kWireVersion);

// Append-style `*_into` encoders (declared per section below): each
// appends one COMPLETE frame (header + body) to `out` without clearing it,
// producing byte-for-byte what append_frame over the matching
// vector-returning encoder would.  Encoding into a recycled FrameBuffer
// (rpc/buffer.h) whose capacity already fits the frame touches the heap
// zero times; the vector-returning body encoders stay as thin shims for
// tests and one-shot callers.

// --- Handshake ------------------------------------------------------------

struct WireHello {
  std::uint32_t magic = kWireMagic;
  std::uint32_t protocol = kWireVersion;  // the client's OFFER (highest)
};

struct WireHelloAck {
  std::uint32_t magic = kWireMagic;
  // The NEGOTIATED version: min(client offer, server kWireVersion).
  std::uint32_t protocol = kWireVersion;
  std::uint64_t num_nodes = 0;  // rows this replica can answer for
  std::uint32_t classes = 0;    // logits row width
  std::uint8_t precision = 0;   // serve::Precision enum value
};

std::vector<std::uint8_t> encode_hello(const WireHello& h);
void encode_hello_into(const WireHello& h, std::vector<std::uint8_t>& out);
bool decode_hello(const std::uint8_t* body, std::size_t len, WireHello* out,
                  std::string* err);
std::vector<std::uint8_t> encode_hello_ack(const WireHelloAck& a);
void encode_hello_ack_into(const WireHelloAck& a,
                           std::vector<std::uint8_t>& out);
bool decode_hello_ack(const std::uint8_t* body, std::size_t len,
                      WireHelloAck* out, std::string* err);

// --- Request --------------------------------------------------------------

struct WireRequest {
  std::uint64_t id = 0;  // correlation id, echoed in the response
  serve::Priority priority = serve::Priority::kHigh;
  serve::ResultMode mode = serve::ResultMode::kFullLogits;
  std::uint16_t topk = 3;             // kTopK only
  std::int64_t deadline_rel_us = -1;  // remaining budget; -1 = none
  std::uint32_t tenant = 0;           // v2+; v1 peers neither send nor see it
  std::vector<std::int64_t> nodes;    // >= 1
};

// `protocol` is the connection's NEGOTIATED version: at 1 the body omits
// the tenant field (a v1 peer must receive exactly the v1 layout), at 2+
// it carries it.  Likewise decode_request parses the body per `version` —
// pass the frame header's version, which the negotiation guarantees
// matches what the peer encoded.
std::vector<std::uint8_t> encode_request(const WireRequest& r,
                                         std::uint8_t protocol = kWireVersion);
void encode_request_into(const WireRequest& r, std::vector<std::uint8_t>& out,
                         std::uint8_t protocol = kWireVersion);
bool decode_request(const std::uint8_t* body, std::size_t len,
                    WireRequest* out, std::string* err,
                    std::uint8_t version = kWireVersion);

// Deadline translation (the one non-trivial conversion, see header note).
std::int64_t deadline_to_budget_us(std::chrono::steady_clock::time_point d,
                                   std::chrono::steady_clock::time_point now);
std::chrono::steady_clock::time_point budget_us_to_deadline(
    std::int64_t rel_us, std::chrono::steady_clock::time_point now);

// --- Response -------------------------------------------------------------

struct WirePart {
  serve::ServeStatus status = serve::ServeStatus::kOk;
  // kFullLogits: the logits row (empty when the part carried no result).
  std::vector<float> logits;
  // kTopK likewise.
  std::vector<serve::TopKEntry> topk;
};

struct WireResponse {
  std::uint64_t id = 0;
  serve::ServeStatus status = serve::ServeStatus::kOk;  // worst over parts
  serve::ResultMode mode = serve::ResultMode::kFullLogits;
  serve::StageTimings timings;  // max over parts, like the envelope's
  std::string error;            // kError only: the backend exception text
  std::vector<WirePart> parts;  // one per request node, same order
};

// The Response body layout is identical in v1 and v2 (the tenant never
// travels back — the client still holds it); `protocol` only sets the
// frame header's version byte to the connection's negotiated value.  A v1
// connection also never carries status kQuotaExceeded (quota refusals are
// resolved at the fleet front and don't cross the wire at all).
std::vector<std::uint8_t> encode_response(const WireResponse& r);
void encode_response_into(const WireResponse& r, std::vector<std::uint8_t>& out,
                          std::uint8_t protocol = kWireVersion);
bool decode_response(const std::uint8_t* body, std::size_t len,
                     WireResponse* out, std::string* err);

}  // namespace ppgnn::rpc
