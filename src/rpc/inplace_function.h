// InplaceFunction: a move-only callable wrapper whose capture lives inside
// the wrapper itself — never on the heap.
//
// std::function heap-allocates any capture over ~16 bytes, and the RPC hot
// path creates one completion closure per wire call (request state, slot
// list, fail handler, timestamps — well past SSO).  At serving rates that
// is a malloc/free pair per request for storage whose size is known at
// compile time.  InplaceFunction trades generality for that allocation:
// the capture must fit Cap bytes (enforced at compile time, so an outgrown
// capture is a build error, not a silent heap fallback), and the wrapper
// is move-only (captures own shared_ptrs and vectors; copying them per
// call is exactly what the fast path is trying not to do).
//
// Invocation is non-const and the wrapper may be invoked at most as many
// times as the caller's contract allows (the RPC Done contract is exactly
// once); after a move the source is empty.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ppgnn::rpc {

template <typename Sig, std::size_t Cap>
class InplaceFunction;

template <typename R, typename... Args, std::size_t Cap>
class InplaceFunction<R(Args...), Cap> {
 public:
  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT: mirror std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceFunction> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
  InplaceFunction(F&& f) {  // NOLINT: mirror std::function
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Cap,
                  "capture too large for this InplaceFunction — raise Cap");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned capture");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    ops_ = &kOps<Fn>;
  }

  InplaceFunction(InplaceFunction&& o) noexcept { move_from(o); }
  InplaceFunction& operator=(InplaceFunction&& o) noexcept {
    if (this != &o) {
      destroy();
      move_from(o);
    }
    return *this;
  }
  InplaceFunction& operator=(std::nullptr_t) {
    destroy();
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { destroy(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* src, void* dst);  // move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops kOps = {
      [](void* p, Args&&... args) -> R {
        return (*static_cast<Fn*>(p))(std::forward<Args>(args)...);
      },
      [](void* src, void* dst) {
        Fn* s = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
  };

  void move_from(InplaceFunction& o) noexcept {
    if (o.ops_) {
      o.ops_->relocate(o.buf_, buf_);
      ops_ = o.ops_;
      o.ops_ = nullptr;
    }
  }
  void destroy() {
    if (ops_) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Cap];
  const Ops* ops_ = nullptr;
};

}  // namespace ppgnn::rpc
