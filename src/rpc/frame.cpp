#include "rpc/frame.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ppgnn::rpc {

namespace {

bool fail(std::string* err, const std::string& what) {
  if (err) *err = what;
  return false;
}

int fail_fd(std::string* err, const std::string& what, int fd = -1) {
  if (err) *err = what + ": " + std::strerror(errno);
  if (fd >= 0) ::close(fd);
  return -1;
}

int unix_socket(std::string* err) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return fail_fd(err, "socket(AF_UNIX)");
  return fd;
}

bool fill_unix_addr(const std::string& path, sockaddr_un* sa,
                    std::string* err) {
  if (path.empty() || path.size() >= sizeof(sa->sun_path)) {
    fail(err, "unix socket path empty or too long: " + path);
    return false;
  }
  std::memset(sa, 0, sizeof(*sa));
  sa->sun_family = AF_UNIX;
  std::memcpy(sa->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

bool parse_address(const std::string& addr, ParsedAddr* out,
                   std::string* err) {
  if (addr.rfind("unix:", 0) == 0) {
    out->is_unix = true;
    out->path = addr.substr(5);
    if (out->path.empty()) return fail(err, "empty unix socket path");
    return true;
  }
  if (addr.rfind("tcp:", 0) == 0) {
    const std::string rest = addr.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      return fail(err, "tcp address must be tcp:host:port: " + addr);
    }
    out->is_unix = false;
    out->host = rest.substr(0, colon);
    const std::string port = rest.substr(colon + 1);
    char* end = nullptr;
    const long p = std::strtol(port.c_str(), &end, 10);
    if (*end != '\0' || p <= 0 || p > 65535) {
      return fail(err, "bad tcp port: " + port);
    }
    out->port = static_cast<std::uint16_t>(p);
    return true;
  }
  return fail(err, "address must start with unix: or tcp: — got " + addr);
}

int listen_on(const std::string& addr, std::string* err) {
  ParsedAddr a;
  if (!parse_address(addr, &a, err)) return -1;
  if (a.is_unix) {
    sockaddr_un sa;
    if (!fill_unix_addr(a.path, &sa, err)) return -1;
    ::unlink(a.path.c_str());  // stale socket from a crashed predecessor
    const int fd = unix_socket(err);
    if (fd < 0) return -1;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      return fail_fd(err, "bind(" + a.path + ")", fd);
    }
    if (::listen(fd, 16) != 0) return fail_fd(err, "listen", fd);
    return fd;
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string port = std::to_string(a.port);
  if (::getaddrinfo(a.host.c_str(), port.c_str(), &hints, &res) != 0 ||
      !res) {
    fail(err, "getaddrinfo failed for " + a.host);
    return -1;
  }
  int fd = ::socket(res->ai_family, res->ai_socktype | SOCK_CLOEXEC,
                    res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return fail_fd(err, "socket(tcp)");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const int rc = ::bind(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0) return fail_fd(err, "bind(tcp " + a.host + ":" + port + ")", fd);
  if (::listen(fd, 16) != 0) return fail_fd(err, "listen", fd);
  return fd;
}

int connect_to(const std::string& addr, std::chrono::milliseconds timeout,
               std::string* err) {
  ParsedAddr a;
  if (!parse_address(addr, &a, err)) return -1;
  int fd = -1;
  if (a.is_unix) {
    sockaddr_un sa;
    if (!fill_unix_addr(a.path, &sa, err)) return -1;
    fd = unix_socket(err);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      return fail_fd(err, "connect(" + a.path + ")", fd);
    }
    return fd;
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port = std::to_string(a.port);
  if (::getaddrinfo(a.host.c_str(), port.c_str(), &hints, &res) != 0 ||
      !res) {
    fail(err, "getaddrinfo failed for " + a.host);
    return -1;
  }
  fd = ::socket(res->ai_family, res->ai_socktype | SOCK_CLOEXEC,
                res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return fail_fd(err, "socket(tcp)");
  }
  // Nonblocking connect bounded by `timeout`, then back to blocking: the
  // caller decides per-fd blocking mode afterwards.
  set_nonblocking(fd);
  int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd p{fd, POLLOUT, 0};
    rc = ::poll(&p, 1, static_cast<int>(timeout.count()));
    if (rc <= 0) return fail_fd(err, "connect timeout to " + addr, fd);
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      errno = so_error;
      return fail_fd(err, "connect(" + addr + ")", fd);
    }
    rc = 0;
  }
  if (rc != 0) return fail_fd(err, "connect(" + addr + ")", fd);
  const int flags = ::fcntl(fd, F_GETFL);
  ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void FrameReader::feed(const std::uint8_t* data, std::size_t n) {
  if (failed_) return;
  // Compact once the consumed prefix dominates — amortized O(1) per byte.
  if (off_ > 4096 && off_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

bool FrameReader::next(MsgType* type, std::vector<std::uint8_t>* body,
                       std::uint8_t* version) {
  const std::uint8_t* p = nullptr;
  std::size_t len = 0;
  if (!next_view(type, &p, &len, version)) return false;
  body->assign(p, p + len);
  return true;
}

bool FrameReader::next_view(MsgType* type, const std::uint8_t** body,
                            std::size_t* len, std::uint8_t* version) {
  if (failed_) return false;
  if (buf_.size() - off_ < kFrameHeaderBytes) return false;
  FrameHeader h;
  if (!decode_frame_header(buf_.data() + off_, &h, &error_)) {
    failed_ = true;
    return false;
  }
  if (buf_.size() - off_ < kFrameHeaderBytes + h.body_len) return false;
  *type = h.type;
  *body = buf_.data() + off_ + kFrameHeaderBytes;
  *len = h.body_len;
  if (version) *version = h.version;
  off_ += kFrameHeaderBytes + h.body_len;
  return true;
}

}  // namespace ppgnn::rpc
