#include "rpc/client.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace ppgnn::rpc {

namespace {

using Clock = std::chrono::steady_clock;

// Deadline-bounded full write on a (blocking or not) fd — handshake only;
// steady-state writes go through the nonblocking outbox.
bool write_all(int fd, const std::uint8_t* p, std::size_t n,
               Clock::time_point deadline, std::string* err) {
  while (n > 0) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) {
      if (err) *err = "handshake write timeout";
      return false;
    }
    pollfd pf{fd, POLLOUT, 0};
    if (::poll(&pf, 1, static_cast<int>(left.count())) <= 0) {
      if (err) *err = "handshake write timeout";
      return false;
    }
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      if (err) *err = std::string("handshake write: ") + std::strerror(errno);
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

// Sends Hello (offering `offer`), waits for HelloAck, and checks the
// negotiated version is sane: within what this binary speaks and never
// above our offer.  The FrameReader is local: handshake bytes never mix
// with steady-state traffic.
bool hello_exchange(int fd, Clock::time_point deadline, std::uint32_t offer,
                    WireHelloAck* ack, std::string* err) {
  std::vector<std::uint8_t> frame;
  WireHello h;
  h.protocol = offer;
  const auto hello = encode_hello(h);
  // Handshake frames pin frame-version 1 — negotiation hasn't happened yet.
  append_frame(frame, MsgType::kHello, hello.data(), hello.size(),
               /*version=*/1);
  if (!write_all(fd, frame.data(), frame.size(), deadline, err)) return false;

  FrameReader reader;
  std::uint8_t buf[4096];
  for (;;) {
    MsgType type;
    std::vector<std::uint8_t> body;
    if (reader.next(&type, &body)) {
      if (type != MsgType::kHelloAck) {
        if (err) *err = "handshake: expected HelloAck";
        return false;
      }
      if (!decode_hello_ack(body.data(), body.size(), ack, err)) return false;
      if (ack->protocol > offer) {
        if (err) *err = "handshake: server acked above our offer";
        return false;
      }
      return true;
    }
    if (reader.failed()) {
      if (err) *err = reader.error();
      return false;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) {
      if (err) *err = "handshake read timeout";
      return false;
    }
    pollfd pf{fd, POLLIN, 0};
    if (::poll(&pf, 1, static_cast<int>(left.count())) <= 0) {
      if (err) *err = "handshake read timeout";
      return false;
    }
    const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r == 0) {
      if (err) *err = "handshake: server closed the connection";
      return false;
    }
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      if (err) *err = std::string("handshake read: ") + std::strerror(errno);
      return false;
    }
    reader.feed(buf, static_cast<std::size_t>(r));
  }
}

}  // namespace

RpcClient::RpcClient(RpcClientConfig cfg)
    : cfg_(std::move(cfg)), pool_(cfg_.frame_pool_buffers) {
  if (::pipe2(wake_pipe_, O_CLOEXEC | O_NONBLOCK) != 0) {
    throw std::runtime_error("RpcClient: pipe2 failed");
  }
}

RpcClient::~RpcClient() { shutdown(); }

bool RpcClient::handshake(WireHelloAck* ack, std::string* err) {
  const auto deadline = Clock::now() + cfg_.handshake_timeout;
  int fd = -1;
  std::string last_err = "handshake timeout";
  // Retry the connect inside the budget: the replica process may still be
  // loading its checkpoint when we first knock.
  while (Clock::now() < deadline) {
    fd = connect_to(cfg_.address, cfg_.connect_timeout, &last_err);
    if (fd >= 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  if (fd < 0) {
    std::lock_guard<std::mutex> lk(mu_);
    dead_ = true;
    if (err) *err = last_err;
    return false;
  }
  if (!hello_exchange(fd, deadline, cfg_.protocol, ack, err)) {
    ::close(fd);
    std::lock_guard<std::mutex> lk(mu_);
    dead_ = true;
    return false;
  }
  set_nonblocking(fd);
  {
    std::lock_guard<std::mutex> lk(mu_);
    fd_ = fd;
    connected_ = true;
    protocol_ = static_cast<std::uint8_t>(ack->protocol);
  }
  io_ = std::thread([this] { io_loop(); });
  return true;
}

void RpcClient::call(WireRequest& req, std::chrono::milliseconds timeout,
                     Done done) {
  if (timeout.count() <= 0) timeout = cfg_.request_timeout;
  std::string why;
  bool need_wake = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) {
      why = "rpc client shut down";
    } else if (dead_) {
      why = "rpc transport dead (reconnect attempts exhausted)";
    } else if (!connected_) {
      // Fail fast while reconnecting: the fleet re-routes instead of
      // queueing work against a connection that may never come back.
      why = "rpc transport disconnected";
    } else if (pending_count_ > kSlotMask) {
      why = "rpc client overloaded (slot slab exhausted)";
    } else {
      std::uint32_t slot;
      if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
      } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
      }
      const std::uint64_t id = (next_seq_++ << kSlotBits) | slot;
      req.id = id;
      Pending& p = slots_[slot];
      p.id = id;
      p.done = std::move(done);
      p.expires = Clock::now() + timeout;
      ++pending_count_;
      // Wake the I/O thread only on the idle->busy edge: while the outbox
      // already has frames the poll loop has POLLOUT armed (or a wake byte
      // pending) and will pick this frame up on its own.  A dispatcher
      // submitting a whole batch then costs one pipe write, not one per
      // envelope — on a busy box each elided wake is a context switch
      // saved.  The second clause covers the deadline-driven sweep: a call
      // expiring before everything already in flight must shorten the
      // loop's sleep (with uniform timeouts it never fires).
      need_wake = outbox_.empty() || p.expires < next_expiry_;
      if (p.expires < next_expiry_) next_expiry_ = p.expires;
      const std::uint8_t proto = protocol_;
      outbox_.push_back(encode_pooled(
          pool_, stats_,
          [&req, proto](std::vector<std::uint8_t>& out) {
            encode_request_into(req, out, proto);
          }));
    }
  }
  if (why.empty()) {
    if (need_wake) wake();
    return;
  }
  Result r;
  r.transport_ok = false;
  r.transport_error = why;
  done(r);
}

bool RpcClient::alive() const {
  std::lock_guard<std::mutex> lk(mu_);
  return connected_ && !stopping_;
}

std::size_t RpcClient::inflight() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_count_;
}

RpcStats RpcClient::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::uint8_t RpcClient::protocol() const {
  std::lock_guard<std::mutex> lk(mu_);
  return protocol_;
}

void RpcClient::wake() {
  const std::uint8_t b = 1;
  [[maybe_unused]] const ssize_t w = ::write(wake_pipe_[1], &b, 1);
}

void RpcClient::drop_connection_locked(
    const std::string& why,
    std::vector<std::pair<Done, Result>>* completions) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  connected_ = false;
  while (!outbox_.empty()) {
    pool_.release(std::move(outbox_.front()));
    outbox_.pop_front();
  }
  reader_ = FrameReader{};
  next_expiry_ = Clock::time_point::max();
  for (Pending& p : slots_) {
    if (p.id == 0) continue;
    Result r;
    r.transport_ok = false;
    r.transport_error = why;
    completions->emplace_back(std::move(p.done), std::move(r));
    p.done = nullptr;
    p.id = 0;
  }
  free_slots_.clear();
  slots_.clear();
  pending_count_ = 0;
  if (reconnect_attempts_ >= cfg_.max_reconnect_attempts) {
    dead_ = true;
    return;
  }
  backoff_ = backoff_.count() == 0
                 ? cfg_.backoff_initial
                 : std::min(backoff_ * 2, cfg_.backoff_max);
  next_reconnect_ = Clock::now() + backoff_;
}

bool RpcClient::try_reconnect() {
  std::string err;
  WireHelloAck ack;
  int fd = connect_to(cfg_.address, cfg_.connect_timeout, &err);
  bool ok = fd >= 0;
  if (ok && !hello_exchange(fd, Clock::now() + cfg_.connect_timeout,
                            cfg_.protocol, &ack, &err)) {
    ::close(fd);
    ok = false;
  }
  std::lock_guard<std::mutex> lk(mu_);
  ++reconnect_attempts_;
  if (stopping_) {
    if (ok) ::close(fd);
    return false;
  }
  if (ok) {
    set_nonblocking(fd);
    fd_ = fd;
    connected_ = true;
    reconnect_attempts_ = 0;
    backoff_ = std::chrono::milliseconds(0);
    reader_ = FrameReader{};
    // Re-negotiated per connection: a rolling server upgrade between the
    // drop and this reconnect may have changed the answer.
    protocol_ = static_cast<std::uint8_t>(ack.protocol);
    return true;
  }
  if (reconnect_attempts_ >= cfg_.max_reconnect_attempts) {
    dead_ = true;
  } else {
    backoff_ = backoff_.count() == 0
                   ? cfg_.backoff_initial
                   : std::min(backoff_ * 2, cfg_.backoff_max);
    next_reconnect_ = Clock::now() + backoff_;
  }
  return false;
}

void RpcClient::io_loop() {
  // The per-request timeout is a hang detector, so the loop sleeps exactly
  // until the NEAREST in-flight expiry (next_expiry_, maintained
  // incrementally by call()) instead of ticking on a fixed interval — and
  // indefinitely when nothing is in flight, so an idle client costs zero
  // wakeups.  The expired scan runs only when that instant actually
  // arrives, never per iteration.
  std::vector<std::pair<Done, Result>> completions;
  // Response decode scratch, reused across frames: decode_response refills
  // the same parts/logits capacity every time, and the Done borrows it
  // (moving out only what must outlive the callback), so the response path
  // stops allocating once the scratch has seen the workload's widest frame.
  Result scratch;
  std::uint8_t buf[65536];
  for (;;) {
    completions.clear();
    bool conn, reconnect_due = false;
    int fd;
    bool want_write;
    std::chrono::milliseconds wait{-1};  // -1: block until an fd event
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopping_) return;
      conn = connected_;
      fd = fd_;
      want_write = !outbox_.empty();
      const auto now = Clock::now();
      auto cap = [&wait](Clock::time_point t, Clock::time_point now) {
        // ceil, not truncate: a poll returning one ms early would spin on
        // a zero timeout until the deadline finally passes.
        auto ms = std::chrono::ceil<std::chrono::milliseconds>(t - now);
        if (ms.count() < 0) ms = std::chrono::milliseconds(0);
        if (wait.count() < 0 || ms < wait) wait = ms;
      };
      if (next_expiry_ != Clock::time_point::max()) cap(next_expiry_, now);
      if (!conn && !dead_) {
        if (now >= next_reconnect_) {
          reconnect_due = true;
        } else {
          cap(next_reconnect_, now);
        }
      }
    }
    if (reconnect_due) {
      try_reconnect();
      continue;
    }

    pollfd pfds[2];
    pfds[0] = {wake_pipe_[0], POLLIN, 0};
    nfds_t nfds = 1;
    if (conn) {
      pfds[1] = {fd, static_cast<short>(POLLIN | (want_write ? POLLOUT : 0)),
                 0};
      nfds = 2;
    }
    const int poll_ms =
        wait.count() < 0
            ? -1
            : static_cast<int>(std::min<std::int64_t>(wait.count(), INT_MAX));
    ::poll(pfds, nfds, poll_ms);
    if (pfds[0].revents & POLLIN) {
      std::uint8_t drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }

    if (conn && nfds == 2) {
      bool dropped = false;
      if (pfds[1].revents & (POLLERR | POLLHUP)) {
        std::lock_guard<std::mutex> lk(mu_);
        drop_connection_locked("rpc connection lost", &completions);
        dropped = true;
      }
      if (!dropped && (pfds[1].revents & POLLOUT)) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!drain_writev(fd, outbox_, pool_, stats_)) {
          drop_connection_locked("rpc write failed", &completions);
          dropped = true;
        }
      }
      if (!dropped && (pfds[1].revents & POLLIN)) {
        for (;;) {
          const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
          if (r > 0) {
            reader_.feed(buf, static_cast<std::size_t>(r));
            continue;
          }
          if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (r < 0 && errno == EINTR) continue;
          std::lock_guard<std::mutex> lk(mu_);
          drop_connection_locked(r == 0 ? "rpc connection closed by server"
                                        : "rpc read failed",
                                 &completions);
          dropped = true;
          break;
        }
        // Zero-copy decode: the body view aliases the reader's buffer,
        // which only this thread feeds — valid until the next recv.
        MsgType type;
        const std::uint8_t* body = nullptr;
        std::size_t body_len = 0;
        while (!dropped && reader_.next_view(&type, &body, &body_len)) {
          std::string err;
          if (type != MsgType::kResponse ||
              !decode_response(body, body_len, &scratch.response, &err)) {
            std::lock_guard<std::mutex> lk(mu_);
            drop_connection_locked(
                err.empty() ? "rpc protocol violation" : err, &completions);
            dropped = true;
            break;
          }
          Done done;
          {
            std::lock_guard<std::mutex> lk(mu_);
            const std::uint64_t id = scratch.response.id;
            const auto slot = static_cast<std::size_t>(id & kSlotMask);
            // Slot empty or recycled for a newer call: a late response to
            // a timed-out id — drop it.
            if (slot >= slots_.size() || slots_[slot].id != id) continue;
            Pending& p = slots_[slot];
            done = std::move(p.done);
            p.done = nullptr;
            p.id = 0;
            free_slots_.push_back(static_cast<std::uint32_t>(slot));
            --pending_count_;
          }
          // Completed inline, mu_ released: the borrowed scratch is this
          // thread's, and the callback may submit follow-up calls.
          scratch.transport_ok = true;
          scratch.transport_error.clear();
          done(scratch);
        }
        if (!dropped && reader_.failed()) {
          std::lock_guard<std::mutex> lk(mu_);
          drop_connection_locked(reader_.error(), &completions);
        }
      }
    }

    // Per-request timeout sweep: the hang detector.  Runs only when the
    // nearest tracked expiry has actually arrived (next_expiry_ may be
    // stale-early after that call completed — then the scan finds nothing
    // and just recomputes).  The connection stays up — a late response to
    // the forgotten id is dropped on arrival.
    if (const auto now = Clock::now(); true) {
      std::lock_guard<std::mutex> lk(mu_);
      if (now >= next_expiry_) {
        auto nearest = Clock::time_point::max();
        for (std::uint32_t s = 0; s < slots_.size(); ++s) {
          Pending& p = slots_[s];
          if (p.id == 0) continue;
          if (p.expires <= now) {
            Result r;
            r.transport_ok = false;
            r.transport_error = "rpc request timeout";
            completions.emplace_back(std::move(p.done), std::move(r));
            p.done = nullptr;
            p.id = 0;
            free_slots_.push_back(s);
            --pending_count_;
          } else {
            nearest = std::min(nearest, p.expires);
          }
        }
        next_expiry_ = nearest;
      }
    }

    for (auto& [done, result] : completions) done(result);
  }
}

void RpcClient::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) {
      // A concurrent/second shutdown: the first one owns the teardown.
      return;
    }
    stopping_ = true;
  }
  wake();
  if (io_.joinable()) io_.join();
  std::vector<std::pair<Done, Result>> completions;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (Pending& p : slots_) {
      if (p.id == 0) continue;
      Result r;
      r.transport_ok = false;
      r.transport_error = "rpc client shut down";
      completions.emplace_back(std::move(p.done), std::move(r));
      p.done = nullptr;
      p.id = 0;
    }
    free_slots_.clear();
    slots_.clear();
    pending_count_ = 0;
    next_expiry_ = Clock::time_point::max();
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    connected_ = false;
  }
  for (auto& [done, result] : completions) done(result);
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

}  // namespace ppgnn::rpc
