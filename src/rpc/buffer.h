// Pooled frame buffers + vectored drain: the RPC transport fast path.
//
// Steady-state serving moves one wire frame per request/response.  Before
// this pool the transport paid two heap allocations per frame (the
// encoder's fresh std::vector, then the flat outbox growing to absorb it)
// and one ::send syscall per poll wake.  The fast path removes both:
//
//   * FramePool recycles encode buffers.  acquire() pops a warm buffer off
//     a free list with its capacity intact; the owner encodes a frame into
//     it with the *_into encoders (wire.h) and queues it on a deque outbox;
//     after the bytes reach the socket, release() returns the buffer for
//     the next frame.  Once every buffer in rotation has grown to the
//     workload's frame size, the transport allocates nothing per frame.
//   * drain_writev() flushes the whole outbox with vectored writes
//     (sendmsg — writev with MSG_NOSIGNAL), so a burst of frames completed
//     in one dispatch round costs one syscall, not one per frame.
//
// Coalescing happens BELOW framing: the bytes entering the socket are
// byte-for-byte what the per-frame path would have written (asserted by
// test_rpc_fastpath), so docs/wire-protocol.md is untouched.
//
// Neither FramePool nor the deque outbox is thread-safe; the owner guards
// both with the same mutex it already holds around its outbox (client mu_,
// server per-connection mu).  RpcStats rides under that lock too.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

namespace ppgnn::rpc {

// One encoded ppgnn-wire frame (header + body) in a reusable buffer.
// `off` tracks how much of it has already reached the socket — a short
// write leaves a partially-drained frame at the head of the outbox.
struct FrameBuffer {
  std::vector<std::uint8_t> data;
  std::size_t off = 0;

  std::size_t remaining() const { return data.size() - off; }
};

// Transport counters.  Updated under the owner's outbox lock; snapshot by
// copy.  The derived ratios are what the bench's cross_process record and
// serve_cli --remote-replicas report: frames per vectored write (syscall
// coalescing), bytes per syscall, pool hit rate, and allocations per frame
// (which must go to ~0 at steady state).
struct RpcStats {
  std::uint64_t frames_enqueued = 0;  // frames queued for transmission
  std::uint64_t frames_sent = 0;      // frames fully drained to the socket
  std::uint64_t writev_calls = 0;     // vectored write syscalls that moved bytes
  std::uint64_t bytes_sent = 0;
  std::uint64_t pool_hits = 0;        // acquire() served from the free list
  std::uint64_t pool_misses = 0;      // acquire() had to allocate a buffer
  // Heap allocations for frame storage: fresh buffers (pool misses) plus
  // every time an encode outgrew a recycled buffer's capacity.
  std::uint64_t buffer_allocs = 0;

  double frames_per_writev() const {
    return writev_calls ? static_cast<double>(frames_sent) /
                              static_cast<double>(writev_calls)
                        : 0.0;
  }
  double bytes_per_syscall() const {
    return writev_calls ? static_cast<double>(bytes_sent) /
                              static_cast<double>(writev_calls)
                        : 0.0;
  }
  double pool_hit_rate() const {
    const std::uint64_t total = pool_hits + pool_misses;
    return total ? static_cast<double>(pool_hits) / static_cast<double>(total)
                 : 0.0;
  }
  double allocs_per_frame() const {
    return frames_enqueued ? static_cast<double>(buffer_allocs) /
                                 static_cast<double>(frames_enqueued)
                           : 0.0;
  }

  void merge(const RpcStats& o) {
    frames_enqueued += o.frames_enqueued;
    frames_sent += o.frames_sent;
    writev_calls += o.writev_calls;
    bytes_sent += o.bytes_sent;
    pool_hits += o.pool_hits;
    pool_misses += o.pool_misses;
    buffer_allocs += o.buffer_allocs;
  }
};

// Free list of FrameBuffers.  Not thread-safe (see header note).
//
// The free list is sized by a high-water mark, not a fixed cap: a deep
// pipeline (a closed-loop client keeping hundreds of requests in flight)
// legitimately has that many frames acquired-but-unsent at once, and a
// fixed cap would drop most of them on release and then miss on the next
// burst — allocs_per_frame would never reach zero.  Retaining up to the
// peak outstanding count is exactly the working set needed for zero
// steady-state allocations, and it is already the memory the workload
// demonstrably used; `min_free` (the config knob) is only the floor.
class FramePool {
 public:
  // Floor on retained buffers; covers a full dispatch round of
  // completions plus slack even before any deep burst raises the mark.
  static constexpr std::size_t kDefaultMaxFree = 64;
  // Fresh buffers start at one typical request frame so the first encode
  // into them usually does not grow.
  static constexpr std::size_t kInitialCapacity = 512;

  explicit FramePool(std::size_t min_free = kDefaultMaxFree)
      : min_free_(min_free) {}

  // A cleared buffer (size 0, capacity intact), from the free list when
  // possible.  Counts the hit/miss and, on a miss, the allocation.
  std::unique_ptr<FrameBuffer> acquire(RpcStats* stats) {
    ++outstanding_;
    if (outstanding_ > peak_outstanding_) peak_outstanding_ = outstanding_;
    if (!free_.empty()) {
      auto f = std::move(free_.back());
      free_.pop_back();
      f->data.clear();
      f->off = 0;
      ++stats->pool_hits;
      return f;
    }
    ++stats->pool_misses;
    ++stats->buffer_allocs;
    auto f = std::make_unique<FrameBuffer>();
    f->data.reserve(kInitialCapacity);
    return f;
  }

  void release(std::unique_ptr<FrameBuffer> f) {
    if (outstanding_ > 0) --outstanding_;
    if (free_.size() < std::max(min_free_, peak_outstanding_)) {
      free_.push_back(std::move(f));
    }
    // else: drop — the watermark is the memory bound, not every buffer.
  }

  std::size_t free_count() const { return free_.size(); }
  std::size_t peak_outstanding() const { return peak_outstanding_; }

 private:
  std::vector<std::unique_ptr<FrameBuffer>> free_;
  std::size_t min_free_;
  std::size_t outstanding_ = 0;       // acquired, not yet released
  std::size_t peak_outstanding_ = 0;  // high-water mark — free-list bound
};

// Encodes one frame into a pooled buffer via `encode(std::vector&)`
// (one of the *_into encoders), charging any capacity growth as a heap
// allocation so allocs_per_frame() stays honest.
template <typename EncodeFn>
std::unique_ptr<FrameBuffer> encode_pooled(FramePool& pool, RpcStats& stats,
                                           EncodeFn&& encode) {
  auto f = pool.acquire(&stats);
  const std::size_t cap = f->data.capacity();
  encode(f->data);
  if (f->data.capacity() != cap) ++stats.buffer_allocs;
  ++stats.frames_enqueued;
  return f;
}

using FrameQueue = std::deque<std::unique_ptr<FrameBuffer>>;

// Upper bound on frames per vectored write.  IOV_MAX is 1024 on Linux;
// batching beyond a few dozen frames stops moving the syscall amortization
// needle and only grows the stack-side iovec array, so the bound is the
// smaller of the two (clamped against IOV_MAX at runtime in drain).
inline constexpr std::size_t kMaxWriteIov = 64;

// Flushes `q` to nonblocking `fd` with bounded vectored writes until the
// queue empties or the socket stops taking bytes (EAGAIN — the caller keeps
// POLLOUT armed).  Fully-written frames go back to `pool`; a short write
// leaves the head frame partially drained.  False on a fatal socket error
// (errno preserved for the caller's diagnostics).
bool drain_writev(int fd, FrameQueue& q, FramePool& pool, RpcStats& stats);

}  // namespace ppgnn::rpc
