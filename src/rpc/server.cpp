#include "rpc/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <map>
#include <mutex>
#include <vector>

#include "rpc/frame.h"
#include "rpc/wire.h"

namespace ppgnn::rpc {

namespace {

// One accepted connection.  The outbox is written by batcher dispatcher
// threads (completion sinks) and flushed by the poll loop, hence the mutex;
// `closed` makes a sink for a vanished client drop its response instead of
// writing into a dead buffer.
struct Conn {
  explicit Conn(int f) : fd(f) {}
  int fd;
  FrameReader reader;
  std::mutex mu;
  std::vector<std::uint8_t> outbox;
  std::size_t out_off = 0;
  bool closed = false;

  // Returns true when the outbox went idle->busy: only that edge needs a
  // poll-loop wake (while bytes are queued the loop has POLLOUT armed or a
  // wake byte pending), so a batch of completions costs one pipe write.
  bool enqueue(MsgType type, const std::vector<std::uint8_t>& body) {
    std::lock_guard<std::mutex> lk(mu);
    if (closed) return false;
    const bool was_idle = out_off >= outbox.size();
    append_frame(outbox, type, body.data(), body.size());
    return was_idle;
  }
  bool flushed() {
    std::lock_guard<std::mutex> lk(mu);
    return closed || out_off >= outbox.size();
  }
};

serve::ServeStatus part_wire_status(serve::ServeStatus envelope,
                                    bool has_result) {
  if (!has_result) return envelope;
  // A part that carries a result is either a clean answer or a late one;
  // the envelope-level status may be worse because of OTHER parts.
  return envelope == serve::ServeStatus::kDeadlineExceeded
             ? serve::ServeStatus::kDeadlineExceeded
             : serve::ServeStatus::kOk;
}

WireResponse to_wire(const serve::ServeResponse& resp, std::uint64_t wire_id,
                     serve::ResultMode mode) {
  WireResponse w;
  w.id = wire_id;
  w.status = resp.status;
  w.mode = mode;
  w.timings = resp.timings;
  if (resp.error) {
    try {
      std::rethrow_exception(resp.error);
    } catch (const std::exception& e) {
      w.error = e.what();
    } catch (...) {
      w.error = "unknown backend error";
    }
  }
  const std::size_t n =
      mode == serve::ResultMode::kTopK ? resp.topk.size() : resp.logits.size();
  w.parts.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    WirePart& p = w.parts[i];
    if (mode == serve::ResultMode::kTopK) {
      p.topk = resp.topk[i];
      p.status = part_wire_status(resp.status, !p.topk.empty());
    } else {
      p.logits = resp.logits[i];
      p.status = part_wire_status(resp.status, !p.logits.empty());
    }
  }
  return w;
}

}  // namespace

ReplicaServer::ReplicaServer(std::unique_ptr<serve::InferenceSession> session,
                             const ReplicaServerConfig& cfg)
    : session_(std::move(session)), cfg_(cfg) {
  stats_ = std::make_unique<serve::ServerStats>();
}

ReplicaServer::~ReplicaServer() = default;

int ReplicaServer::run(const volatile std::sig_atomic_t* stop) {
  std::string err;
  int listen_fd = listen_on(cfg_.address, &err);
  if (listen_fd < 0) {
    std::fprintf(stderr, "replica_server: %s\n", err.c_str());
    return 1;
  }
  set_nonblocking(listen_fd);
  int wake_pipe[2];
  if (::pipe2(wake_pipe, O_CLOEXEC | O_NONBLOCK) != 0) {
    ::close(listen_fd);
    std::fprintf(stderr, "replica_server: pipe2 failed\n");
    return 1;
  }
  const int wake_wfd = wake_pipe[1];
  auto wake = [wake_wfd] {
    const std::uint8_t b = 1;
    [[maybe_unused]] const ssize_t w = ::write(wake_wfd, &b, 1);
  };

  std::map<int, std::shared_ptr<Conn>> conns;
  std::atomic<std::size_t> inflight{0};
  // HelloAck advertises the logits width; measured by running one real
  // inference, which doubles as the health check the Warming handshake
  // exists for — a replica that cannot answer node 0 never acks.
  std::uint32_t classes = 0;

  serve::MicroBatcher batcher(*session_, cfg_.batch, stats_.get());
  bool draining = false;
  std::chrono::steady_clock::time_point drain_deadline{};

  auto handle_request = [&](const std::shared_ptr<Conn>& conn,
                            const WireRequest& wreq) {
    serve::ServeRequest sreq;
    sreq.id = wreq.id;
    sreq.nodes = wreq.nodes;
    sreq.priority = wreq.priority;
    sreq.mode = wreq.mode;
    sreq.topk = wreq.topk;
    sreq.deadline = budget_us_to_deadline(wreq.deadline_rel_us,
                                          std::chrono::steady_clock::now());
    const std::uint64_t wire_id = wreq.id;
    const serve::ResultMode mode = wreq.mode;
    inflight.fetch_add(1, std::memory_order_relaxed);
    auto state = std::make_shared<serve::RequestState>(
        std::move(sreq),
        [conn, wire_id, mode, &inflight,
         wake](serve::ServeResponse&& resp) {
          const WireResponse w = to_wire(resp, wire_id, mode);
          const auto body = encode_response(w);
          const bool need_wake = conn->enqueue(MsgType::kResponse, body);
          inflight.fetch_sub(1, std::memory_order_relaxed);
          if (need_wake) wake();
        });
    const std::size_t parts = state->parts();
    auto bounce = [&state, parts] {
      for (std::uint32_t slot = 0; slot < parts; ++slot) {
        state->finish_part(slot, serve::ServeStatus::kDraining, nullptr, 0,
                           serve::StageTimings{});
      }
    };
    if (draining) {
      bounce();
      return;
    }
    std::vector<std::uint32_t> slots(parts);
    for (std::uint32_t i = 0; i < parts; ++i) slots[i] = i;
    serve::RejectReason reason;
    try {
      reason = batcher.try_submit_parts(state, slots.data(), slots.size());
    } catch (const std::runtime_error&) {
      reason = serve::RejectReason::kDraining;  // stopped == terminal drain
    }
    if (reason == serve::RejectReason::kDraining) bounce();
    // kOverload / kDeadline: the batcher resolved the parts itself.
  };

  auto close_conn = [&conns](int fd) {
    const auto it = conns.find(fd);
    if (it == conns.end()) return;
    {
      std::lock_guard<std::mutex> lk(it->second->mu);
      it->second->closed = true;
    }
    ::close(fd);
    conns.erase(it);
  };

  std::uint8_t buf[65536];
  std::vector<pollfd> pfds;
  for (;;) {
    if (!draining && *stop) {
      draining = true;
      drain_deadline = std::chrono::steady_clock::now() + cfg_.drain_timeout;
      if (listen_fd >= 0) {
        ::close(listen_fd);
        listen_fd = -1;
      }
      batcher.begin_drain();
    }
    if (draining) {
      bool all_flushed = inflight.load(std::memory_order_relaxed) == 0;
      for (const auto& [fd, conn] : conns) {
        all_flushed = all_flushed && conn->flushed();
      }
      if (all_flushed || std::chrono::steady_clock::now() > drain_deadline) {
        break;
      }
    }

    pfds.clear();
    pfds.push_back({wake_pipe[0], POLLIN, 0});
    if (listen_fd >= 0) pfds.push_back({listen_fd, POLLIN, 0});
    for (const auto& [fd, conn] : conns) {
      short ev = POLLIN;
      if (!conn->flushed()) ev |= POLLOUT;
      pfds.push_back({fd, ev, 0});
    }
    ::poll(pfds.data(), pfds.size(), 50);

    std::size_t idx = 0;
    if (pfds[idx].revents & POLLIN) {
      std::uint8_t drain_buf[64];
      while (::read(wake_pipe[0], drain_buf, sizeof(drain_buf)) > 0) {
      }
    }
    ++idx;
    if (listen_fd >= 0) {
      if (pfds[idx].revents & POLLIN) {
        for (;;) {
          const int cfd = ::accept4(listen_fd, nullptr, nullptr,
                                    SOCK_CLOEXEC | SOCK_NONBLOCK);
          if (cfd < 0) break;
          conns.emplace(cfd, std::make_shared<Conn>(cfd));
        }
      }
      ++idx;
    }

    std::vector<int> dead;
    for (auto& [fd, conn] : conns) {
      // pfds entries after the fixed ones mirror `conns` iteration order
      // (std::map: stable, sorted by fd — unchanged since the poll above).
      const pollfd& p = pfds[idx++];
      if (p.revents & (POLLERR | POLLHUP)) {
        dead.push_back(fd);
        continue;
      }
      if (p.revents & POLLOUT) {
        std::lock_guard<std::mutex> lk(conn->mu);
        while (conn->out_off < conn->outbox.size()) {
          const ssize_t w =
              ::send(fd, conn->outbox.data() + conn->out_off,
                     conn->outbox.size() - conn->out_off, MSG_NOSIGNAL);
          if (w > 0) {
            conn->out_off += static_cast<std::size_t>(w);
            continue;
          }
          if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (w < 0 && errno == EINTR) continue;
          dead.push_back(fd);
          break;
        }
        if (conn->out_off >= conn->outbox.size()) {
          conn->outbox.clear();
          conn->out_off = 0;
        }
      }
      if (p.revents & POLLIN) {
        bool eof = false;
        for (;;) {
          const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
          if (r > 0) {
            conn->reader.feed(buf, static_cast<std::size_t>(r));
            continue;
          }
          if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (r < 0 && errno == EINTR) continue;
          eof = true;
          break;
        }
        MsgType type;
        std::vector<std::uint8_t> body;
        bool proto_err = false;
        while (conn->reader.next(&type, &body)) {
          if (type == MsgType::kHello) {
            WireHello hello;
            std::string herr;
            if (!decode_hello(body.data(), body.size(), &hello, &herr)) {
              proto_err = true;
              break;
            }
            if (classes == 0) {
              classes = static_cast<std::uint32_t>(
                  session_->infer_one(0).size());
            }
            WireHelloAck ack;
            ack.num_nodes = session_->num_nodes();
            ack.classes = classes;
            ack.precision = static_cast<std::uint8_t>(session_->precision());
            conn->enqueue(MsgType::kHelloAck, encode_hello_ack(ack));
          } else if (type == MsgType::kRequest) {
            WireRequest wreq;
            std::string rerr;
            if (!decode_request(body.data(), body.size(), &wreq, &rerr)) {
              proto_err = true;
              break;
            }
            handle_request(conn, wreq);
          } else {
            proto_err = true;  // clients never send HelloAck/Response
            break;
          }
        }
        if (proto_err || conn->reader.failed() || eof) {
          dead.push_back(fd);
        }
      }
    }
    for (const int fd : dead) close_conn(fd);
  }

  // Admitted work completes inside stop(); its responses were either
  // flushed above (clean drain) or die with the connections (drain
  // timeout — the client's transport error re-routes them).
  batcher.stop();
  for (auto& [fd, conn] : conns) {
    std::lock_guard<std::mutex> lk(conn->mu);
    conn->closed = true;
    ::close(fd);
  }
  conns.clear();
  if (listen_fd >= 0) ::close(listen_fd);
  ::close(wake_pipe[0]);
  ::close(wake_pipe[1]);
  return 0;
}

}  // namespace ppgnn::rpc
