#include "rpc/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <iterator>
#include <map>
#include <mutex>
#include <vector>

#include "rpc/frame.h"
#include "rpc/wire.h"

namespace ppgnn::rpc {

namespace {

// One accepted connection.  The outbox is written by batcher dispatcher
// threads (completion sinks) and flushed by the poll loop, hence the mutex;
// `closed` makes a sink for a vanished client drop its response instead of
// writing into a dead buffer.  The frame pool and counters are per
// connection and ride under the same mutex (a replica serves one front, so
// per-conn pooling IS global pooling here).
struct Conn {
  Conn(int f, std::size_t pool_buffers) : fd(f), pool(pool_buffers) {}
  int fd;
  FrameReader reader;
  std::mutex mu;
  FrameQueue outbox;
  FramePool pool;
  RpcStats stats;
  bool closed = false;
  // Per-connection NEGOTIATED wire version: min(client offer, ours), set
  // while handling the Hello and read by completion sinks when framing
  // responses.  Both sides happen under `mu` (the sinks encode inside
  // enqueue()), so a plain byte suffices.
  std::uint8_t protocol = kWireVersion;

  // Encodes one frame into a pooled buffer via `encode` (a *_into
  // encoder).  Returns true when the outbox went idle->busy: only that
  // edge needs a poll-loop wake (while frames are queued the loop has
  // POLLOUT armed or a wake byte pending), so a dispatch round completing
  // a whole batch of responses costs one pipe write — and the loop then
  // flushes all of them in one vectored write.
  template <typename EncodeFn>
  bool enqueue(EncodeFn&& encode) {
    std::lock_guard<std::mutex> lk(mu);
    if (closed) return false;
    const bool was_idle = outbox.empty();
    outbox.push_back(
        encode_pooled(pool, stats, std::forward<EncodeFn>(encode)));
    return was_idle;
  }
  bool flushed() {
    std::lock_guard<std::mutex> lk(mu);
    return closed || outbox.empty();
  }
};

serve::ServeStatus part_wire_status(serve::ServeStatus envelope,
                                    bool has_result) {
  if (!has_result) return envelope;
  // A part that carries a result is either a clean answer or a late one;
  // the envelope-level status may be worse because of OTHER parts.
  return envelope == serve::ServeStatus::kDeadlineExceeded
             ? serve::ServeStatus::kDeadlineExceeded
             : serve::ServeStatus::kOk;
}

// Fills `w` (a reusable scratch) from a finished ServeResponse.  The
// per-part payloads are MOVED out of `resp` — it owns them and dies with
// the completion sink — so building the wire shape costs zero allocations:
// the scratch's parts array keeps its capacity and each moved-in vector
// replaces (frees) the one left over from the previous response.
void to_wire_into(serve::ServeResponse& resp, std::uint64_t wire_id,
                  serve::ResultMode mode, WireResponse& w) {
  w.id = wire_id;
  w.status = resp.status;
  w.mode = mode;
  w.timings = resp.timings;
  w.error.clear();
  if (resp.error) {
    try {
      std::rethrow_exception(resp.error);
    } catch (const std::exception& e) {
      w.error = e.what();
    } catch (...) {
      w.error = "unknown backend error";
    }
  }
  const std::size_t n =
      mode == serve::ResultMode::kTopK ? resp.topk.size() : resp.logits.size();
  w.parts.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    WirePart& p = w.parts[i];
    if (mode == serve::ResultMode::kTopK) {
      p.logits.clear();
      p.topk = std::move(resp.topk[i]);
      p.status = part_wire_status(resp.status, !p.topk.empty());
    } else {
      p.topk.clear();
      p.logits = std::move(resp.logits[i]);
      p.status = part_wire_status(resp.status, !p.logits.empty());
    }
  }
}

}  // namespace

ReplicaServer::ReplicaServer(std::unique_ptr<serve::InferenceSession> session,
                             const ReplicaServerConfig& cfg)
    : session_(std::move(session)), cfg_(cfg) {
  stats_ = std::make_unique<serve::ServerStats>();
}

ReplicaServer::~ReplicaServer() = default;

int ReplicaServer::run(const volatile std::sig_atomic_t* stop) {
  std::string err;
  int listen_fd = listen_on(cfg_.address, &err);
  if (listen_fd < 0) {
    std::fprintf(stderr, "replica_server: %s\n", err.c_str());
    return 1;
  }
  set_nonblocking(listen_fd);
  int wake_pipe[2];
  if (::pipe2(wake_pipe, O_CLOEXEC | O_NONBLOCK) != 0) {
    ::close(listen_fd);
    std::fprintf(stderr, "replica_server: pipe2 failed\n");
    return 1;
  }
  const int wake_wfd = wake_pipe[1];
  auto wake = [wake_wfd] {
    const std::uint8_t b = 1;
    [[maybe_unused]] const ssize_t w = ::write(wake_wfd, &b, 1);
  };

  std::map<int, std::shared_ptr<Conn>> conns;
  std::atomic<std::size_t> inflight{0};
  // HelloAck advertises the logits width; measured by running one real
  // inference, which doubles as the health check the Warming handshake
  // exists for — a replica that cannot answer node 0 never acks.
  std::uint32_t classes = 0;

  serve::MicroBatcher batcher(*session_, cfg_.batch, stats_.get());
  bool draining = false;
  std::chrono::steady_clock::time_point drain_deadline{};

  auto handle_request = [&](const std::shared_ptr<Conn>& conn,
                            WireRequest& wreq) {
    serve::ServeRequest sreq;
    sreq.id = wreq.id;
    // The decoded nodes move straight into the serve envelope — the wire
    // request is scratch and the ServeRequest needs ownership anyway.
    sreq.nodes = std::move(wreq.nodes);
    sreq.priority = wreq.priority;
    sreq.mode = wreq.mode;
    sreq.topk = wreq.topk;
    sreq.tenant = wreq.tenant;
    sreq.deadline = budget_us_to_deadline(wreq.deadline_rel_us,
                                          std::chrono::steady_clock::now());
    const std::uint64_t wire_id = wreq.id;
    const serve::ResultMode mode = wreq.mode;
    inflight.fetch_add(1, std::memory_order_relaxed);
    auto state = std::make_shared<serve::RequestState>(
        std::move(sreq),
        [conn, wire_id, mode, &inflight,
         wake](serve::ServeResponse&& resp) {
          // One wire-shape scratch per dispatcher thread: to_wire_into
          // moves the payloads out of `resp` and reuses the scratch's
          // parts capacity, so a completion allocates nothing on its way
          // to the outbox (the pooled encode buffer is recycled too).
          thread_local WireResponse w;
          to_wire_into(resp, wire_id, mode, w);
          // conn->protocol is read under conn->mu (enqueue runs the encode
          // callback locked), matching the Hello handler's locked write.
          const bool need_wake =
              conn->enqueue([&conn](std::vector<std::uint8_t>& out) {
                encode_response_into(w, out, conn->protocol);
              });
          inflight.fetch_sub(1, std::memory_order_relaxed);
          if (need_wake) wake();
        });
    const std::size_t parts = state->parts();
    auto bounce = [&state, parts] {
      for (std::uint32_t slot = 0; slot < parts; ++slot) {
        state->finish_part(slot, serve::ServeStatus::kDraining, nullptr, 0,
                           serve::StageTimings{});
      }
    };
    if (draining) {
      bounce();
      return;
    }
    // Slot ids are just 0..parts-1; envelopes are a handful of nodes, so a
    // stack array covers them without a per-request allocation (heap only
    // for pathological fan-out).
    std::uint32_t stack_slots[256];
    std::vector<std::uint32_t> heap_slots;
    std::uint32_t* slots = stack_slots;
    if (parts > std::size(stack_slots)) {
      heap_slots.resize(parts);
      slots = heap_slots.data();
    }
    for (std::uint32_t i = 0; i < parts; ++i) slots[i] = i;
    serve::RejectReason reason;
    try {
      reason = batcher.try_submit_parts(state, slots, parts);
    } catch (const std::runtime_error&) {
      reason = serve::RejectReason::kDraining;  // stopped == terminal drain
    }
    if (reason == serve::RejectReason::kDraining) bounce();
    // kOverload / kDeadline: the batcher resolved the parts itself.
  };

  auto close_conn = [&conns, this](int fd) {
    const auto it = conns.find(fd);
    if (it == conns.end()) return;
    {
      std::lock_guard<std::mutex> lk(it->second->mu);
      it->second->closed = true;
      rpc_stats_.merge(it->second->stats);
    }
    ::close(fd);
    conns.erase(it);
  };

  std::uint8_t buf[65536];
  std::vector<pollfd> pfds;
  // Request decode scratch: handle_request moves the nodes out, so across
  // frames this only re-grows what each envelope actually ships.
  WireRequest wreq;
  for (;;) {
    if (!draining && *stop) {
      draining = true;
      drain_deadline = std::chrono::steady_clock::now() + cfg_.drain_timeout;
      if (listen_fd >= 0) {
        ::close(listen_fd);
        listen_fd = -1;
      }
      batcher.begin_drain();
    }
    if (draining) {
      bool all_flushed = inflight.load(std::memory_order_relaxed) == 0;
      for (const auto& [fd, conn] : conns) {
        all_flushed = all_flushed && conn->flushed();
      }
      if (all_flushed || std::chrono::steady_clock::now() > drain_deadline) {
        break;
      }
    }

    pfds.clear();
    pfds.push_back({wake_pipe[0], POLLIN, 0});
    if (listen_fd >= 0) pfds.push_back({listen_fd, POLLIN, 0});
    for (const auto& [fd, conn] : conns) {
      short ev = POLLIN;
      if (!conn->flushed()) ev |= POLLOUT;
      pfds.push_back({fd, ev, 0});
    }
    ::poll(pfds.data(), pfds.size(), 50);

    std::size_t idx = 0;
    if (pfds[idx].revents & POLLIN) {
      std::uint8_t drain_buf[64];
      while (::read(wake_pipe[0], drain_buf, sizeof(drain_buf)) > 0) {
      }
    }
    ++idx;
    if (listen_fd >= 0) {
      if (pfds[idx].revents & POLLIN) {
        for (;;) {
          const int cfd = ::accept4(listen_fd, nullptr, nullptr,
                                    SOCK_CLOEXEC | SOCK_NONBLOCK);
          if (cfd < 0) break;
          conns.emplace(cfd,
                        std::make_shared<Conn>(cfd, cfg_.frame_pool_buffers));
        }
      }
      ++idx;
    }

    std::vector<int> dead;
    // Walk the polled entries, not `conns`: the accept loop above may have
    // grown the map since pfds was built, and std::map orders by fd — a
    // freshly accepted low fd would shift every later entry off its pollfd.
    // Connections accepted this iteration simply wait for the next poll.
    for (; idx < pfds.size(); ++idx) {
      const pollfd& p = pfds[idx];
      const auto conn_it = conns.find(p.fd);
      if (conn_it == conns.end()) continue;
      const int fd = conn_it->first;
      const std::shared_ptr<Conn>& conn = conn_it->second;
      if (p.revents & (POLLERR | POLLHUP)) {
        dead.push_back(fd);
        continue;
      }
      if (p.revents & POLLOUT) {
        std::lock_guard<std::mutex> lk(conn->mu);
        if (!drain_writev(fd, conn->outbox, conn->pool, conn->stats)) {
          dead.push_back(fd);
        }
      }
      if (p.revents & POLLIN) {
        bool eof = false;
        for (;;) {
          const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
          if (r > 0) {
            conn->reader.feed(buf, static_cast<std::size_t>(r));
            continue;
          }
          if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (r < 0 && errno == EINTR) continue;
          eof = true;
          break;
        }
        // Zero-copy decode: the body view aliases the reader's buffer,
        // which only this thread feeds — valid until the next recv.
        MsgType type;
        const std::uint8_t* body = nullptr;
        std::size_t body_len = 0;
        std::uint8_t fver = kWireVersion;
        bool proto_err = false;
        while (conn->reader.next_view(&type, &body, &body_len, &fver)) {
          if (type == MsgType::kHello) {
            WireHello hello;
            std::string herr;
            if (!decode_hello(body, body_len, &hello, &herr)) {
              proto_err = true;
              break;
            }
            // Negotiate: ack min(client offer, what we speak), and frame
            // everything after the handshake at that version.
            const std::uint8_t negotiated = static_cast<std::uint8_t>(
                std::min<std::uint32_t>(hello.protocol, kWireVersion));
            {
              std::lock_guard<std::mutex> lk(conn->mu);
              conn->protocol = negotiated;
            }
            if (classes == 0) {
              classes = static_cast<std::uint32_t>(
                  session_->infer_one(0).size());
            }
            WireHelloAck ack;
            ack.protocol = negotiated;
            ack.num_nodes = session_->num_nodes();
            ack.classes = classes;
            ack.precision = static_cast<std::uint8_t>(session_->precision());
            conn->enqueue([&ack](std::vector<std::uint8_t>& out) {
              encode_hello_ack_into(ack, out);
            });
          } else if (type == MsgType::kRequest) {
            std::string rerr;
            if (!decode_request(body, body_len, &wreq, &rerr, fver)) {
              proto_err = true;
              break;
            }
            handle_request(conn, wreq);
          } else {
            proto_err = true;  // clients never send HelloAck/Response
            break;
          }
        }
        if (proto_err || conn->reader.failed() || eof) {
          dead.push_back(fd);
        }
      }
    }
    for (const int fd : dead) close_conn(fd);
  }

  // Admitted work completes inside stop(); its responses were either
  // flushed above (clean drain) or die with the connections (drain
  // timeout — the client's transport error re-routes them).
  batcher.stop();
  for (auto& [fd, conn] : conns) {
    std::lock_guard<std::mutex> lk(conn->mu);
    conn->closed = true;
    rpc_stats_.merge(conn->stats);
    ::close(fd);
  }
  conns.clear();
  if (listen_fd >= 0) ::close(listen_fd);
  ::close(wake_pipe[0]);
  ::close(wake_pipe[1]);
  return 0;
}

}  // namespace ppgnn::rpc
