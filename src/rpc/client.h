// RpcClient: the front's end of one replica connection.
//
// One background I/O thread multiplexes everything over a single stream
// socket: call() serializes the request into an outbox and returns
// immediately; the thread writes when the socket can take bytes, reads
// whatever arrives, matches responses to pending calls by correlation id,
// and invokes each call's completion exactly once — with the response, or
// with a transport failure (connection lost, per-request timeout, client
// shut down).  Exactly-once completion is the property the fleet's
// crash-recovery leans on: a completion that never fires would strand an
// envelope part forever, one that fires twice would double-finish it.
//
// Failure model:
//  * A lost connection fails every in-flight call immediately (the server
//    may or may not have processed them — the caller re-routes, which can
//    recompute work but never duplicates a response).
//  * The client then retries the connection with bounded exponential
//    backoff (backoff_initial doubling to backoff_max, at most
//    max_reconnect_attempts).  While disconnected, new calls fail fast so
//    the fleet re-routes instead of queueing against a corpse.  After the
//    last attempt the client is permanently dead.
//  * A per-request timeout (a hang detector, not an SLO — deadlines travel
//    inside the request) fails just that call; a late response to a
//    forgotten id is dropped on the floor.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rpc/frame.h"
#include "rpc/wire.h"

namespace ppgnn::rpc {

struct RpcClientConfig {
  std::string address;  // unix:/path or tcp:host:port
  // Whole budget for connect + Hello/HelloAck on handshake(): a replica
  // process needs time to load its checkpoint before it listens.
  std::chrono::milliseconds handshake_timeout{10000};
  // One TCP/Unix connect attempt inside that budget (and per reconnect).
  std::chrono::milliseconds connect_timeout{2000};
  // Default per-call timeout when call() is given none.
  std::chrono::milliseconds request_timeout{30000};
  std::chrono::milliseconds backoff_initial{10};
  std::chrono::milliseconds backoff_max{500};
  int max_reconnect_attempts = 5;
};

class RpcClient {
 public:
  struct Result {
    bool transport_ok = false;
    WireResponse response;        // valid when transport_ok
    std::string transport_error;  // set when !transport_ok
  };
  // Invoked exactly once per call(), on the I/O thread (or inline from
  // call() when the transport is already down).  Keep it lean; it runs in
  // the response path of every other in-flight call.
  using Done = std::function<void(Result&&)>;

  explicit RpcClient(RpcClientConfig cfg);
  ~RpcClient();  // shutdown()

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  // Connects, exchanges Hello/HelloAck, starts the I/O thread.  Call once,
  // before the first call(); false (with *err) leaves the client dead.
  // Retries the connect inside handshake_timeout, so spawning the server
  // process and handshaking can race.
  bool handshake(WireHelloAck* ack, std::string* err);

  // Enqueues one request.  `req.id` is overwritten with the client's own
  // correlation id.  timeout <= 0 means config().request_timeout.
  void call(WireRequest req, std::chrono::milliseconds timeout, Done done);

  bool alive() const;          // connected and not shut down
  std::size_t inflight() const;
  const RpcClientConfig& config() const { return cfg_; }

  // Fails all pending calls ("client shutdown"), stops the I/O thread.
  // Idempotent.
  void shutdown();

 private:
  struct Pending {
    Done done;
    std::chrono::steady_clock::time_point expires;
  };

  void io_loop();
  // Closes the socket, fails all pending into `completions`, arms the
  // reconnect timer (or marks the client dead).  Caller holds mu_.
  void drop_connection_locked(
      const std::string& why,
      std::vector<std::pair<Done, Result>>* completions);
  bool try_reconnect();  // I/O thread only, mu_ NOT held
  void wake();

  RpcClientConfig cfg_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, Pending> pending_;
  std::vector<std::uint8_t> outbox_;
  std::size_t out_off_ = 0;
  std::uint64_t next_id_ = 1;
  int fd_ = -1;
  bool connected_ = false;
  bool dead_ = false;      // reconnect attempts exhausted or handshake failed
  bool stopping_ = false;
  int reconnect_attempts_ = 0;
  std::chrono::milliseconds backoff_{0};
  std::chrono::steady_clock::time_point next_reconnect_{};
  int wake_pipe_[2] = {-1, -1};
  std::thread io_;
  FrameReader reader_;
};

}  // namespace ppgnn::rpc
