// RpcClient: the front's end of one replica connection.
//
// One background I/O thread multiplexes everything over a single stream
// socket: call() serializes the request into an outbox and returns
// immediately; the thread writes when the socket can take bytes, reads
// whatever arrives, matches responses to pending calls by correlation id,
// and invokes each call's completion exactly once — with the response, or
// with a transport failure (connection lost, per-request timeout, client
// shut down).  Exactly-once completion is the property the fleet's
// crash-recovery leans on: a completion that never fires would strand an
// envelope part forever, one that fires twice would double-finish it.
//
// Failure model:
//  * A lost connection fails every in-flight call immediately (the server
//    may or may not have processed them — the caller re-routes, which can
//    recompute work but never duplicates a response).
//  * The client then retries the connection with bounded exponential
//    backoff (backoff_initial doubling to backoff_max, at most
//    max_reconnect_attempts).  While disconnected, new calls fail fast so
//    the fleet re-routes instead of queueing against a corpse.  After the
//    last attempt the client is permanently dead.
//  * A per-request timeout (a hang detector, not an SLO — deadlines travel
//    inside the request) fails just that call; a late response to a
//    forgotten id is dropped on the floor.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rpc/buffer.h"
#include "rpc/frame.h"
#include "rpc/inplace_function.h"
#include "rpc/wire.h"

namespace ppgnn::rpc {

struct RpcClientConfig {
  std::string address;  // unix:/path or tcp:host:port
  // Whole budget for connect + Hello/HelloAck on handshake(): a replica
  // process needs time to load its checkpoint before it listens.
  std::chrono::milliseconds handshake_timeout{10000};
  // One TCP/Unix connect attempt inside that budget (and per reconnect).
  std::chrono::milliseconds connect_timeout{2000};
  // Default per-call timeout when call() is given none.
  std::chrono::milliseconds request_timeout{30000};
  std::chrono::milliseconds backoff_initial{10};
  std::chrono::milliseconds backoff_max{500};
  int max_reconnect_attempts = 5;
  // Wire version OFFERED in the Hello (the connection then runs at
  // min(offer, server version)).  Defaults to the newest this binary
  // speaks; tests pin 1 to exercise the v1 downgrade path.
  std::uint32_t protocol = kWireVersion;
  // FLOOR on encode buffers kept warm on the frame pool's free list
  // (rpc/buffer.h).  The pool adapts upward to the high-water in-flight
  // count on its own, so steady-state transport memory tracks what the
  // workload actually keeps in flight; this knob only guarantees a warm
  // minimum before the first burst.
  std::size_t frame_pool_buffers = FramePool::kDefaultMaxFree;
};

class RpcClient {
 public:
  struct Result {
    bool transport_ok = false;
    WireResponse response;        // valid when transport_ok
    std::string transport_error;  // set when !transport_ok
  };
  // Invoked exactly once per call(), on the I/O thread (or inline from
  // call() when the transport is already down).  Keep it lean; it runs in
  // the response path of every other in-flight call.  The Result is
  // BORROWED — it may be the I/O thread's reusable decode scratch, valid
  // only for the duration of the callback; move out whatever must outlive
  // it (moved-from vectors simply re-grow on the next decode).  The
  // capture lives inline in the wrapper (inplace_function.h) — one wire
  // call costs zero closure allocations, and a capture that outgrows the
  // budget is a compile error.
  using Done = InplaceFunction<void(Result&), 192>;

  explicit RpcClient(RpcClientConfig cfg);
  ~RpcClient();  // shutdown()

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  // Connects, exchanges Hello/HelloAck, starts the I/O thread.  Call once,
  // before the first call(); false (with *err) leaves the client dead.
  // Retries the connect inside handshake_timeout, so spawning the server
  // process and handshaking can race.
  bool handshake(WireHelloAck* ack, std::string* err);

  // Enqueues one request.  `req.id` is overwritten with the client's own
  // correlation id.  timeout <= 0 means config().request_timeout.  The
  // request is fully serialized before call() returns and never retained,
  // so the caller may reuse `req` (capacity intact) for the next call —
  // the alloc-free path for a per-thread request scratch.
  void call(WireRequest& req, std::chrono::milliseconds timeout, Done done);

  bool alive() const;          // connected and not shut down
  std::size_t inflight() const;
  const RpcClientConfig& config() const { return cfg_; }
  // The NEGOTIATED wire version (min(our offer, server's kWireVersion)),
  // valid after handshake(); requests encode at exactly this version.
  std::uint8_t protocol() const;
  // Snapshot of the transport counters (frames per writev, pool hit rate,
  // allocations per frame — rpc/buffer.h).  Thread-safe.
  RpcStats stats() const;

  // Fails all pending calls ("client shutdown"), stops the I/O thread.
  // Idempotent.
  void shutdown();

 private:
  // One in-flight call, living in a reusable slab slot (see slots_).  A
  // zero id marks the slot free; the full wire id (sequence | slot) guards
  // against a late response landing on a recycled slot.
  struct Pending {
    Done done;
    std::chrono::steady_clock::time_point expires;
    std::uint64_t id = 0;
  };

  // Wire ids encode their slab slot in the low bits, so matching a
  // response to its call is one bounds-check + compare — no map, no
  // per-call node allocation, no tree walk at 2k in flight.
  static constexpr std::uint32_t kSlotBits = 20;
  static constexpr std::uint64_t kSlotMask = (1u << kSlotBits) - 1;

  void io_loop();
  // Closes the socket, fails all pending into `completions`, arms the
  // reconnect timer (or marks the client dead).  Caller holds mu_.
  void drop_connection_locked(
      const std::string& why,
      std::vector<std::pair<Done, Result>>* completions);
  bool try_reconnect();  // I/O thread only, mu_ NOT held
  void wake();

  RpcClientConfig cfg_;
  mutable std::mutex mu_;
  // Slab of in-flight calls: slots_[id & kSlotMask] is the call with that
  // wire id.  Freed slots queue on free_slots_ for reuse; the slab only
  // grows to the high-water in-flight count and never shrinks.
  std::vector<Pending> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t pending_count_ = 0;
  // Earliest expiry across in-flight calls (time_point::max() when none,
  // or a stale-early lower bound after the nearest call completed — the
  // sweep recomputes it).  The I/O loop sleeps exactly until this instant
  // instead of ticking on a fixed interval.
  std::chrono::steady_clock::time_point next_expiry_ =
      std::chrono::steady_clock::time_point::max();
  // Outbox: one pooled buffer per encoded frame, drained with vectored
  // writes (drain_writev) — never re-copied into a flat buffer.
  FrameQueue outbox_;
  FramePool pool_;
  RpcStats stats_;
  std::uint64_t next_seq_ = 1;  // high bits of the wire id, never reused
  // Negotiated per connection (reconnects re-negotiate — a rolling server
  // upgrade may change the answer mid-life).  Guarded by mu_.
  std::uint8_t protocol_ = kWireVersion;
  int fd_ = -1;
  bool connected_ = false;
  bool dead_ = false;      // reconnect attempts exhausted or handshake failed
  bool stopping_ = false;
  int reconnect_attempts_ = 0;
  std::chrono::milliseconds backoff_{0};
  std::chrono::steady_clock::time_point next_reconnect_{};
  int wake_pipe_[2] = {-1, -1};
  std::thread io_;
  FrameReader reader_;
};

}  // namespace ppgnn::rpc
