#include "rpc/process.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

namespace ppgnn::rpc {

std::unique_ptr<ChildProcess> ChildProcess::spawn(const SpawnSpec& spec,
                                                  std::string* err) {
  int log_fd = -1;
  if (!spec.log_path.empty()) {
    log_fd = ::open(spec.log_path.c_str(),
                    O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
    if (log_fd < 0) {
      if (err) {
        *err = "open(" + spec.log_path + "): " + std::strerror(errno);
      }
      return nullptr;
    }
  }
  // argv must be built before fork: only async-signal-safe calls are legal
  // between fork and exec in a multi-threaded parent.
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(spec.binary.c_str()));
  for (const std::string& a : spec.args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    if (log_fd >= 0) ::close(log_fd);
    if (err) *err = std::string("fork: ") + std::strerror(errno);
    return nullptr;
  }
  if (pid == 0) {
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
    }
    ::execv(spec.binary.c_str(), argv.data());
    // Exec failed: 127 is the conventional "command not found" code.
    ::_exit(127);
  }
  if (log_fd >= 0) ::close(log_fd);
  return std::unique_ptr<ChildProcess>(new ChildProcess(pid));
}

ChildProcess::~ChildProcess() {
  if (reaped_) return;
  ::kill(pid_, SIGKILL);
  int status = 0;
  ::waitpid(pid_, &status, 0);
}

void ChildProcess::send_signal(int sig) const {
  if (!reaped_) ::kill(pid_, sig);
}

bool ChildProcess::poll_exit(int* exit_code) {
  if (!reaped_) {
    int status = 0;
    const pid_t r = ::waitpid(pid_, &status, WNOHANG);
    if (r == pid_) {
      reaped_ = true;
      if (WIFEXITED(status)) {
        exit_code_ = WEXITSTATUS(status);
      } else if (WIFSIGNALED(status)) {
        exit_code_ = 128 + WTERMSIG(status);
      }
    } else if (r < 0 && errno == ECHILD) {
      reaped_ = true;  // someone else reaped it; treat as gone
    }
  }
  if (reaped_ && exit_code) *exit_code = exit_code_;
  return reaped_;
}

bool ChildProcess::wait_exit(std::chrono::milliseconds timeout,
                             int* exit_code) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!poll_exit(exit_code)) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

bool ChildProcess::running() { return !poll_exit(nullptr); }

std::string self_exe_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return ".";
  buf[n] = '\0';
  std::string path(buf);
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

}  // namespace ppgnn::rpc
