// Socket plumbing under ppgnn-wire: address parsing, listen/connect
// helpers, and incremental frame assembly over a byte stream.
//
// Addresses are strings so every CLI flag, config file and test uses one
// syntax:
//   unix:/path/to/replica.sock   Unix-domain stream socket (the default
//                                deployment: replicas on the serving host)
//   tcp:host:port                TCP, for replicas on other hosts (the
//                                multi-host follow-on rides on this)
//
// FrameReader turns the stream's arbitrary read() chunking back into whole
// frames: feed() appends bytes, next() pops one complete [header|body] at a
// time.  A protocol violation (bad version, unknown type, oversized length)
// latches failed() — the owner closes the connection; a half-received frame
// is simply "not yet".
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "rpc/wire.h"

namespace ppgnn::rpc {

struct ParsedAddr {
  bool is_unix = true;
  std::string path;  // unix
  std::string host;  // tcp
  std::uint16_t port = 0;
};

bool parse_address(const std::string& addr, ParsedAddr* out,
                   std::string* err);

// Bound + listening fd (CLOEXEC), or -1 with *err set.  Unix paths are
// unlinked first so a crashed predecessor's socket file cannot wedge a
// restart.
int listen_on(const std::string& addr, std::string* err);

// Connected blocking fd (CLOEXEC), or -1 with *err set.  The timeout bounds
// the TCP connect; refused connections fail immediately (the caller's
// retry/backoff decides what to do about a server that is not up yet).
int connect_to(const std::string& addr, std::chrono::milliseconds timeout,
               std::string* err);

bool set_nonblocking(int fd);

class FrameReader {
 public:
  void feed(const std::uint8_t* data, std::size_t n);
  // Pops the next complete frame into (*type, *body); false when the buffer
  // holds less than one frame.  After a protocol violation failed() is set
  // and next() returns false forever.  `version`, when non-null, receives
  // the frame header's wire version — receivers decode version-dependent
  // bodies (Request, v2+) per frame, not per process.
  bool next(MsgType* type, std::vector<std::uint8_t>* body,
            std::uint8_t* version = nullptr);
  // Zero-copy variant: exposes the next frame's body in place.  The
  // pointer aliases the reader's buffer and is invalidated by the next
  // feed() (which may compact) — decode before feeding more bytes.
  bool next_view(MsgType* type, const std::uint8_t** body, std::size_t* len,
                 std::uint8_t* version = nullptr);
  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  std::size_t buffered() const { return buf_.size() - off_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t off_ = 0;  // consumed prefix, compacted lazily
  bool failed_ = false;
  std::string error_;
};

}  // namespace ppgnn::rpc
