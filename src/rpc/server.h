// ReplicaServer: one InferenceSession served over ppgnn-wire.
//
// The server is deliberately the LOCAL serving stack behind a socket: each
// decoded Request becomes a RequestState submitted to a real MicroBatcher,
// so admission control, priority classes, deadline shedding and per-stage
// timings all behave exactly as they do in-process — the wire adds
// transport, not a second policy implementation.  Responses are encoded by
// the envelope's completion sink (running on the batcher's dispatcher
// thread) into the owning connection's outbox; a single poll() loop accepts
// connections, reads frames, and flushes outboxes.
//
// Shutdown contract (the Draining half of the fleet's lifecycle): when the
// stop flag rises — replica_server_cli raises it from SIGTERM — the server
// stops accepting connections, answers any NEW request kDraining (the front
// re-routes those), lets every already-admitted part finish and flush, then
// stops the batcher and returns.  A front that SIGTERMs a replica therefore
// loses nothing: admitted work is answered, unadmitted work is bounced
// somewhere else.
#pragma once

#include <csignal>
#include <memory>
#include <string>

#include "rpc/buffer.h"
#include "serve/inference_session.h"
#include "serve/micro_batcher.h"
#include "serve/server_stats.h"

namespace ppgnn::rpc {

struct ReplicaServerConfig {
  std::string address;  // unix:/path or tcp:host:port
  serve::MicroBatchConfig batch;
  // How long run() waits for in-flight work to flush after the stop flag
  // rises before giving up on stragglers.
  std::chrono::milliseconds drain_timeout{10000};
  // Encode buffers kept warm per connection (rpc/buffer.h free list).
  std::size_t frame_pool_buffers = FramePool::kDefaultMaxFree;
};

class ReplicaServer {
 public:
  // Takes the session; the config's batch knobs drive its MicroBatcher.
  ReplicaServer(std::unique_ptr<serve::InferenceSession> session,
                const ReplicaServerConfig& cfg);
  ~ReplicaServer();

  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  // Binds, serves until *stop becomes nonzero, drains, returns 0 on a clean
  // exit (nonzero on bind/protocol-level failures).  `stop` is typically a
  // sig_atomic_t flipped by a SIGTERM handler.
  int run(const volatile std::sig_atomic_t* stop);

  const serve::ServerStats& stats() const { return *stats_; }
  serve::InferenceSession& session() { return *session_; }
  // Transport counters aggregated over all connections this server ran
  // (closed ones fold in as they go).  Meaningful after run() returns;
  // replica_server_cli prints them so the CI log artifact carries the
  // server-side half of the fast-path evidence.
  const RpcStats& rpc_stats() const { return rpc_stats_; }

 private:
  struct Impl;
  std::unique_ptr<serve::InferenceSession> session_;
  std::unique_ptr<serve::ServerStats> stats_;
  ReplicaServerConfig cfg_;
  RpcStats rpc_stats_;
};

}  // namespace ppgnn::rpc
