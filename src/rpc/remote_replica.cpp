#include "rpc/remote_replica.h"

#include <signal.h>

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace ppgnn::rpc {

namespace {

// Client-side stats view of one finished wire part, mirroring what a local
// MicroBatcher records so the fleet's windowed autoscale signals read the
// same regardless of where the replica lives.  Latency here is the full
// round trip (submit -> response), which is the number the front's clients
// actually experience.
void record_part(serve::ServerStats* stats, const WirePart& part,
                 const serve::StageTimings& t, double latency_us,
                 std::uint32_t tenant) {
  if (!stats) return;
  switch (part.status) {
    case serve::ServeStatus::kOk:
      stats->record_admitted(tenant);
      stats->record(latency_us, tenant);
      stats->record_queue_delay(t.admission_wait_us);
      stats->record_stages(t.admission_wait_us, t.dispatch_delay_us,
                          t.compute_us);
      break;
    case serve::ServeStatus::kDeadlineExceeded:
      stats->record_deadline_miss();
      if (!part.logits.empty() || !part.topk.empty()) {
        // Late answer: admitted, computed, just slow.
        stats->record_admitted(tenant);
        stats->record(latency_us, tenant);
        stats->record_stages(t.admission_wait_us, t.dispatch_delay_us,
                            t.compute_us);
      } else {
        stats->record_shed(tenant);
        stats->record_shed_wait(t.admission_wait_us);
      }
      break;
    case serve::ServeStatus::kShed:
      stats->record_shed(tenant);
      stats->record_shed_wait(t.admission_wait_us);
      break;
    default:
      break;  // kError: counted by the caller via the error itself
  }
}

// Slot ids for one wire call, stored inline in the completion closure.
// Envelopes are nearly always a handful of nodes (single-node submits
// dominate serving traffic), so the common case rides in the closure's own
// allocation instead of paying a separate heap vector per call.
struct SlotList {
  static constexpr std::size_t kInline = 8;
  std::uint32_t inl[kInline];
  std::vector<std::uint32_t> heap;
  std::uint32_t n = 0;

  SlotList(const std::uint32_t* s, std::size_t count)
      : n(static_cast<std::uint32_t>(count)) {
    if (count <= kInline) {
      std::copy(s, s + count, inl);
    } else {
      heap.assign(s, s + count);
    }
  }
  std::size_t size() const { return n; }
  const std::uint32_t* data() const { return heap.empty() ? inl : heap.data(); }
  std::uint32_t operator[](std::size_t i) const { return data()[i]; }
};

}  // namespace

RemoteReplica::RemoteReplica(std::unique_ptr<ChildProcess> proc,
                             std::unique_ptr<RpcClient> client,
                             WireHelloAck ack, RemoteReplicaConfig cfg)
    : proc_(std::move(proc)),
      client_(std::move(client)),
      ack_(ack),
      cfg_(cfg) {}

RemoteReplica::~RemoteReplica() { retire(); }

void RemoteReplica::submit_parts(
    const std::shared_ptr<serve::RequestState>& state,
    const std::uint32_t* slots, std::size_t n, serve::ServerStats* stats,
    FailHandler on_fail) {
  const auto now = std::chrono::steady_clock::now();
  const serve::ServeRequest& req = state->request();

  // Request scratch: call() serializes before returning and never retains
  // the request, so each submitting thread refills one WireRequest whose
  // nodes capacity persists — no per-submit allocation for the wire side.
  thread_local WireRequest wreq;
  wreq.priority = req.priority;
  // The tenant travels with the parts (v2 wire); on a v1 connection the
  // encoder drops it and the replica bills tenant 0.
  wreq.tenant = req.tenant;
  // Always ship full logits: top-k truncation is the FRONT's RequestState
  // contract (its finish_part computes it), and keeping the replica
  // mode-agnostic means a re-routed part can land anywhere.
  wreq.mode = serve::ResultMode::kFullLogits;
  wreq.deadline_rel_us = deadline_to_budget_us(req.deadline, now);
  wreq.nodes.clear();
  wreq.nodes.reserve(n);
  SlotList slot_vec(slots, n);
  for (std::size_t i = 0; i < n; ++i) {
    wreq.nodes.push_back(req.nodes[slots[i]]);
  }

  // Hang detector: generous slack past the in-band deadline; the in-band
  // deadline is what actually sheds work, this only catches dead peers.
  std::chrono::milliseconds timeout = cfg_.request_timeout;
  if (wreq.deadline_rel_us >= 0) {
    const auto budget =
        std::chrono::milliseconds(wreq.deadline_rel_us / 1000 + 2000);
    if (budget < timeout) timeout = budget;
  }

  client_->call(
      wreq, timeout,
      [state, slot_vec = std::move(slot_vec), stats,
       on_fail = std::move(on_fail), now,
       tenant = req.tenant](RpcClient::Result& res) mutable {
        // Transport failure, a draining replica, or a malformed response
        // (part-count mismatch): nothing was finished — hand every slot
        // back for re-routing.
        if (!res.transport_ok ||
            res.response.status == serve::ServeStatus::kDraining ||
            res.response.parts.size() != slot_vec.size()) {
          on_fail(state,
                  std::vector<std::uint32_t>(
                      slot_vec.data(), slot_vec.data() + slot_vec.size()));
          return;
        }
        const double latency_us =
            std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
                std::chrono::steady_clock::now() - now)
                .count();
        for (std::size_t i = 0; i < slot_vec.size(); ++i) {
          const WirePart& part = res.response.parts[i];
          std::exception_ptr error;
          if (part.status == serve::ServeStatus::kError) {
            error = std::make_exception_ptr(std::runtime_error(
                res.response.error.empty() ? "remote replica backend error"
                                           : res.response.error));
          }
          record_part(stats, part, res.response.timings, latency_us, tenant);
          state->finish_part(slot_vec[i], part.status,
                             part.logits.empty() ? nullptr
                                                 : part.logits.data(),
                             part.logits.size(), res.response.timings, error);
        }
      });
}

int RemoteReplica::retire() {
  std::lock_guard<std::mutex> lk(retire_mu_);
  if (retired_) return exit_code_;
  retired_ = true;
  if (proc_) {
    proc_->send_signal(SIGTERM);
    if (!proc_->wait_exit(cfg_.drain_grace, &exit_code_)) {
      proc_->send_signal(SIGKILL);
      proc_->wait_exit(std::chrono::milliseconds(2000), &exit_code_);
    }
  }
  // After the child is gone: any stragglers fail into their handlers and
  // re-route (never lost, possibly recomputed).
  client_->shutdown();
  return exit_code_;
}

void RemoteReplica::kill_now() {
  if (proc_) proc_->send_signal(SIGKILL);
}

std::shared_ptr<RemoteReplica> spawn_replica_process(
    const ReplicaSpawnConfig& cfg, std::size_t ordinal, std::string* err) {
  const std::string binary = cfg.server_binary.empty()
                                 ? self_exe_dir() + "/replica_server_cli"
                                 : cfg.server_binary;
  const std::string socket_path =
      cfg.socket_dir + "/replica-" + std::to_string(ordinal) + ".sock";
  const std::string address = "unix:" + socket_path;

  SpawnSpec spec;
  spec.binary = binary;
  spec.log_path = cfg.log_path;
  spec.args.push_back("--socket=" + address);
  for (const std::string& a : cfg.server_args) spec.args.push_back(a);

  auto proc = ChildProcess::spawn(spec, err);
  if (!proc) return nullptr;

  RpcClientConfig ccfg = cfg.client;
  ccfg.address = address;
  auto client = std::make_unique<RpcClient>(ccfg);
  WireHelloAck ack;
  std::string herr;
  if (!client->handshake(&ack, &herr)) {
    // An exec failure shows up here too (the child exits 127 and the
    // connect never succeeds); surface its exit code when we have one.
    int code = -1;
    const bool exited = proc->poll_exit(&code);
    if (err) {
      *err = "replica " + std::to_string(ordinal) + " handshake: " + herr;
      if (exited) *err += " (server exited with code " +
                          std::to_string(code) + ")";
    }
    return nullptr;  // ChildProcess dtor SIGKILLs + reaps
  }
  return std::make_shared<RemoteReplica>(std::move(proc), std::move(client),
                                         ack, cfg.replica);
}

}  // namespace ppgnn::rpc
