#include "rpc/buffer.h"

#include <limits.h>
#include <sys/socket.h>
#include <sys/uio.h>

#include <cerrno>

namespace ppgnn::rpc {

bool drain_writev(int fd, FrameQueue& q, FramePool& pool, RpcStats& stats) {
  // sendmsg instead of writev for MSG_NOSIGNAL: a peer that vanished
  // between poll and write must surface as EPIPE, not kill the process.
  static const std::size_t kIovCap =
      kMaxWriteIov < static_cast<std::size_t>(IOV_MAX)
          ? kMaxWriteIov
          : static_cast<std::size_t>(IOV_MAX);
  iovec iov[kMaxWriteIov];
  while (!q.empty()) {
    std::size_t n = 0;
    std::size_t queued = 0;
    for (const auto& f : q) {
      if (n == kIovCap) break;
      iov[n].iov_base = const_cast<std::uint8_t*>(f->data.data() + f->off);
      iov[n].iov_len = f->remaining();
      queued += f->remaining();
      ++n;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = n;
    const ssize_t w = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    ++stats.writev_calls;
    stats.bytes_sent += static_cast<std::uint64_t>(w);
    std::size_t left = static_cast<std::size_t>(w);
    while (left > 0) {
      FrameBuffer& f = *q.front();
      const std::size_t rem = f.remaining();
      if (left < rem) {
        f.off += left;
        break;
      }
      left -= rem;
      ++stats.frames_sent;
      pool.release(std::move(q.front()));
      q.pop_front();
    }
    // A short write means the socket buffer is full — poll again rather
    // than burning a syscall that will return EAGAIN.
    if (static_cast<std::size_t>(w) < queued) return true;
  }
  return true;
}

}  // namespace ppgnn::rpc
