// Child-process lifecycle for replica servers: fork/exec with the child's
// stdout/stderr redirected to a log file, signal delivery, and waitpid
// reaping — the OS-level half of the fleet's Warming/Draining/Retired
// states (the socket-level half is RpcClient's handshake and RemoteReplica's
// drain).
//
// Every spawned child is reaped exactly once: wait_exit/poll_exit reap on
// exit, and the destructor SIGKILLs + reaps anything still running so a
// crashed front never leaves zombies behind.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

namespace ppgnn::rpc {

struct SpawnSpec {
  std::string binary;              // absolute or relative path to exec
  std::vector<std::string> args;   // argv[1..]; argv[0] is `binary`
  std::string log_path;            // child stdout+stderr appended here
                                   // (empty = inherit the parent's)
};

class ChildProcess {
 public:
  // Forks and execs; null (with *err) when the fork or the log-file open
  // fails.  An exec failure surfaces as an immediate child exit with code
  // 127 — visible through wait_exit, and in the log.
  static std::unique_ptr<ChildProcess> spawn(const SpawnSpec& spec,
                                             std::string* err);
  ~ChildProcess();

  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;

  pid_t pid() const { return pid_; }
  void send_signal(int sig) const;

  // Non-blocking reap: true once the child has exited (idempotent —
  // remembers the code), filling *exit_code with the wait status's exit
  // code, or 128+signal for a signal death.
  bool poll_exit(int* exit_code);
  // Blocking reap with timeout; false if still running when it elapses.
  bool wait_exit(std::chrono::milliseconds timeout, int* exit_code);
  bool running();  // !reaped yet

 private:
  explicit ChildProcess(pid_t pid) : pid_(pid) {}
  pid_t pid_;
  bool reaped_ = false;
  int exit_code_ = -1;
};

// Directory of the running executable (via /proc/self/exe) — how serving
// binaries find replica_server_cli next to themselves in the build dir.
std::string self_exe_dir();

}  // namespace ppgnn::rpc
