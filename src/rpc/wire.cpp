#include "rpc/wire.h"

#include <cstring>

namespace ppgnn::rpc {

namespace {

// Explicit little-endian put/get: the codec must produce identical bytes on
// any host, and memcpy-of-struct would inherit the host's padding and
// endianness instead of the documented layout.
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u32(out, bits);
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

// Bounds-checked reader over one frame body.  Decoders drain it field by
// field; any read past the end (or trailing bytes left over) marks the
// frame corrupt.
struct Reader {
  const std::uint8_t* p;
  std::size_t left;
  bool ok = true;

  bool take(void* dst, std::size_t n) {
    if (!ok || n > left) {
      ok = false;
      return false;
    }
    std::memcpy(dst, p, n);
    p += n;
    left -= n;
    return true;
  }
  std::uint8_t u8() {
    std::uint8_t v = 0;
    take(&v, 1);
    return v;
  }
  std::uint16_t u16() {
    std::uint8_t b[2] = {0, 0};
    take(b, 2);
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  }
  std::uint32_t u32() {
    std::uint8_t b[4] = {0, 0, 0, 0};
    take(b, 4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
    return v;
  }
  std::uint64_t u64() {
    std::uint8_t b[8] = {0};
    take(b, 8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
};

bool fail(std::string* err, const char* what) {
  if (err) *err = what;
  return false;
}

bool valid_status(std::uint8_t s) {
  // kQuotaExceeded (5) is a v2 addition, but accepting it unconditionally
  // is safe: a v1 peer never sends it, and rejecting by version would buy
  // nothing but a second code path.
  return s <= static_cast<std::uint8_t>(serve::ServeStatus::kQuotaExceeded);
}

// --- Body encoders ---------------------------------------------------------
//
// Shared by the vector-returning shims (body only) and the frame-appending
// *_into encoders (placeholder header, body, patch) so the byte layout has
// exactly one implementation per message.

void hello_body_into(const WireHello& h, std::vector<std::uint8_t>& out) {
  put_u32(out, h.magic);
  put_u32(out, h.protocol);
}

void hello_ack_body_into(const WireHelloAck& a,
                         std::vector<std::uint8_t>& out) {
  put_u32(out, a.magic);
  put_u32(out, a.protocol);
  put_u64(out, a.num_nodes);
  put_u32(out, a.classes);
  out.push_back(a.precision);
  out.push_back(0);
  out.push_back(0);
  out.push_back(0);  // reserved
}

void request_body_into(const WireRequest& r, std::vector<std::uint8_t>& out,
                       std::uint8_t protocol) {
  put_u64(out, r.id);
  out.push_back(static_cast<std::uint8_t>(r.priority));
  out.push_back(static_cast<std::uint8_t>(r.mode));
  put_u16(out, r.topk);
  put_i64(out, r.deadline_rel_us);
  // v2 inserts the tenant id here; a v1 connection gets the v1 layout
  // byte for byte (the tenant is simply dropped — default-tenant billing
  // on the other end).
  if (protocol >= 2) put_u32(out, r.tenant);
  put_u32(out, static_cast<std::uint32_t>(r.nodes.size()));
  for (const std::int64_t n : r.nodes) put_i64(out, n);
}

void response_body_into(const WireResponse& r,
                        std::vector<std::uint8_t>& out) {
  put_u64(out, r.id);
  out.push_back(static_cast<std::uint8_t>(r.status));
  out.push_back(static_cast<std::uint8_t>(r.mode));
  put_u16(out, 0);  // reserved
  put_u32(out, static_cast<std::uint32_t>(r.parts.size()));
  put_f64(out, r.timings.admission_wait_us);
  put_f64(out, r.timings.dispatch_delay_us);
  put_f64(out, r.timings.compute_us);
  put_u32(out, static_cast<std::uint32_t>(r.error.size()));
  out.insert(out.end(), r.error.begin(), r.error.end());
  for (const WirePart& p : r.parts) {
    out.push_back(static_cast<std::uint8_t>(p.status));
    if (r.mode == serve::ResultMode::kTopK) {
      put_u32(out, static_cast<std::uint32_t>(p.topk.size()));
      for (const serve::TopKEntry& e : p.topk) {
        put_u32(out, static_cast<std::uint32_t>(e.cls));
        put_f32(out, e.score);
      }
    } else {
      put_u32(out, static_cast<std::uint32_t>(p.logits.size()));
      for (const float v : p.logits) put_f32(out, v);
    }
  }
}

// Frame-appending skeleton: write a placeholder header, append the body,
// then patch body_len once it is known — one pass, no temporary vector.
// `version` is the connection's negotiated wire version (handshake frames
// pin it to 1 — see the negotiation note in wire.h).
template <typename BodyFn>
void frame_into(MsgType type, std::uint8_t version,
                std::vector<std::uint8_t>& out, BodyFn&& body) {
  const std::size_t hdr = out.size();
  out.resize(hdr + kFrameHeaderBytes, 0);
  body(out);
  const std::size_t body_len = out.size() - hdr - kFrameHeaderBytes;
  for (int i = 0; i < 4; ++i) {
    out[hdr + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(body_len >> (8 * i));
  }
  out[hdr + 4] = static_cast<std::uint8_t>(type);
  out[hdr + 5] = version;
  // bytes 6..7 (reserved) stay zero from the resize
}

}  // namespace

void encode_frame_header(const FrameHeader& h,
                         std::uint8_t out[kFrameHeaderBytes]) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<std::uint8_t>(h.body_len >> (8 * i));
  }
  out[4] = static_cast<std::uint8_t>(h.type);
  out[5] = h.version;
  out[6] = 0;
  out[7] = 0;  // reserved
}

bool decode_frame_header(const std::uint8_t in[kFrameHeaderBytes],
                         FrameHeader* out, std::string* err) {
  Reader r{in, kFrameHeaderBytes};
  out->body_len = r.u32();
  const std::uint8_t type = r.u8();
  out->version = r.u8();
  r.u16();  // reserved
  if (out->version < kMinWireVersion || out->version > kWireVersion) {
    return fail(err, "ppgnn-wire: unsupported version");
  }
  switch (type) {
    case static_cast<std::uint8_t>(MsgType::kHello):
    case static_cast<std::uint8_t>(MsgType::kHelloAck):
    case static_cast<std::uint8_t>(MsgType::kRequest):
    case static_cast<std::uint8_t>(MsgType::kResponse):
      out->type = static_cast<MsgType>(type);
      break;
    default:
      return fail(err, "ppgnn-wire: unknown message type");
  }
  if (out->body_len > kMaxFrameBody) {
    return fail(err, "ppgnn-wire: frame body over size cap");
  }
  return true;
}

void append_frame(std::vector<std::uint8_t>& out, MsgType type,
                  const std::uint8_t* body, std::size_t body_len,
                  std::uint8_t version) {
  FrameHeader h;
  h.body_len = static_cast<std::uint32_t>(body_len);
  h.type = type;
  h.version = version;
  std::uint8_t hdr[kFrameHeaderBytes];
  encode_frame_header(h, hdr);
  out.insert(out.end(), hdr, hdr + kFrameHeaderBytes);
  out.insert(out.end(), body, body + body_len);
}

std::vector<std::uint8_t> encode_hello(const WireHello& h) {
  std::vector<std::uint8_t> out;
  out.reserve(8);
  hello_body_into(h, out);
  return out;
}

void encode_hello_into(const WireHello& h, std::vector<std::uint8_t>& out) {
  // Handshake frames always travel at frame-version 1 (pre-negotiation).
  frame_into(MsgType::kHello, /*version=*/1, out,
             [&h](std::vector<std::uint8_t>& o) { hello_body_into(h, o); });
}

bool decode_hello(const std::uint8_t* body, std::size_t len, WireHello* out,
                  std::string* err) {
  Reader r{body, len};
  out->magic = r.u32();
  out->protocol = r.u32();
  if (!r.ok || r.left != 0) return fail(err, "ppgnn-wire: bad Hello length");
  if (out->magic != kWireMagic) return fail(err, "ppgnn-wire: bad magic");
  // The offer may be anything >= 1 — the server clamps with min(), so a
  // client from the future still negotiates down to what we speak.
  if (out->protocol < kMinWireVersion) {
    return fail(err, "ppgnn-wire: unsupported protocol");
  }
  return true;
}

std::vector<std::uint8_t> encode_hello_ack(const WireHelloAck& a) {
  std::vector<std::uint8_t> out;
  out.reserve(24);
  hello_ack_body_into(a, out);
  return out;
}

void encode_hello_ack_into(const WireHelloAck& a,
                           std::vector<std::uint8_t>& out) {
  // Handshake frames always travel at frame-version 1 (pre-negotiation).
  frame_into(MsgType::kHelloAck, /*version=*/1, out,
             [&a](std::vector<std::uint8_t>& o) {
               hello_ack_body_into(a, o);
             });
}

bool decode_hello_ack(const std::uint8_t* body, std::size_t len,
                      WireHelloAck* out, std::string* err) {
  Reader r{body, len};
  out->magic = r.u32();
  out->protocol = r.u32();
  out->num_nodes = r.u64();
  out->classes = r.u32();
  out->precision = r.u8();
  r.u8();
  r.u8();
  r.u8();  // reserved
  if (!r.ok || r.left != 0) {
    return fail(err, "ppgnn-wire: bad HelloAck length");
  }
  if (out->magic != kWireMagic) return fail(err, "ppgnn-wire: bad magic");
  // The ack carries the NEGOTIATED version, which must be one we speak.
  if (out->protocol < kMinWireVersion || out->protocol > kWireVersion) {
    return fail(err, "ppgnn-wire: unsupported protocol");
  }
  return true;
}

std::vector<std::uint8_t> encode_request(const WireRequest& r,
                                         std::uint8_t protocol) {
  std::vector<std::uint8_t> out;
  out.reserve(28 + r.nodes.size() * 8);
  request_body_into(r, out, protocol);
  return out;
}

void encode_request_into(const WireRequest& r, std::vector<std::uint8_t>& out,
                         std::uint8_t protocol) {
  out.reserve(out.size() + kFrameHeaderBytes + 28 + r.nodes.size() * 8);
  frame_into(MsgType::kRequest, protocol, out,
             [&r, protocol](std::vector<std::uint8_t>& o) {
               request_body_into(r, o, protocol);
             });
}

bool decode_request(const std::uint8_t* body, std::size_t len,
                    WireRequest* out, std::string* err,
                    std::uint8_t version) {
  Reader r{body, len};
  out->id = r.u64();
  const std::uint8_t pri = r.u8();
  const std::uint8_t mode = r.u8();
  out->topk = r.u16();
  out->deadline_rel_us = r.i64();
  // v2 carries the tenant id between the deadline and the node count; a v1
  // frame simply doesn't, and everything from a v1 peer bills to tenant 0.
  out->tenant = version >= 2 ? r.u32() : 0;
  const std::uint32_t count = r.u32();
  if (!r.ok) return fail(err, "ppgnn-wire: truncated Request");
  if (pri > static_cast<std::uint8_t>(serve::Priority::kLow)) {
    return fail(err, "ppgnn-wire: bad priority");
  }
  if (mode > static_cast<std::uint8_t>(serve::ResultMode::kTopK)) {
    return fail(err, "ppgnn-wire: bad result mode");
  }
  if (out->deadline_rel_us < -1) {
    return fail(err, "ppgnn-wire: bad deadline budget");
  }
  if (count == 0) return fail(err, "ppgnn-wire: empty envelope");
  if (r.left != static_cast<std::size_t>(count) * 8) {
    return fail(err, "ppgnn-wire: node count disagrees with body length");
  }
  out->priority = static_cast<serve::Priority>(pri);
  out->mode = static_cast<serve::ResultMode>(mode);
  out->nodes.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) out->nodes[i] = r.i64();
  return r.ok;
}

std::int64_t deadline_to_budget_us(std::chrono::steady_clock::time_point d,
                                   std::chrono::steady_clock::time_point now) {
  if (d == std::chrono::steady_clock::time_point::max()) return -1;
  if (d <= now) return 0;  // already blown: ship a zero budget, not a throw
  // Clamp BEFORE converting to microseconds: (max() - now) overflows a
  // microsecond count long before it overflows the native duration.
  const auto budget = d - now;
  const auto cap = std::chrono::microseconds(kMaxDeadlineUs);
  if (budget >= cap) return kMaxDeadlineUs;
  return std::chrono::duration_cast<std::chrono::microseconds>(budget)
      .count();
}

std::chrono::steady_clock::time_point budget_us_to_deadline(
    std::int64_t rel_us, std::chrono::steady_clock::time_point now) {
  if (rel_us < 0) return std::chrono::steady_clock::time_point::max();
  if (rel_us > kMaxDeadlineUs) rel_us = kMaxDeadlineUs;
  return now + std::chrono::microseconds(rel_us);
}

std::vector<std::uint8_t> encode_response(const WireResponse& r) {
  std::vector<std::uint8_t> out;
  out.reserve(64 + r.error.size());
  response_body_into(r, out);
  return out;
}

void encode_response_into(const WireResponse& r, std::vector<std::uint8_t>& out,
                          std::uint8_t protocol) {
  frame_into(MsgType::kResponse, protocol, out,
             [&r](std::vector<std::uint8_t>& o) { response_body_into(r, o); });
}

bool decode_response(const std::uint8_t* body, std::size_t len,
                     WireResponse* out, std::string* err) {
  Reader r{body, len};
  out->id = r.u64();
  const std::uint8_t status = r.u8();
  const std::uint8_t mode = r.u8();
  r.u16();  // reserved
  const std::uint32_t part_count = r.u32();
  out->timings.admission_wait_us = r.f64();
  out->timings.dispatch_delay_us = r.f64();
  out->timings.compute_us = r.f64();
  const std::uint32_t error_len = r.u32();
  if (!r.ok) return fail(err, "ppgnn-wire: truncated Response");
  if (!valid_status(status)) return fail(err, "ppgnn-wire: bad status");
  if (mode > static_cast<std::uint8_t>(serve::ResultMode::kTopK)) {
    return fail(err, "ppgnn-wire: bad result mode");
  }
  if (error_len > r.left) {
    return fail(err, "ppgnn-wire: error text past end of frame");
  }
  out->status = static_cast<serve::ServeStatus>(status);
  out->mode = static_cast<serve::ResultMode>(mode);
  out->error.assign(reinterpret_cast<const char*>(r.p), error_len);
  r.p += error_len;
  r.left -= error_len;
  // Decode INTO the caller's vectors (resize, not clear+push_back): a
  // long-lived scratch WireResponse keeps its parts array and each part's
  // logits/topk capacity across frames, so steady-state decode allocates
  // only what the completion actually moves out.
  out->parts.resize(part_count);
  for (std::uint32_t i = 0; i < part_count; ++i) {
    WirePart& p = out->parts[i];
    const std::uint8_t ps = r.u8();
    const std::uint32_t count = r.u32();
    if (!r.ok) return fail(err, "ppgnn-wire: truncated Response part");
    if (!valid_status(ps)) return fail(err, "ppgnn-wire: bad part status");
    p.status = static_cast<serve::ServeStatus>(ps);
    const std::size_t value_bytes =
        static_cast<std::size_t>(count) *
        (out->mode == serve::ResultMode::kTopK ? 8 : 4);
    if (value_bytes > r.left) {
      return fail(err, "ppgnn-wire: part values past end of frame");
    }
    if (out->mode == serve::ResultMode::kTopK) {
      p.logits.clear();
      p.topk.resize(count);
      for (std::uint32_t j = 0; j < count; ++j) {
        p.topk[j].cls = static_cast<std::int32_t>(r.u32());
        p.topk[j].score = r.f32();
      }
    } else {
      p.topk.clear();
      p.logits.resize(count);
      for (std::uint32_t j = 0; j < count; ++j) p.logits[j] = r.f32();
    }
  }
  if (!r.ok || r.left != 0) {
    return fail(err, "ppgnn-wire: Response length mismatch");
  }
  return true;
}

}  // namespace ppgnn::rpc
