// RemoteReplica: a replica that lives in another process, presented to the
// FleetManager through the same submit-parts contract a local MicroBatcher
// satisfies.
//
// The translation is deliberately thin: a sub-batch of envelope slots
// becomes ONE wire request (the slots' node ids, the envelope's priority,
// the deadline converted to a remaining-budget — always requesting full
// logits, because top-k conversion belongs to the front's RequestState),
// and the response finishes each slot with its part status and row.  Two
// outcomes do NOT finish parts and instead invoke the caller's fail
// handler with the unfinished slots:
//
//  * transport failure (connection lost, timeout, client dead) — the
//    crash-detector signal: the fleet removes this replica from the
//    membership snapshot and re-routes the slots against the fresh one;
//  * a kDraining envelope — the replica is shutting down gracefully
//    (SIGTERM); same re-route, the fleet decides whether the replica also
//    leaves the membership.
//
// Either the parts are finished exactly once here, or the fail handler is
// invoked exactly once with all of them — never both, never neither; that
// dichotomy is what keeps the fleet's one-response-per-envelope invariant
// across kill -9.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "rpc/client.h"
#include "rpc/inplace_function.h"
#include "rpc/process.h"
#include "serve/serve_api.h"
#include "serve/server_stats.h"

namespace ppgnn::rpc {

struct RemoteReplicaConfig {
  // Per-call hang detector (NOT the SLO — deadlines travel in-band).  For
  // deadline'd requests the effective timeout is budget + 2s slack.
  std::chrono::milliseconds request_timeout{30000};
  // retire(): how long the SIGTERM'd child gets to drain before SIGKILL.
  std::chrono::milliseconds drain_grace{10000};
};

class RemoteReplica {
 public:
  // `proc` may be null (a server someone else manages — tests, or replicas
  // on other hosts); `client` must already be handshaken.
  RemoteReplica(std::unique_ptr<ChildProcess> proc,
                std::unique_ptr<RpcClient> client, WireHelloAck ack,
                RemoteReplicaConfig cfg = {});
  ~RemoteReplica();  // retire() if not already retired

  RemoteReplica(const RemoteReplica&) = delete;
  RemoteReplica& operator=(const RemoteReplica&) = delete;

  // Invoked with the request state and the slots that were neither
  // finished nor will be — re-route them.  May run on the client's I/O
  // thread, or inline inside submit_parts when the transport is already
  // down.  The state rides as a parameter (the bridge already holds it)
  // so the handler's own capture stays small enough to live inline — no
  // per-call closure allocation.
  using FailHandler = InplaceFunction<
      void(const std::shared_ptr<serve::RequestState>&,
           std::vector<std::uint32_t>),
      32>;

  // Submits `slots` of `state` as one wire call.  `stats` (optional) gets
  // the client-side view: admitted latency, sheds, deadline misses —
  // feeding the same windowed signals the autoscaler reads for local
  // replicas.
  void submit_parts(const std::shared_ptr<serve::RequestState>& state,
                    const std::uint32_t* slots, std::size_t n,
                    serve::ServerStats* stats, FailHandler on_fail);

  bool alive() const { return client_->alive(); }
  std::size_t inflight() const { return client_->inflight(); }
  const WireHelloAck& info() const { return ack_; }
  pid_t pid() const { return proc_ ? proc_->pid() : -1; }
  // Client-side transport counters (rpc/buffer.h): frames per writev,
  // bytes per syscall, pool hit rate, allocations per frame.  Valid after
  // retire() too — the fleet reports them post-run.
  RpcStats rpc_stats() const { return client_->stats(); }

  // Graceful drain: SIGTERM, wait for the child to flush + exit (SIGKILL
  // past drain_grace), reap it, then shut the client down (stragglers fail
  // into their fail handlers and re-route).  Idempotent.  Returns the
  // child's exit code (0 = clean drain; -1 when there is no child).
  int retire();
  // Crash injection (tests) / last resort: SIGKILL, no drain.  The
  // transport failure this provokes is the crash detector's input.
  void kill_now();

 private:
  std::unique_ptr<ChildProcess> proc_;
  std::unique_ptr<RpcClient> client_;
  WireHelloAck ack_;
  RemoteReplicaConfig cfg_;
  std::mutex retire_mu_;
  bool retired_ = false;
  int exit_code_ = -1;
};

// --- Spawning a replica server process -----------------------------------

struct ReplicaSpawnConfig {
  // Path to replica_server_cli; empty = next to the running executable.
  std::string server_binary;
  // Directory for per-ordinal Unix sockets (replica-<ordinal>.sock).
  std::string socket_dir = "/tmp";
  // Child stdout/stderr appended here ("" = inherit — CI uploads this file
  // when the cross-process smoke fails).
  std::string log_path;
  // Flags replica_server_cli needs beyond --socket: checkpoint, store,
  // model shape, precision, batching knobs.
  std::vector<std::string> server_args;
  RpcClientConfig client;    // address is filled in per ordinal
  RemoteReplicaConfig replica;
};

// fork/exec + connect + Hello handshake (the health check: a replica that
// cannot serve never acks, and the spawn fails instead of publishing a
// broken replica).  Null with *err on any failure; the child is killed and
// reaped on a failed handshake.
std::shared_ptr<RemoteReplica> spawn_replica_process(
    const ReplicaSpawnConfig& cfg, std::size_t ordinal, std::string* err);

}  // namespace ppgnn::rpc
