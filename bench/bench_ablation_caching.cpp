// Ablation (extension) — why PP-GNN loaders don't cache.
//
// Section 4.1 rejects GPU-side feature caching for PP-GNNs because "the
// training data lacks both temporal and spatial locality, being accessed
// only once in a random order every epoch", while the MP-GNN systems of
// Section 2.4 (PaGraph, GNNLab) are built around exactly that caching.
// This bench measures both claims on the same cache policies: hit rate of
// a 2-20% capacity cache against (a) a PP-GNN epoch stream (SGD-RR row
// order) and (b) an MP-GNN sampler stream over a heavy-tailed graph.
//
// Expected shape: PP hit rate == capacity fraction exactly (no policy can
// beat it: every row appears once per epoch); MP static-pinned hit rate is
// a multiple of the capacity fraction (hub recurrence), while LRU drowns
// under frontier scans — why the MP systems pin statically.
#include "common.h"
#include "loader/cache.h"
#include "loader/shuffler.h"

using namespace ppgnn;
using namespace ppgnn::bench;

namespace {

std::vector<std::int64_t> pp_stream(std::size_t rows, std::size_t epochs) {
  const auto shuffler = loader::make_shuffler(1);
  Rng rng(3);
  std::vector<std::int64_t> stream;
  stream.reserve(rows * epochs);
  for (std::size_t e = 0; e < epochs; ++e) {
    const auto order = shuffler->epoch_order(rows, rng);
    stream.insert(stream.end(), order.begin(), order.end());
  }
  return stream;
}

std::vector<std::int64_t> mp_stream(std::size_t epochs) {
  graph::SbmConfig sc;
  sc.num_nodes = 5000;
  sc.num_classes = 8;
  sc.avg_degree = 15.0;
  sc.homophily = 0.6;
  sc.degree_power = 1.3;  // heavy tail, like real web graphs
  sc.max_propensity_ratio = 300.0;
  sc.seed = 9;
  const auto sbm = graph::generate_sbm(sc);
  sampling::LaborSampler sampler({10, 10});
  Rng rng(4);
  std::vector<std::int64_t> stream;
  for (std::size_t e = 0; e < epochs; ++e) {
    for (std::size_t lo = 0; lo < 400; lo += 64) {
      std::vector<sampling::NodeId> seeds;
      for (std::size_t i = lo; i < std::min(lo + 64, std::size_t{400}); ++i) {
        seeds.push_back(static_cast<sampling::NodeId>(i * 7 % 5000));
      }
      const auto batch = sampler.sample(sbm.graph, seeds, rng);
      for (const auto v : batch.input_nodes()) {
        stream.push_back(static_cast<std::int64_t>(v));
      }
    }
  }
  return stream;
}

}  // namespace

int main() {
  header("Ablation: feature-cache hit rates, PP vs MP access streams");
  const std::size_t pp_rows = 5000;
  const auto pp = pp_stream(pp_rows, 5);
  const auto mp = mp_stream(3);

  std::printf("%-10s %14s %12s %14s %12s\n", "capacity", "PP static",
              "PP LRU", "MP static", "MP LRU");
  for (const double frac : {0.02, 0.05, 0.10, 0.20}) {
    const auto cap = static_cast<std::size_t>(5000 * frac);
    // Hit-rate study: rows are the unit of interest, so row_bytes = 1.
    loader::StaticCache pp_static(loader::hottest_rows(pp, cap));
    loader::LruCache pp_lru(cap, 1);
    loader::StaticCache mp_static(loader::hottest_rows(mp, cap));
    loader::LruCache mp_lru(cap, 1);
    std::printf("%8.0f%% %13.1f%% %11.1f%% %13.1f%% %11.1f%%\n", frac * 100,
                100 * loader::replay(pp_static, pp).hit_rate(),
                100 * loader::replay(pp_lru, pp).hit_rate(),
                100 * loader::replay(mp_static, mp).hit_rate(),
                100 * loader::replay(mp_lru, mp).hit_rate());
  }
  std::printf("\nExpected shape: PP columns pinned to the capacity fraction "
              "(caching buys nothing — Section 4.1's argument for double "
              "buffering instead); MP static exceeds its capacity fraction "
              "severalfold via hub recurrence while MP LRU drowns under "
              "frontier scans (why GNNLab pins statically).\n");
  return 0;
}
