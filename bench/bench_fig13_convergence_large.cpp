// Figure 13 (Appendix G) — convergence of HOGA and SIGN on the
// ogbn-papers100M analogue across hop counts: both converge well within
// ~200 epochs at paper scale; on the analogue the same "fast convergence,
// SIGN slightly earlier or equal" shape appears within the run budget.
#include "common.h"

using namespace ppgnn;
using namespace ppgnn::bench;

int main() {
  header("Figure 13: convergence on papers100M analogue");
  const auto ds =
      graph::make_dataset(graph::DatasetName::kPapers100MSim, 0.5);
  std::printf("%-6s %-6s %12s %14s %12s\n", "hops", "model", "conv epoch",
              "peak val acc", "test acc");
  for (const std::size_t hops : {2, 3, 4}) {
    for (const char* kind : {"HOGA", "SIGN"}) {
      const auto r = run_pp(ds, kind, hops, 30, 64);
      std::printf("%-6zu %-6s %12zu %14.3f %12.3f\n", hops, kind,
                  r.convergence, r.history.peak_val_acc(), r.test_acc);
      std::fflush(stdout);
    }
  }
  std::printf("\nExpected shape: both models converge in a small fraction of "
              "the epoch budget (paper: 21-34 of 400 epochs).\n");
  return 0;
}
