// Kernel microbenchmarks (google-benchmark): the primitive costs that the
// hardware cost model abstracts — GEMM, SpMM, fused vs per-row gather —
// measured for real on this machine.  The per-row vs fused assembly gap is
// the CPU-side ground truth behind the paper's Section 4.1 optimization.
#include <benchmark/benchmark.h>

#include "graph/dataset.h"
#include "graph/normalize.h"
#include "graph/spmm.h"
#include "loader/host_loader.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace {

using namespace ppgnn;

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::normal({n, n}, rng);
  Tensor b = Tensor::normal({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(a, false, b, false, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Spmm(benchmark::State& state) {
  const auto ds = graph::make_dataset(graph::DatasetName::kProductsSim, 0.25);
  const auto a = graph::sym_normalized(ds.graph);
  Tensor y({a.num_nodes(), ds.features.cols()});
  for (auto _ : state) {
    graph::spmm(a, ds.features, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.num_edges());
}
BENCHMARK(BM_Spmm);

void BM_AssemblyBaseline(benchmark::State& state) {
  Rng rng(2);
  const std::size_t rows = 20000, dim = 400, batch = 512;
  Tensor feats = Tensor::normal({rows, dim}, rng);
  std::vector<std::int32_t> labels(rows, 0);
  loader::BatchSource src(&feats, labels.data(), batch);
  Rng shuffle_rng(3);
  src.set_epoch_order(loader::RandomReshuffler().epoch_order(rows, shuffle_rng));
  std::size_t k = 0;
  for (auto _ : state) {
    auto mb = src.assemble_baseline(k++ % src.num_batches());
    benchmark::DoNotOptimize(mb.features.data());
  }
  state.SetBytesProcessed(state.iterations() * batch * dim * sizeof(float));
}
BENCHMARK(BM_AssemblyBaseline);

void BM_AssemblyFused(benchmark::State& state) {
  Rng rng(2);
  const std::size_t rows = 20000, dim = 400, batch = 512;
  Tensor feats = Tensor::normal({rows, dim}, rng);
  std::vector<std::int32_t> labels(rows, 0);
  loader::BatchSource src(&feats, labels.data(), batch);
  Rng shuffle_rng(3);
  src.set_epoch_order(loader::RandomReshuffler().epoch_order(rows, shuffle_rng));
  std::size_t k = 0;
  for (auto _ : state) {
    auto mb = src.assemble_fused(k++ % src.num_batches());
    benchmark::DoNotOptimize(mb.features.data());
  }
  state.SetBytesProcessed(state.iterations() * batch * dim * sizeof(float));
}
BENCHMARK(BM_AssemblyFused);

void BM_GatherRows(benchmark::State& state) {
  Rng rng(4);
  const std::size_t rows = 50000;
  const auto dim = static_cast<std::size_t>(state.range(0));
  Tensor feats = Tensor::normal({rows, dim}, rng);
  std::vector<std::int64_t> idx(4096);
  for (auto& i : idx) i = static_cast<std::int64_t>(rng.uniform_int(rows));
  Tensor out({idx.size(), dim});
  for (auto _ : state) {
    gather_rows(feats, idx, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * idx.size() * dim *
                          sizeof(float));
}
BENCHMARK(BM_GatherRows)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
