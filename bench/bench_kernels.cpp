// Kernel microbenchmarks (google-benchmark): the primitive costs that the
// hardware cost model abstracts — GEMM, SpMM, fused vs per-row gather, and
// the INT8 serving GEMM per kernel-ladder arm — measured for real on this
// machine.  The per-row vs fused assembly gap is the CPU-side ground truth
// behind the paper's Section 4.1 optimization.
//
// --ladder-json=PATH bypasses google-benchmark and appends one
// kernel_ladder record per supported ISA arm into the JSON array at PATH
// (BENCH_serving.json in CI) — the per-ISA GEMM table the fleetsim
// calibration and sim::CpuGemmSpec::measured() consume.
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/dataset.h"
#include "graph/normalize.h"
#include "graph/spmm.h"
#include "loader/host_loader.h"
#include "tensor/cpu_features.h"
#include "tensor/ops.h"
#include "tensor/quant.h"
#include "tensor/rng.h"

namespace {

using namespace ppgnn;

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::normal({n, n}, rng);
  Tensor b = Tensor::normal({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(a, false, b, false, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// The serving testbed's first Linear at a saturated micro-batch — the
// kernel ladder's acceptance shape (AVX2 >= 1.5x SSE2 here).
constexpr std::size_t kLadderM = 255, kLadderK = 96, kLadderN = 32;

void BM_GemmS8Ladder(benchmark::State& state) {
  const Isa arm = static_cast<Isa>(state.range(0));
  if (!isa_supported(arm)) {
    state.SkipWithError("arm not supported on this host");
    return;
  }
  Rng rng(5);
  const Tensor x = Tensor::normal({kLadderM, kLadderK}, rng, 0.1f, 1.f);
  const Tensor w = Tensor::normal({kLadderN, kLadderK}, rng, 0.f, 1.f);
  const QuantizedActs xq = quantize_acts_per_row(x);
  const QuantizedMatrix wq = quantize_per_row(w, arm);
  Tensor c;
  gemm_s8_nt(xq, wq, c);  // warm the packed layouts and the pool
  for (auto _ : state) {
    gemm_s8_nt(xq, wq, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(isa_name(arm));
  state.SetItemsProcessed(state.iterations() * 2 * kLadderM * kLadderK *
                          kLadderN);
}
BENCHMARK(BM_GemmS8Ladder)->DenseRange(0, static_cast<int>(kNumIsa) - 1);

void BM_Spmm(benchmark::State& state) {
  const auto ds = graph::make_dataset(graph::DatasetName::kProductsSim, 0.25);
  const auto a = graph::sym_normalized(ds.graph);
  Tensor y({a.num_nodes(), ds.features.cols()});
  for (auto _ : state) {
    graph::spmm(a, ds.features, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.num_edges());
}
BENCHMARK(BM_Spmm);

void BM_AssemblyBaseline(benchmark::State& state) {
  Rng rng(2);
  const std::size_t rows = 20000, dim = 400, batch = 512;
  Tensor feats = Tensor::normal({rows, dim}, rng);
  std::vector<std::int32_t> labels(rows, 0);
  loader::BatchSource src(&feats, labels.data(), batch);
  Rng shuffle_rng(3);
  src.set_epoch_order(loader::RandomReshuffler().epoch_order(rows, shuffle_rng));
  std::size_t k = 0;
  for (auto _ : state) {
    auto mb = src.assemble_baseline(k++ % src.num_batches());
    benchmark::DoNotOptimize(mb.features.data());
  }
  state.SetBytesProcessed(state.iterations() * batch * dim * sizeof(float));
}
BENCHMARK(BM_AssemblyBaseline);

void BM_AssemblyFused(benchmark::State& state) {
  Rng rng(2);
  const std::size_t rows = 20000, dim = 400, batch = 512;
  Tensor feats = Tensor::normal({rows, dim}, rng);
  std::vector<std::int32_t> labels(rows, 0);
  loader::BatchSource src(&feats, labels.data(), batch);
  Rng shuffle_rng(3);
  src.set_epoch_order(loader::RandomReshuffler().epoch_order(rows, shuffle_rng));
  std::size_t k = 0;
  for (auto _ : state) {
    auto mb = src.assemble_fused(k++ % src.num_batches());
    benchmark::DoNotOptimize(mb.features.data());
  }
  state.SetBytesProcessed(state.iterations() * batch * dim * sizeof(float));
}
BENCHMARK(BM_AssemblyFused);

void BM_GatherRows(benchmark::State& state) {
  Rng rng(4);
  const std::size_t rows = 50000;
  const auto dim = static_cast<std::size_t>(state.range(0));
  Tensor feats = Tensor::normal({rows, dim}, rng);
  std::vector<std::int64_t> idx(4096);
  for (auto& i : idx) i = static_cast<std::int64_t>(rng.uniform_int(rows));
  Tensor out({idx.size(), dim});
  for (auto _ : state) {
    gather_rows(feats, idx, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * idx.size() * dim *
                          sizeof(float));
}
BENCHMARK(BM_GatherRows)->Arg(64)->Arg(512);

// Self-timed per-ISA GEMM table, appended into the JSON array at `path`
// (created when absent).  Record shape matches bench_serving_latency's
// kernel_ladder section so fleetsim::parse_bench_json reads either
// producer; "source" tells them apart.
int run_ladder_json(const std::string& path) {
  const Isa dispatched = active_isa();
  Rng rng(5);
  const Tensor x = Tensor::normal({kLadderM, kLadderK}, rng, 0.1f, 1.f);
  const Tensor w = Tensor::normal({kLadderN, kLadderK}, rng, 0.f, 1.f);
  const QuantizedActs xq = quantize_acts_per_row(x);

  std::vector<std::string> records;
  double sse2_gops = 0;
  for (std::size_t i = 0; i < kNumIsa; ++i) {
    const Isa arm = static_cast<Isa>(i);
    char buf[384];
    if (!isa_supported(arm)) {
      std::snprintf(buf, sizeof(buf),
                    "{\"section\":\"kernel_ladder\","
                    "\"source\":\"bench_kernels\",\"isa\":\"%s\","
                    "\"supported\":false,\"active\":false}",
                    isa_name(arm));
      records.emplace_back(buf);
      std::printf("%-12s unsupported\n", isa_name(arm));
      continue;
    }
    const QuantizedMatrix wq = quantize_per_row(w, arm);
    Tensor c;
    gemm_s8_nt(xq, wq, c);  // warm
    const int reps = 600;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) gemm_s8_nt(xq, wq, c);
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double gops = 2.0 * static_cast<double>(kLadderM) * kLadderK *
                        kLadderN * reps / sec / 1e9;
    if (arm == Isa::kSse2) sse2_gops = gops;
    const double vs = sse2_gops > 0 ? gops / sse2_gops : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "{\"section\":\"kernel_ladder\","
                  "\"source\":\"bench_kernels\",\"isa\":\"%s\","
                  "\"supported\":true,\"gemm_m\":%zu,\"gemm_k\":%zu,"
                  "\"gemm_n\":%zu,\"gemm_gops\":%.2f,"
                  "\"gemm_speedup_vs_sse2\":%.2f,\"active\":%s}",
                  isa_name(arm), kLadderM, kLadderK, kLadderN, gops, vs,
                  arm == dispatched ? "true" : "false");
    records.emplace_back(buf);
    std::printf("%-12s %8.1f Gop/s (%.2fx sse2)%s\n", isa_name(arm), gops,
                vs, arm == dispatched ? "  [dispatched]" : "");
  }

  // Splice into the existing array right before its closing bracket so
  // the ladder table lands in the same artifact the serving bench wrote.
  std::string content;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      content = ss.str();
    }
  }
  const auto close = content.rfind(']');
  std::ostringstream out;
  if (close == std::string::npos) {
    out << "[\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
      out << "  " << records[i] << (i + 1 < records.size() ? "," : "")
          << "\n";
    }
    out << "]\n";
  } else {
    std::string head = content.substr(0, close);
    while (!head.empty() &&
           (head.back() == '\n' || head.back() == ' ' ||
            head.back() == '\t')) {
      head.pop_back();
    }
    out << head;
    const bool has_records = head.rfind('}') != std::string::npos;
    for (std::size_t i = 0; i < records.size(); ++i) {
      out << (i == 0 && !has_records ? "" : ",") << "\n  " << records[i];
    }
    out << "\n]" << content.substr(close + 1);
  }
  std::ofstream of(path);
  if (!of) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  of << out.str();
  std::printf("appended %zu kernel_ladder records to %s\n", records.size(),
              path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ladder-json=", 0) == 0) {
      return run_ladder_json(arg.substr(14));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
