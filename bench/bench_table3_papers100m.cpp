// Table 3 — ogbn-papers100M: test accuracy (real training on the sparse-
// label analogue) and training throughput on 1/2/4 GPUs (paper-scale cost
// model) for SAGE under DGL / SALIENT++ / GNNLab vs SIGN and HOGA.
//
// Expected shape (paper): PP-GNN accuracy >= SAGE (HOGA best, up to +1.8%);
// SIGN ~5-150x higher throughput; papers100M's preprocessed input fits in
// GPU memory because only 1.4% of nodes are labeled.
#include "common.h"

using namespace ppgnn;
using namespace ppgnn::bench;
using namespace ppgnn::sim;

int main() {
  const auto name = graph::DatasetName::kPapers100MSim;
  const auto ds = graph::make_dataset(name, 0.5);

  header("Table 3 (accuracy): papers100M analogue, real training");
  std::printf("%-6s %-7s %10s\n", "hops", "model", "test acc");
  for (const std::size_t hops : {2, 3, 4}) {
    const auto sage = run_sage(ds, "LABOR", hops, 30, 64);
    std::printf("%-6zu %-7s %10.3f\n", hops, "SAGE", sage.test_acc);
    std::fflush(stdout);
    const auto sign = run_pp(ds, "SIGN", hops, 20, 64);
    std::printf("%-6zu %-7s %10.3f\n", hops, "SIGN", sign.test_acc);
    std::fflush(stdout);
    const auto hoga = run_pp(ds, "HOGA", hops, 20, 64);
    std::printf("%-6zu %-7s %10.3f\n", hops, "HOGA", hoga.test_acc);
    std::fflush(stdout);
  }

  header("Table 3 (throughput): epochs/sec at paper scale, modeled");
  std::printf("%-6s %-12s %10s %10s %10s\n", "hops", "system", "1 GPU",
              "2 GPUs", "4 GPUs");
  for (const std::size_t hops : {2, 3, 4}) {
    // MP-GNN systems.  DGL-UVA is single-GPU only in the paper (OOM beyond).
    struct MpRow {
      const char* label;
      MpSystem system;
      double subgraph_scale;
      bool multi_gpu;
    };
    for (const MpRow row :
         {MpRow{"SAGE-DGL", MpSystem::kDglUva, 1.0, false},
          MpRow{"SALIENT++", MpSystem::kSalientPlusPlus, 1.0, true},
          MpRow{"GNNLab", MpSystem::kGnnLab, 1.6, true}}) {
      std::printf("%-6zu %-12s", hops, row.label);
      for (const int g : {1, 2, 4}) {
        if (g > 1 && !row.multi_gpu) {
          std::printf(" %10s", "-");
          continue;
        }
        auto cfg = paper_mp_config(name, hops, 256,
                                   row.system != MpSystem::kGnnLab);
        cfg.system = row.system;
        cfg.subgraph_scale = row.subgraph_scale;
        cfg.num_gpus = g;
        cfg.cache_hit = 0.75;
        std::printf(" %10.3f",
                    simulate_mp_epoch(cfg).throughput_epochs_per_sec());
      }
      std::printf("\n");
    }
    // PP-GNNs: input fits in GPU memory (labeled subset only).
    struct PpRow {
      const char* label;
      PpModelKind kind;
      std::size_t hidden;
    };
    for (const PpRow row : {PpRow{"SIGN", PpModelKind::kSign, 512},
                            PpRow{"HOGA", PpModelKind::kHoga, 256}}) {
      std::printf("%-6zu %-12s", hops, row.label);
      for (const int g : {1, 2, 4}) {
        auto cfg = paper_pp_config(name, row.kind, hops, row.hidden);
        cfg.placement = DataPlacement::kGpu;
        cfg.loader = LoaderKind::kDoubleBuffer;
        cfg.num_gpus = g;
        std::printf(" %10.3f",
                    simulate_pp_epoch(cfg).throughput_epochs_per_sec());
      }
      std::printf("\n");
    }
  }
  std::printf("\nExpected shape: SIGN >> HOGA > GNNLab > SALIENT++ > DGL in "
              "throughput; MP-GNN throughput collapses with depth while "
              "PP-GNNs barely move (paper: up to 156x at 4 GPUs).\n");

  header("Why PP-GNN input fits on GPU (Section 6.4)");
  const auto scale = graph::paper_scale(name);
  for (const std::size_t hops : {2, 3, 4}) {
    std::printf("R=%zu: labeled preprocessed input = %.1f GB (48 GB GPU)\n",
                hops,
                static_cast<double>(scale.preprocessed_bytes(hops)) / 1e9);
  }
  std::printf("full features + topology for MP-GNNs: %.0f GB (> 1 GPU)\n",
              (static_cast<double>(scale.feature_bytes()) +
               scale.edges * 8.0) / 1e9);
  return 0;
}
