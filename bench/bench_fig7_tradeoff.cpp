// Figure 7 (+ Appendix D Figure 11) — accuracy-efficiency trade-off on the
// wiki analogue: test accuracy (real training) vs training throughput
// (paper-scale cost model) for optimized PP-GNNs and MP-GNNs across
// receptive-field sizes.
//
// Expected shape (paper): optimized PP-GNNs sit on the Pareto frontier;
// SGC is fastest but least accurate; LADIES/SAINT occupy the low-accuracy
// region; PP-GNN throughput decays only mildly with hops while MP-GNN
// throughput collapses (SIGN's advantage grows from ~9x at 2 hops to ~28x
// at 6).
#include "common.h"

using namespace ppgnn;
using namespace ppgnn::bench;
using namespace ppgnn::sim;

int main() {
  header("Figure 7: accuracy vs throughput on wiki (acc: analogue; "
         "throughput: paper-scale model)");
  const auto ds = graph::make_dataset(graph::DatasetName::kWikiSim, 0.5);
  const auto name = graph::DatasetName::kWikiSim;
  std::printf("%-14s %6s %10s %16s\n", "model", "hops", "test acc",
              "epochs/sec");

  std::vector<double> sign_tp, sage_tp;
  for (const std::size_t h : {2, 4, 6}) {
    // PP-GNNs: optimized pipeline (GPU placement — medium graphs fit).
    struct Pp {
      const char* kind;
      PpModelKind sim_kind;
      std::size_t hidden;
    };
    for (const Pp m : {Pp{"HOGA", PpModelKind::kHoga, 256},
                       Pp{"SIGN", PpModelKind::kSign, 512},
                       Pp{"SGC", PpModelKind::kSgc, 512}}) {
      const auto acc = run_pp(ds, m.kind, h, 20, 64).test_acc;
      auto cfg = paper_pp_config(name, m.sim_kind, h, m.hidden);
      cfg.placement = DataPlacement::kGpu;
      cfg.loader = LoaderKind::kDoubleBuffer;
      const double tp = simulate_pp_epoch(cfg).throughput_epochs_per_sec();
      std::printf("%-8s %4zu %8.3f %16.3f\n", m.kind, h, acc, tp);
      std::fflush(stdout);
      if (std::string(m.kind) == "SIGN") sign_tp.push_back(tp);
    }
    // MP-GNNs.
    struct Mp {
      const char* label;
      const char* sampler;
      bool labor;
      MpSystem system;
    };
    for (const Mp m : {Mp{"SAGE-LABOR", "LABOR", true, MpSystem::kDglPreload},
                       Mp{"SAGE-SAINT", "SAINT", false, MpSystem::kDglPreload},
                       Mp{"SAGE-LADIES", "LADIES", false,
                          MpSystem::kDglPreload}}) {
      const auto acc = run_sage(ds, m.sampler, h, 10, 64).test_acc;
      auto cfg = paper_mp_config(name, h, 256, m.labor);
      if (std::string(m.sampler) == "LADIES" ||
          std::string(m.sampler) == "SAINT") {
        // Layer/graph-wise samplers: linear layer growth.
        cfg.batch_shape.layer_nodes.assign(h + 1, 8000);
        cfg.batch_shape.input_rows = 8000 + 512 * h;
        cfg.batch_shape.total_edges = 8000 * 20 * h;
      }
      cfg.system = m.system;
      const double tp = simulate_mp_epoch(cfg).throughput_epochs_per_sec();
      std::printf("%-8s %6zu %8.3f %16.3f\n", m.label, h, acc, tp);
      std::fflush(stdout);
      if (std::string(m.label) == "SAGE-LABOR") sage_tp.push_back(tp);
    }
  }
  std::printf("\nSIGN/SAGE-LABOR throughput ratio: %.1fx at 2 hops -> %.1fx "
              "at 6 hops (paper: 9x -> 28x)\n",
              sign_tp[0] / sage_tp[0], sign_tp[2] / sage_tp[2]);
  return 0;
}
