// Table 5 — IGB-large: the storage-resident case (preprocessed input
// ~1.6 TB > 380 GB host memory).  Accuracy from the analogue trained with
// the *real* on-disk feature store (kStorageChunk exercises the GDS-
// analogue code path); throughput from the paper-scale model for SAGE
// (DGL-mmap, Ginex) vs SIGN/HOGA with chunked direct-storage access.
//
// Expected shape (paper): PP-GNNs reach up to ~42x higher throughput with
// better accuracy; MP-GNN epochs take hours, making tuning impractical.
#include "common.h"

using namespace ppgnn;
using namespace ppgnn::bench;
using namespace ppgnn::sim;

int main() {
  const auto name = graph::DatasetName::kIgbLargeSim;
  const auto ds = graph::make_dataset(name, 0.4);

  header("Table 5 (accuracy): igb-large analogue, PP trained from real "
         "on-disk store");
  std::printf("%-6s %-8s %10s\n", "hops", "model", "test acc");
  for (const std::size_t hops : {2, 3}) {
    const auto sage = run_sage(ds, "LABOR", hops, 8, 64);
    std::printf("%-6zu %-8s %10.3f\n", hops, "SAGE", sage.test_acc);
    std::fflush(stdout);
    const auto sign = run_pp(ds, "SIGN", hops, 12, 64,
                             core::LoadingMode::kStorageChunk);
    std::printf("%-6zu %-8s %10.3f\n", hops, "SIGN", sign.test_acc);
    std::fflush(stdout);
    const auto hoga = run_pp(ds, "HOGA", hops, 12, 64,
                             core::LoadingMode::kStorageChunk);
    std::printf("%-6zu %-8s %10.3f\n", hops, "HOGA", hoga.test_acc);
    std::fflush(stdout);
  }

  header("Table 5 (throughput): epochs/hour at paper scale, modeled");
  std::printf("%-6s %-10s %14s\n", "hops", "system", "epochs/hour");
  for (const std::size_t hops : {2, 3}) {
    struct MpRow {
      const char* label;
      MpSystem system;
      double cache_hit;
    };
    for (const MpRow row : {MpRow{"SAGE-DGL(mmap)", MpSystem::kGinex, 0.3},
                            MpRow{"Ginex", MpSystem::kGinex, 0.6}}) {
      auto cfg = paper_mp_config(name, hops, 256);
      cfg.system = row.system;
      cfg.cache_hit = row.cache_hit;
      std::printf("%-6zu %-14s %10.2f\n", hops, row.label,
                  3600.0 * simulate_mp_epoch(cfg).throughput_epochs_per_sec());
    }
    struct PpRow {
      const char* label;
      PpModelKind kind;
      std::size_t hidden;
    };
    for (const PpRow row : {PpRow{"SIGN", PpModelKind::kSign, 512},
                            PpRow{"HOGA", PpModelKind::kHoga, 256}}) {
      auto cfg = paper_pp_config(name, row.kind, hops, row.hidden);
      cfg.placement = DataPlacement::kStorage;
      cfg.loader = LoaderKind::kChunkPipeline;
      std::printf("%-6zu %-14s %10.2f\n", hops, row.label,
                  3600.0 * simulate_pp_epoch(cfg).throughput_epochs_per_sec());
    }
  }
  const auto scale = graph::paper_scale(name);
  std::printf("\npreprocessed input at R=3: %.2f TB (host memory: 380 GB) — "
              "the input expansion problem that forces storage residency\n",
              static_cast<double>(scale.preprocessed_bytes(3)) / 1e12);
  std::printf("Expected shape: PP-GNNs an order of magnitude faster "
              "(paper: up to 42x), with higher accuracy.\n");
  return 0;
}
