// Table 7 (Appendix G) — preprocessing overhead vs a single training run.
//
// For each analogue: real preprocessing wall time, real mean epoch time of
// HOGA at the dataset's maximum hop count, and the resulting ratio — the
// paper's "one-time cost amortized over training" argument.  The paper's
// own ratios are printed alongside.
#include "common.h"

using namespace ppgnn;
using namespace ppgnn::bench;

int main() {
  header("Table 7: preprocessing cost vs one training run (analogues, real)");
  std::printf("%-16s %6s %10s %12s %8s %14s %8s\n", "dataset", "hops",
              "pre (s)", "epoch (s)", "epochs", "run est (s)", "ratio");

  struct Row {
    graph::DatasetName name;
    std::size_t hops;
    std::size_t epochs;  // paper's per-run epoch budget
    double paper_ratio;
  };
  const Row rows[] = {
      {graph::DatasetName::kProductsSim, 6, 200, 0.53},
      {graph::DatasetName::kPokecSim, 6, 400, 0.03},
      {graph::DatasetName::kWikiSim, 6, 400, 0.11},
      {graph::DatasetName::kIgbMediumSim, 3, 100, 0.11},
      {graph::DatasetName::kPapers100MSim, 4, 200, 0.90},
      {graph::DatasetName::kIgbLargeSim, 3, 30, 0.28},
  };
  for (const Row& row : rows) {
    const auto ds = graph::make_dataset(row.name, 0.4);
    core::PrecomputeConfig pc;
    pc.hops = row.hops;
    const auto pre = core::precompute(ds.graph, ds.features, pc);
    // Short real HOGA run to measure epoch time at max hops.
    const auto r = run_pp(ds, "HOGA", row.hops, 3, 64);
    const double epoch = r.history.mean_epoch_seconds();
    const double run_est = epoch * static_cast<double>(row.epochs);
    std::printf("%-16s %6zu %10.3f %12.4f %8zu %14.2f %7.0f%%  (paper %3.0f%%)\n",
                ds.name.c_str(), row.hops, pre.preprocess_seconds, epoch,
                row.epochs, run_est,
                100.0 * pre.preprocess_seconds / run_est,
                100.0 * row.paper_ratio);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape: preprocessing is a fraction of one training "
              "run everywhere except papers100M (where only 1.4%% of nodes "
              "train but ALL nodes propagate).\n");
  return 0;
}
