// Figure 3 (+ Appendix B Figure 10) — convergence-rate comparison of
// 4-layer/hop MP-GNNs (GraphSAGE, GAT with LABOR) and PP-GNNs (HOGA, SIGN):
// the epoch at which each model first reaches 99% of its peak validation
// accuracy.
//
// Expected shape (paper): PP-GNNs converge on par with or faster than
// MP-GNNs (clearly faster on products; comparable elsewhere).
#include "common.h"

using namespace ppgnn;
using namespace ppgnn::bench;

int main() {
  header("Figure 3: convergence point (epoch reaching 99% of peak val acc), "
         "4 hops/layers");
  std::printf("%-10s %12s %12s %12s\n", "model", "products", "pokec", "wiki");
  const std::size_t epochs = 30;

  std::vector<graph::Dataset> datasets;
  for (const auto name : graph::medium_datasets()) {
    datasets.push_back(graph::make_dataset(name, 0.4));
  }

  const auto pp_row = [&](const char* kind) {
    std::printf("%-10s", kind);
    for (const auto& ds : datasets) {
      const auto r = run_pp(ds, kind, 4, epochs, 64);
      std::printf(" %7zu(%.3f)", r.convergence, r.history.peak_val_acc());
      std::fflush(stdout);
    }
    std::printf("\n");
  };
  pp_row("HOGA");
  pp_row("SIGN");

  std::printf("%-10s", "SAGE");
  for (const auto& ds : datasets) {
    const auto r = run_sage(ds, "LABOR", 4, epochs, 64);
    std::printf(" %7zu(%.3f)", r.convergence, r.history.peak_val_acc());
    std::fflush(stdout);
  }
  std::printf("\n%-10s", "GAT");
  for (const auto& ds : datasets) {
    const auto r = run_gat(ds, "LABOR", 4, epochs, 16, 4);
    std::printf(" %7zu(%.3f)", r.convergence, r.history.peak_val_acc());
    std::fflush(stdout);
  }
  std::printf("\n\ncells: convergence epoch (peak validation accuracy)\n");
  std::printf("Expected shape: PP-GNN convergence epochs <= MP-GNN ones on "
              "most datasets.\n");
  return 0;
}
