// Table 2 — dataset statistics and one-time preprocessing cost.
//
// Prints the paper-scale statistics carried by each analogue plus the
// measured properties of the generated analogue (node/edge counts,
// homophily, real preprocessing wall time) and the *modeled* paper-scale
// preprocessing time for comparison with the paper's column.
#include "common.h"

using namespace ppgnn;
using namespace ppgnn::bench;

namespace {

// Paper-scale preprocessing: R SpMM passes over the full graph (bytes
// bound on the host: the big graphs preprocess on CPU, Appendix G).
double modeled_preprocess_seconds(const graph::PaperScale& s,
                                  std::size_t hops) {
  const auto m = sim::MachineSpec::paper_server();
  const double bytes_per_pass =
      static_cast<double>(s.edges) * (s.feature_dim * 4.0 * 2 + 12.0);
  // Sparse gather sustains ~15% of streaming bandwidth.
  return hops * bytes_per_pass / (m.host.mem_bandwidth * 0.15);
}

}  // namespace

int main() {
  header("Table 2: dataset statistics (paper scale | analogue)");
  std::printf("%-16s %12s %14s %6s %8s | %9s %10s %6s %10s %12s\n", "dataset",
              "nodes", "edges", "#feat", "#class", "a-nodes", "a-edges",
              "a-hom", "a-pre(s)", "model-pre(s)");
  for (const auto name : graph::all_datasets()) {
    const auto scale = graph::paper_scale(name);
    // Small analogues keep the bench fast; accuracy benches use 0.4-0.6.
    const auto ds = graph::make_dataset(name, 0.5);
    const std::size_t hops =
        name == graph::DatasetName::kPapers100MSim ? 4
        : (name == graph::DatasetName::kIgbMediumSim ||
           name == graph::DatasetName::kIgbLargeSim)
            ? 3
            : 6;
    core::PrecomputeConfig pc;
    pc.hops = hops;
    const auto pre = core::precompute(ds.graph, ds.features, pc);
    std::printf("%-16s %12zu %14zu %6zu %8zu | %9zu %10zu %6.2f %10.2f %12.0f\n",
                ds.name.c_str(), scale.nodes, scale.edges, scale.feature_dim,
                scale.classes, ds.num_nodes(), ds.graph.num_edges(),
                ds.homophily, pre.preprocess_seconds,
                modeled_preprocess_seconds(scale, hops));
  }
  std::printf("\npaper preprocessing times: products 51.8s, pokec 27.6s, "
              "wiki 122.8s, igb-medium 386.6s, papers100M 507.8s, "
              "igb-large 4521.5s\n");

  header("Input expansion (Section 3.4)");
  for (const auto name : graph::all_datasets()) {
    const auto scale = graph::paper_scale(name);
    std::printf("%-16s features %8.1f GB -> R=3 preprocessed %9.1f GB "
                "(labeled part only)\n",
                graph::to_string(name),
                static_cast<double>(scale.feature_bytes()) / 1e9,
                static_cast<double>(scale.preprocessed_bytes(3)) / 1e9);
  }
  return 0;
}
