// Figure 6 — the four execution diagrams of the data-loading pipelines,
// rendered as simulated stream timelines for a representative batch
// sequence (SIGN on ogbn-products, host-resident input):
//   (a) baseline: per-row assembly, serial
//   (b) fused host assembly + async transfer, single buffer
//   (c) double-buffer prefetching: loading overlaps compute
//   (d) chunk reshuffling: chunk DMA + GPU-side assembly
// For each variant: per-phase busy time, the wall-clock span actually
// occupied, and the steady-state epoch time.
#include "common.h"

using namespace ppgnn;
using namespace ppgnn::bench;
using namespace ppgnn::sim;

int main() {
  header("Figure 6: pipeline execution structure (SIGN, products, host "
         "memory)");
  std::printf("%-18s %10s %10s %10s %12s %12s\n", "variant", "assembly(s)",
              "transfer(s)", "compute(s)", "load span(s)", "epoch(s)");

  struct Variant {
    const char* label;
    LoaderKind loader;
  };
  const Variant variants[] = {
      {"(a) baseline", LoaderKind::kBaseline},
      {"(b) fused asm", LoaderKind::kFusedAssembly},
      {"(c) dbl buffer", LoaderKind::kDoubleBuffer},
      {"(d) chunks", LoaderKind::kChunkPipeline},
  };
  double prev = 0;
  for (const auto& v : variants) {
    auto cfg = paper_pp_config(graph::DatasetName::kProductsSim,
                               PpModelKind::kSign, 3, 512);
    cfg.placement = DataPlacement::kHost;
    cfg.loader = v.loader;
    const auto sim = simulate_pp_epoch(cfg);
    std::printf("%-18s %10.3f %10.3f %10.3f %12.3f %12.3f", v.label,
                sim.assembly_seconds, sim.transfer_seconds,
                sim.compute_seconds(), sim.loading_seconds(),
                sim.epoch_seconds);
    if (prev > 0) std::printf("   (%.2fx)", prev / sim.epoch_seconds);
    std::printf("\n");
    prev = sim.epoch_seconds;
  }

  header("Overlap visible in the double-buffered variant");
  // Rebuild (c) at small batch count and show that loading busy time is
  // hidden behind compute: epoch ~= compute + one pipeline fill.
  auto cfg = paper_pp_config(graph::DatasetName::kProductsSim,
                             PpModelKind::kHoga, 3, 256);
  cfg.placement = DataPlacement::kHost;
  cfg.loader = LoaderKind::kDoubleBuffer;
  const auto sim = simulate_pp_epoch(cfg);
  std::printf("HOGA: loading busy %.3fs, compute busy %.3fs, epoch %.3fs -> "
              "loading %.0f%% hidden\n",
              sim.loading_seconds(), sim.compute_seconds(), sim.epoch_seconds,
              100.0 * (1.0 - std::max(0.0, sim.epoch_seconds -
                                               sim.compute_seconds()) /
                                 std::max(1e-12, sim.loading_seconds())));
  return 0;
}
