// Figure 5 — training-time breakdown of baseline PP-GNN implementations on
// ogbn-products: data loading dominates (paper: HOGA 68.7%, SIGN 88.8%,
// SGC 91.5%), averaged across hop counts.
//
// Two sections: the paper-scale cost model, and a *real measured* breakdown
// of the baseline loader on the products analogue (CPU).
#include "common.h"

using namespace ppgnn;
using namespace ppgnn::bench;
using namespace ppgnn::sim;

int main() {
  header("Figure 5: PP-GNN baseline epoch breakdown, ogbn-products (modeled)");
  std::printf("%-6s %10s %10s %10s %10s\n", "model", "loading%", "forward%",
              "backward%", "optim%");
  struct Row {
    const char* label;
    PpModelKind kind;
    std::size_t hidden;
  };
  for (const Row row : {Row{"HOGA", PpModelKind::kHoga, 256},
                        Row{"SIGN", PpModelKind::kSign, 512},
                        Row{"SGC", PpModelKind::kSgc, 512}}) {
    double load = 0, fwd = 0, bwd = 0, opt = 0;
    for (const std::size_t hops : {2, 3, 4, 5, 6}) {
      auto cfg = paper_pp_config(graph::DatasetName::kProductsSim, row.kind,
                                 hops, row.hidden);
      cfg.loader = LoaderKind::kBaseline;
      const auto sim = simulate_pp_epoch(cfg);
      load += sim.loading_seconds();
      fwd += sim.forward_seconds;
      bwd += sim.backward_seconds;
      opt += sim.optimizer_seconds;
    }
    const double total = load + fwd + bwd + opt;
    std::printf("%-6s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n", row.label,
                100 * load / total, 100 * fwd / total, 100 * bwd / total,
                100 * opt / total);
  }

  header("Real measured breakdown (products analogue, baseline loader)");
  const auto ds = graph::make_dataset(graph::DatasetName::kProductsSim, 0.4);
  std::printf("%-6s %10s %10s %10s %10s\n", "model", "loading%", "forward%",
              "backward%", "optim%");
  for (const char* kind : {"HOGA", "SIGN", "SGC"}) {
    double load = 0, fwd = 0, bwd = 0, opt = 0;
    for (const std::size_t hops : {2, 4}) {
      const auto r = run_pp(ds, kind, hops, 4, 64,
                            core::LoadingMode::kBaselinePerRow);
      for (const auto& e : r.history.epochs) {
        load += e.data_loading_seconds;
        fwd += e.forward_seconds;
        bwd += e.backward_seconds;
        opt += e.optimizer_seconds;
      }
    }
    const double total = load + fwd + bwd + opt;
    std::printf("%-6s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n", kind,
                100 * load / total, 100 * fwd / total, 100 * bwd / total,
                100 * opt / total);
  }
  std::printf("\nNote: CPU 'compute' is relatively more expensive than an "
              "A6000's, so the real-measured loading share understates the "
              "paper's GPU-side fractions; the modeled section carries the "
              "paper-scale comparison.\n");
  return 0;
}
