// Table 4 — IGB-medium: host-memory-resident training.  Accuracy from the
// analogue (real), throughput from the paper-scale model for SAGE (DGL,
// GNNLab) and SIGN/HOGA under SGD-RR vs chunk reshuffling on 1/2/4 GPUs.
//
// Expected shape (paper): PP accuracy > SAGE; CR beats RR on one GPU (up
// to 24x over MP-GNNs) but scales poorly across GPUs (host-to-GPU egress
// bound, ~1.3x at 4 GPUs) while RR keeps scaling.
#include "common.h"

using namespace ppgnn;
using namespace ppgnn::bench;
using namespace ppgnn::sim;

int main() {
  const auto name = graph::DatasetName::kIgbMediumSim;
  const auto ds = graph::make_dataset(name, 0.5);

  header("Table 4 (accuracy): igb-medium analogue, real training");
  std::printf("%-6s %-10s %10s\n", "hops", "model", "test acc");
  for (const std::size_t hops : {2, 3}) {
    const auto sage = run_sage(ds, "LABOR", hops, 10, 64);
    std::printf("%-6zu %-10s %10.3f\n", hops, "SAGE", sage.test_acc);
    std::fflush(stdout);
    const auto sign_rr = run_pp(ds, "SIGN", hops, 16, 64,
                                core::LoadingMode::kPrefetch);
    std::printf("%-6zu %-10s %10.3f\n", hops, "SIGN (RR)", sign_rr.test_acc);
    const auto sign_cr = run_pp(ds, "SIGN", hops, 16, 64,
                                core::LoadingMode::kChunkPrefetch);
    std::printf("%-6zu %-10s %10.3f\n", hops, "SIGN (CR)", sign_cr.test_acc);
    std::fflush(stdout);
    const auto hoga_rr = run_pp(ds, "HOGA", hops, 16, 64,
                                core::LoadingMode::kPrefetch);
    std::printf("%-6zu %-10s %10.3f\n", hops, "HOGA (RR)", hoga_rr.test_acc);
    const auto hoga_cr = run_pp(ds, "HOGA", hops, 16, 64,
                                core::LoadingMode::kChunkPrefetch);
    std::printf("%-6zu %-10s %10.3f\n", hops, "HOGA (CR)", hoga_cr.test_acc);
    std::fflush(stdout);
  }

  header("Table 4 (throughput): epochs/min at paper scale, modeled");
  std::printf("%-6s %-12s %10s %10s %10s\n", "hops", "system", "1 GPU",
              "2 GPUs", "4 GPUs");
  for (const std::size_t hops : {2, 3}) {
    struct MpRow {
      const char* label;
      MpSystem system;
      double subgraph_scale;
    };
    for (const MpRow row : {MpRow{"SAGE-DGL", MpSystem::kDglUva, 1.0},
                            MpRow{"GNNLab", MpSystem::kGnnLab, 1.6}}) {
      if (row.system == MpSystem::kGnnLab && hops > 2) continue;  // OOM (paper)
      std::printf("%-6zu %-12s", hops, row.label);
      for (const int g : {1, 2, 4}) {
        auto cfg = paper_mp_config(name, hops, 256,
                                   row.system != MpSystem::kGnnLab);
        cfg.system = row.system;
        cfg.subgraph_scale = row.subgraph_scale;
        cfg.cache_hit = 0.6;  // 40 GB of features vs 48 GB GPU: partial
        cfg.num_gpus = g;
        std::printf(" %10.2f",
                    60.0 * simulate_mp_epoch(cfg).throughput_epochs_per_sec());
      }
      std::printf("\n");
    }
    struct PpRow {
      const char* label;
      PpModelKind kind;
      std::size_t hidden;
      LoaderKind loader;
    };
    for (const PpRow row :
         {PpRow{"SIGN-RR", PpModelKind::kSign, 512, LoaderKind::kDoubleBuffer},
          PpRow{"SIGN-CR", PpModelKind::kSign, 512, LoaderKind::kChunkPipeline},
          PpRow{"HOGA-RR", PpModelKind::kHoga, 256, LoaderKind::kDoubleBuffer},
          PpRow{"HOGA-CR", PpModelKind::kHoga, 256,
                LoaderKind::kChunkPipeline}}) {
      std::printf("%-6zu %-12s", hops, row.label);
      for (const int g : {1, 2, 4}) {
        auto cfg = paper_pp_config(name, row.kind, hops, row.hidden);
        cfg.placement = DataPlacement::kHost;  // 160+ GB input exceeds GPUs
        cfg.loader = row.loader;
        cfg.num_gpus = g;
        std::printf(" %10.2f",
                    60.0 * simulate_pp_epoch(cfg).throughput_epochs_per_sec());
      }
      std::printf("\n");
    }
  }
  std::printf("\nExpected shape: CR > RR on 1 GPU; CR's 4-GPU speedup stays "
              "~1.3x (egress bound) while RR scales; PP >> SAGE-DGL "
              "(paper: up to 24x).\n");
  return 0;
}
