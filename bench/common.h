// Shared helpers for the table/figure reproduction harnesses.
//
// Each bench binary regenerates one artifact of the paper's evaluation.
// Accuracy numbers come from *real training* on the scaled-down analogues;
// throughput numbers for paper-scale graphs come from the calibrated
// hardware cost model (see DESIGN.md §1 for the substitution argument).
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/complexity.h"
#include "core/gamlp.h"
#include "core/hoga.h"
#include "core/precompute.h"
#include "core/sgc.h"
#include "core/sign.h"
#include "core/ssgc.h"
#include "core/trainer.h"
#include "graph/dataset.h"
#include "mpgnn/mp_trainer.h"
#include "sampling/labor.h"
#include "sampling/ladies.h"
#include "sampling/neighbor.h"
#include "sampling/saint.h"
#include "sim/pipeline.h"

namespace ppgnn::bench {

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline double geomean(const std::vector<double>& v) {
  if (v.empty()) return 0;
  double s = 0;
  for (const double x : v) s += std::log(x);
  return std::exp(s / static_cast<double>(v.size()));
}

// Builds a PP-GNN model by kind on a dataset's dimensions.
inline std::unique_ptr<core::PpModel> make_pp_model(
    const std::string& kind, const graph::Dataset& ds, std::size_t hops,
    std::size_t hidden, Rng& rng) {
  if (kind == "SGC") {
    return std::make_unique<core::Sgc>(ds.feature_dim(), hops,
                                       ds.num_classes, rng);
  }
  if (kind == "SSGC") {
    return std::make_unique<core::Ssgc>(ds.feature_dim(), hops,
                                        ds.num_classes, rng);
  }
  if (kind == "GAMLP") {
    core::GamlpConfig cfg;
    cfg.feat_dim = ds.feature_dim();
    cfg.hops = hops;
    cfg.hidden = hidden;
    cfg.classes = ds.num_classes;
    cfg.dropout = 0.3f;
    return std::make_unique<core::Gamlp>(cfg, rng);
  }
  if (kind == "SIGN") {
    core::SignConfig cfg;
    cfg.feat_dim = ds.feature_dim();
    cfg.hops = hops;
    cfg.hidden = hidden;
    cfg.classes = ds.num_classes;
    cfg.dropout = 0.3f;
    return std::make_unique<core::Sign>(cfg, rng);
  }
  if (kind == "HOGA") {
    core::HogaConfig cfg;
    cfg.feat_dim = ds.feature_dim();
    cfg.hops = hops;
    cfg.hidden = hidden;
    cfg.heads = 2;
    cfg.classes = ds.num_classes;
    cfg.dropout = 0.3f;
    return std::make_unique<core::Hoga>(cfg, rng);
  }
  throw std::invalid_argument("unknown PP model kind: " + kind);
}

struct PpRunResult {
  TrainHistory history;
  double test_acc = 0;
  std::size_t convergence = 0;
};

// One full PP-GNN training run with preprocessing.
inline PpRunResult run_pp(const graph::Dataset& ds, const std::string& kind,
                          std::size_t hops, std::size_t epochs,
                          std::size_t hidden = 64,
                          core::LoadingMode mode = core::LoadingMode::kPrefetch,
                          std::size_t chunk_size = 0,
                          std::uint64_t seed = 1) {
  core::PrecomputeConfig pc;
  pc.hops = hops;
  const auto pre = core::precompute(ds.graph, ds.features, pc);
  Rng rng(seed);
  auto model = make_pp_model(kind, ds, hops, hidden, rng);
  core::PpTrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 256;
  tc.eval_every = 2;
  tc.mode = mode;
  tc.chunk_size = chunk_size == 0 ? tc.batch_size : chunk_size;
  tc.seed = seed + 1;
  const auto r = core::train_pp(*model, pre, ds, tc);
  return {r.history, r.history.test_at_best_val(),
          r.history.convergence_epoch()};
}

struct MpRunResult {
  TrainHistory history;
  double test_acc = 0;
  std::size_t convergence = 0;
  sampling::SamplerStats stats;
};

inline std::vector<int> fanouts_for(std::size_t layers) {
  // Paper Appendix A: [15 10 5] extended with fanout-3 tail, trimmed for
  // 2-layer models.
  const std::vector<int> base{15, 10, 5, 3, 3, 3};
  std::vector<int> f(base.begin(), base.begin() + layers);
  return f;
}

inline std::unique_ptr<sampling::Sampler> make_sampler(
    const std::string& kind, std::size_t layers, std::size_t batch) {
  if (kind == "Neighbor") {
    return std::make_unique<sampling::NeighborSampler>(fanouts_for(layers));
  }
  if (kind == "LABOR") {
    return std::make_unique<sampling::LaborSampler>(fanouts_for(layers));
  }
  if (kind == "LADIES") {
    return std::make_unique<sampling::LadiesSampler>(layers, 512);
  }
  if (kind == "SAINT") {
    return std::make_unique<sampling::SaintNodeSampler>(layers, batch);
  }
  throw std::invalid_argument("unknown sampler: " + kind);
}

// One GraphSAGE training run with the given sampler.
inline MpRunResult run_sage(const graph::Dataset& ds,
                            const std::string& sampler_kind,
                            std::size_t layers, std::size_t epochs,
                            std::size_t hidden = 64, std::uint64_t seed = 1) {
  Rng rng(seed);
  mpgnn::SageConfig cfg;
  cfg.in_dim = ds.feature_dim();
  cfg.hidden_dim = hidden;
  cfg.out_dim = ds.num_classes;
  cfg.num_layers = layers;
  cfg.dropout = 0.3f;
  mpgnn::GraphSage model(cfg, rng);
  const auto sampler = make_sampler(sampler_kind, layers, 256);
  mpgnn::MpTrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 256;
  tc.lr = 1e-2f;
  tc.eval_every = 2;
  tc.seed = seed + 1;
  const auto r = mpgnn::train_mp(model, ds, *sampler, tc);
  return {r.history, r.history.test_at_best_val(),
          r.history.convergence_epoch(), r.sampler_stats};
}

inline MpRunResult run_gat(const graph::Dataset& ds,
                           const std::string& sampler_kind,
                           std::size_t layers, std::size_t epochs,
                           std::size_t head_dim = 16, std::size_t heads = 4,
                           std::uint64_t seed = 1) {
  Rng rng(seed);
  mpgnn::GatConfig cfg;
  cfg.in_dim = ds.feature_dim();
  cfg.head_dim = head_dim;
  cfg.heads = heads;
  cfg.out_dim = ds.num_classes;
  cfg.num_layers = layers;
  cfg.dropout = 0.3f;
  mpgnn::Gat model(cfg, rng);
  const auto sampler = make_sampler(sampler_kind, layers, 256);
  mpgnn::MpTrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 256;
  tc.eval_every = 2;
  tc.seed = seed + 1;
  const auto r = mpgnn::train_mp(model, ds, *sampler, tc);
  return {r.history, r.history.test_at_best_val(),
          r.history.convergence_epoch(), r.sampler_stats};
}

// Paper-scale PP pipeline config for a dataset (cost-model side).
inline sim::PpPipelineConfig paper_pp_config(graph::DatasetName name,
                                             sim::PpModelKind kind,
                                             std::size_t hops,
                                             std::size_t hidden) {
  const auto scale = graph::paper_scale(name);
  sim::PpPipelineConfig cfg;
  cfg.model.kind = kind;
  cfg.model.hops = hops;
  cfg.model.feat_dim = scale.feature_dim;
  cfg.model.hidden = hidden;
  cfg.model.classes = scale.classes;
  cfg.train_rows = scale.train_nodes();
  return cfg;
}

inline sim::MpPipelineConfig paper_mp_config(graph::DatasetName name,
                                             std::size_t layers,
                                             std::size_t hidden,
                                             bool labor = true) {
  const auto scale = graph::paper_scale(name);
  sim::MpPipelineConfig cfg;
  cfg.model.feat_dim = scale.feature_dim;
  cfg.model.hidden = hidden;
  cfg.model.classes = scale.classes;
  cfg.model.layers = layers;
  cfg.batch_shape =
      labor ? sim::expected_labor_batch(fanouts_for(layers), 8000, scale.nodes)
            : sim::expected_neighbor_batch(fanouts_for(layers), 8000,
                                           scale.nodes);
  cfg.train_rows = scale.train_nodes();
  return cfg;
}

}  // namespace ppgnn::bench
