// Table 1 — asymptotic training memory and computational cost per model,
// plus an empirical scaling check: the real implementations' epoch times
// must grow the way the formulas say (PP-GNNs ~linear in hops, node-wise
// samplers ~geometric in layers).
#include "common.h"

using namespace ppgnn;
using namespace ppgnn::bench;

int main() {
  header("Table 1: asymptotic complexity (b=8000, C=10, L=3, F=128, n=1e6, r=3)");
  core::ComplexityParams p;
  std::printf("%-10s | %-32s | %-40s | %12s | %12s\n", "Model", "Memory",
              "Computational cost (prop + transform)", "mem (rel)",
              "compute (rel)");
  const auto table = core::complexity_table(p);
  const double mem0 = table[4].memory;     // SGC as the unit
  const double comp0 = table[4].compute;
  for (const auto& e : table) {
    std::printf("%-10s | %-32s | %-40s | %12.1f | %12.1f\n", e.model.c_str(),
                e.memory_expr.c_str(), e.compute_expr.c_str(),
                e.memory / mem0, e.compute / comp0);
  }

  header("Empirical scaling check (real CPU implementations, small analogue)");
  const auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.15);
  std::printf("%-12s", "layers/hops");
  for (std::size_t l : {2, 3, 4}) std::printf("  L=%zu", l);
  std::printf("\n");

  std::printf("%-12s", "SIGN (s)");
  std::vector<double> sign_times;
  for (const std::size_t hops : {2, 3, 4}) {
    const auto r = run_pp(ds, "SIGN", hops, 3, 32);
    sign_times.push_back(r.history.mean_epoch_seconds());
    std::printf("  %.3f", sign_times.back());
  }
  std::printf("\n");

  std::printf("%-12s", "SAGE (s)");
  std::vector<double> sage_times;
  for (const std::size_t layers : {2, 3, 4}) {
    const auto r = run_sage(ds, "Neighbor", layers, 3, 32);
    sage_times.push_back(r.history.mean_epoch_seconds());
    std::printf("  %.3f", sage_times.back());
  }
  std::printf("\n");

  const double sign_growth = sign_times[2] / sign_times[0];
  const double sage_growth = sage_times[2] / sage_times[0];
  std::printf("\ngrowth 2->4 layers/hops: SIGN %.2fx (formula: ~2x, linear in "
              "L), SAGE %.2fx (formula: C^L, superlinear)\n",
              sign_growth, sage_growth);
  std::printf("PP-GNN growth is %s than the node-wise sampler's — Table 1's "
              "prediction.\n",
              sign_growth < sage_growth ? "slower" : "NOT slower (!)");
  return 0;
}
