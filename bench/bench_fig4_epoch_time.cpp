// Figure 4 — epoch time of 3-layer MP-GNNs (GraphSAGE + LABOR under DGL
// vanilla / UVA / preload) vs 3-hop PP-GNN *baselines* (HOGA, SIGN, SGC with
// the PyTorch-style loader) on the three medium graphs, at paper scale via
// the hardware cost model.
//
// Expected shape (paper): optimized MP-GNNs beat the *vanilla* PP-GNN
// implementations despite PP-GNNs' theoretical advantage — data loading
// swamps the lightweight PP computation.
#include "common.h"

using namespace ppgnn;
using namespace ppgnn::bench;
using namespace ppgnn::sim;

int main() {
  header("Figure 4: epoch time (s) on medium graphs, paper scale (modeled)");
  std::printf("%-22s %12s %12s %12s\n", "method", "products", "pokec", "wiki");

  const auto datasets = graph::medium_datasets();

  const auto mp_row = [&](const char* label, MpSystem system) {
    std::printf("%-22s", label);
    for (const auto name : datasets) {
      auto cfg = paper_mp_config(name, 3, 256);
      cfg.system = system;
      std::printf(" %12.2f", simulate_mp_epoch(cfg).epoch_seconds);
    }
    std::printf("\n");
  };
  mp_row("SAGE-Vanilla", MpSystem::kDglCpuSampling);
  mp_row("SAGE-UVA", MpSystem::kDglUva);
  mp_row("SAGE-Preload", MpSystem::kDglPreload);

  const auto pp_row = [&](const char* label, PpModelKind kind,
                          std::size_t hidden, LoaderKind loader) {
    std::printf("%-22s", label);
    for (const auto name : datasets) {
      auto cfg = paper_pp_config(name, kind, 3, hidden);
      cfg.loader = loader;
      cfg.placement = DataPlacement::kHost;
      std::printf(" %12.2f", simulate_pp_epoch(cfg).epoch_seconds);
    }
    std::printf("\n");
  };
  pp_row("HOGA (baseline)", PpModelKind::kHoga, 256, LoaderKind::kBaseline);
  pp_row("SIGN (baseline)", PpModelKind::kSign, 512, LoaderKind::kBaseline);
  pp_row("SGC  (baseline)", PpModelKind::kSgc, 512, LoaderKind::kBaseline);

  std::printf("\nfor contrast — after this paper's optimizations "
              "(chunk pipeline):\n");
  pp_row("HOGA (optimized)", PpModelKind::kHoga, 256,
         LoaderKind::kChunkPipeline);
  pp_row("SIGN (optimized)", PpModelKind::kSign, 512,
         LoaderKind::kChunkPipeline);
  pp_row("SGC  (optimized)", PpModelKind::kSgc, 512,
         LoaderKind::kChunkPipeline);
  return 0;
}
