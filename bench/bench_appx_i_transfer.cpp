// Appendix I — total data-transfer volume per epoch: PP-GNNs move 1-2
// orders of magnitude less data than MP-GNNs because sampled subgraphs
// overlap heavily between batches while PP-GNNs touch each training row
// exactly once.
//
// Section 1 measures real per-epoch feature-row volumes with the actual
// samplers on the analogue; section 2 scales the comparison to the paper's
// graph sizes with the expected-batch-shape model.
#include "common.h"

using namespace ppgnn;
using namespace ppgnn::bench;
using namespace ppgnn::sim;

int main() {
  header("Appendix I (measured on analogues): feature bytes touched/epoch");
  std::printf("%-16s %14s %14s %10s\n", "dataset", "PP bytes", "SAGE bytes",
              "ratio");
  for (const auto name : graph::medium_datasets()) {
    const auto ds = graph::make_dataset(name, 0.4);
    // PP: every train row once, expanded (R+1)x with R=3.
    const std::size_t pp_bytes =
        ds.split.train.size() * 4 * ds.feature_dim() * sizeof(float);
    // MP: run one real epoch of sampling and count gathered rows.
    const auto sampler = make_sampler("LABOR", 3, 512);
    Rng rng(1);
    sampling::SamplerStats stats;
    for (std::size_t pos = 0; pos < ds.split.train.size(); pos += 512) {
      const std::size_t end = std::min(pos + 512, ds.split.train.size());
      std::vector<graph::NodeId> seeds;
      for (std::size_t i = pos; i < end; ++i) {
        seeds.push_back(static_cast<graph::NodeId>(ds.split.train[i]));
      }
      stats.observe(sampler->sample(ds.graph, seeds, rng));
    }
    const std::size_t mp_bytes =
        stats.input_rows * ds.feature_dim() * sizeof(float);
    std::printf("%-16s %14zu %14zu %9.1fx\n", ds.name.c_str(), pp_bytes,
                mp_bytes, static_cast<double>(mp_bytes) / pp_bytes);
  }

  header("Appendix I (paper scale, modeled): GB transferred per epoch");
  std::printf("%-16s %12s %12s %10s\n", "dataset", "PP GB", "SAGE GB",
              "ratio");
  for (const auto name : graph::all_datasets()) {
    const auto scale = graph::paper_scale(name);
    const std::size_t hops =
        name == graph::DatasetName::kPapers100MSim ? 4 : 3;
    const double pp_gb = static_cast<double>(scale.train_nodes()) *
                         (hops + 1) * scale.feature_dim * 4 / 1e9;
    const auto shape =
        expected_labor_batch(fanouts_for(3), 8000, scale.nodes);
    const double batches =
        static_cast<double>(scale.train_nodes()) / 8000.0;
    const double mp_gb =
        batches * shape.input_rows * scale.feature_dim * 4 / 1e9;
    std::printf("%-16s %12.1f %12.1f %9.1fx\n", graph::to_string(name),
                pp_gb, mp_gb, mp_gb / pp_gb);
  }
  std::printf("\npaper: medium graphs 8-26x, papers100M 26-111x, igb-medium "
              "23-65x, igb-large 16-55x more MP-GNN transfer.\n");
  return 0;
}
