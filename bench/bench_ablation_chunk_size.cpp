// Ablation (extension) — chunk size vs data-loading time.
//
// Section 4.2 claims the extra DMA launches of chunked transfer are "minor
// provided the chunk size is sufficiently large", and Section 6.2 settles
// on chunk = batch = 8000.  This bench quantifies the claim on paper-scale
// igb-medium for the model regime where loading matters: SGC's compute is
// too light to hide any transfer (Figure 5: >91% loading), so its epoch
// time exposes the per-chunk launch/latency overhead directly.  SIGN-512 is
// shown as the compute-bound contrast where the double buffer hides the
// sweep entirely.
//
// Expected shape: SGC epoch time falls steeply while chunks are tiny
// (per-transfer latency dominates), with a knee well below 8000 rows —
// which is why the paper can simply equate chunk and batch size; storage
// placement shows the same knee shifted up by SSD read latency.
#include "common.h"

using namespace ppgnn;
using namespace ppgnn::bench;

int main() {
  header("Ablation: chunk size vs epoch time (igb-medium paper scale)");
  std::printf("%-12s %14s %16s %18s\n", "chunk rows", "SGC host (s)",
              "SGC storage (s)", "SIGN-512 host (s)");

  double first_sgc = 0, last_sgc = 0;
  for (const std::size_t chunk : {16ul, 64ul, 128ul, 256ul, 512ul, 1024ul,
                                  2000ul, 4000ul, 8000ul}) {
    auto sgc = paper_pp_config(graph::DatasetName::kIgbMediumSim,
                               sim::PpModelKind::kSgc, 3, 512);
    sgc.loader = sim::LoaderKind::kChunkPipeline;
    sgc.chunk_size = chunk;
    sgc.placement = sim::DataPlacement::kHost;
    const auto sgc_host = sim::simulate_pp_epoch(sgc);
    sgc.placement = sim::DataPlacement::kStorage;
    const auto sgc_ssd = sim::simulate_pp_epoch(sgc);

    auto sign = paper_pp_config(graph::DatasetName::kIgbMediumSim,
                                sim::PpModelKind::kSign, 3, 512);
    sign.loader = sim::LoaderKind::kChunkPipeline;
    sign.chunk_size = chunk;
    sign.placement = sim::DataPlacement::kHost;
    const auto sign_host = sim::simulate_pp_epoch(sign);

    std::printf("%-12zu %14.2f %16.2f %18.2f\n", chunk,
                sgc_host.epoch_seconds, sgc_ssd.epoch_seconds,
                sign_host.epoch_seconds);
    if (chunk == 16) first_sgc = sgc_host.epoch_seconds;
    if (chunk == 8000) last_sgc = sgc_host.epoch_seconds;
  }
  std::printf("\nknee check: 16-row chunks cost %.2fx the 8000-row epoch "
              "time for SGC on host memory.\n",
              first_sgc / last_sgc);
  std::printf("Expected shape: SGC improves monotonically with a knee in "
              "the hundreds-to-thousands and is flat at chunk==batch; "
              "SIGN-512 is compute-bound so the double buffer hides the "
              "whole sweep (constant column).\n");
  return 0;
}
