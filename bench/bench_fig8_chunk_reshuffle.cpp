// Figure 8 (+ Appendix E Figure 12) — influence of chunk reshuffling on the
// validation-accuracy trajectory of HOGA (4 hops) across chunk sizes.
// Chunk sizes are scaled to the analogue's training-set size the way the
// paper's {1, 1000..8000} relate to its 8000 batch.
//
// Expected shape (paper): curves for all chunk sizes overlap; final test
// accuracy varies by < 0.5% (chunk size 1 == SGD-RR).
#include "common.h"

using namespace ppgnn;
using namespace ppgnn::bench;

int main() {
  const std::size_t chunk_sizes[] = {1, 128, 256, 512};
  for (const auto name : graph::medium_datasets()) {
    const auto ds = graph::make_dataset(name, 0.5);
    header("Figure 8: " + ds.name + " — HOGA 4 hops, validation accuracy");
    std::printf("%-10s", "epoch");
    const std::size_t epochs = 24;
    for (std::size_t e = 4; e <= epochs; e += 4) std::printf("   e=%-4zu", e);
    std::printf("%10s\n", "test acc");

    double rr_test = 0;
    for (const auto cs : chunk_sizes) {
      const auto mode = cs == 1 ? core::LoadingMode::kPrefetch
                                : core::LoadingMode::kChunkPrefetch;
      const auto r = run_pp(ds, "HOGA", 4, epochs, 64, mode, cs);
      std::printf("chunk=%-4zu", cs);
      for (std::size_t e = 4; e <= epochs; e += 4) {
        std::printf("   %.3f ", r.history.epochs[e - 1].val_acc);
      }
      std::printf("%10.3f\n", r.test_acc);
      std::fflush(stdout);
      if (cs == 1) rr_test = r.test_acc;
      else if (std::abs(r.test_acc - rr_test) > 0.02) {
        std::printf("  (deviation from SGD-RR: %.3f)\n",
                    r.test_acc - rr_test);
      }
    }
  }
  std::printf("\nExpected shape: trajectories overlap; final accuracy gap to "
              "SGD-RR stays within noise (paper: < 0.5%%).\n");
  return 0;
}
