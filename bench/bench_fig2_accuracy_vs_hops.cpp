// Figure 2 — test accuracy vs hop/layer count for GraphSAGE+LABOR,
// GraphSAGE+SAINT and HOGA on the three medium graphs (analogues).
//
// Expected shape (paper): (1) HOGA (PP-GNN) is comparable to LABOR;
// (2) accuracy *increases* with the receptive field, including at 5-6
// hops/layers; (3) SAINT trails the node-wise samplers.
#include "common.h"

using namespace ppgnn;
using namespace ppgnn::bench;

int main() {
  const std::size_t hops_list[] = {2, 3, 4, 6};
  for (const auto name : graph::medium_datasets()) {
    const auto ds = graph::make_dataset(name, 0.5);
    header("Figure 2: " + ds.name + " (test accuracy)");
    std::printf("%-8s", "model");
    for (const auto h : hops_list) std::printf("   h=%zu ", h);
    std::printf("\n");

    std::printf("%-8s", "HOGA");
    for (const auto h : hops_list) {
      std::printf("  %.3f", run_pp(ds, "HOGA", h, 24, 64).test_acc);
      std::fflush(stdout);
    }
    std::printf("\n%-8s", "LABOR");
    for (const auto h : hops_list) {
      std::printf("  %.3f", run_sage(ds, "LABOR", h, 24, 64).test_acc);
      std::fflush(stdout);
    }
    std::printf("\n%-8s", "SAINT");
    for (const auto h : hops_list) {
      std::printf("  %.3f", run_sage(ds, "SAINT", h, 24, 64).test_acc);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: accuracy rises with hops/layers on all three "
              "datasets; HOGA ~ LABOR >= SAINT.\n");
  return 0;
}
