// Figure 14 (+ Appendix H) — influence of data placement and training
// method on epoch time: GPU w/ RR, Host w/ CR, Host w/ RR, SSD w/ CR.
//
// Paper findings: GPU fastest; Host+CR ~ GPU; Host+RR moderately slower for
// HOGA but much slower for SIGN/SGC; SSD+CR ~ Host+RR (36% of GPU, 41% of
// Host+CR, 2% faster than Host+RR on average).
#include "common.h"

using namespace ppgnn;
using namespace ppgnn::bench;
using namespace ppgnn::sim;

namespace {

struct Config {
  const char* label;
  DataPlacement placement;
  LoaderKind loader;
};

}  // namespace

int main() {
  header("Figure 14: normalized epoch time by placement and method (modeled)");
  const Config configs[] = {
      {"GPU w/ RR", DataPlacement::kGpu, LoaderKind::kDoubleBuffer},
      {"Host w/ CR", DataPlacement::kHost, LoaderKind::kChunkPipeline},
      {"Host w/ RR", DataPlacement::kHost, LoaderKind::kDoubleBuffer},
      {"SSD w/ CR", DataPlacement::kStorage, LoaderKind::kChunkPipeline},
  };
  struct ModelRow {
    const char* label;
    PpModelKind kind;
    std::size_t hidden;
  };
  const std::vector<ModelRow> models{{"HOGA", PpModelKind::kHoga, 256},
                                     {"SIGN", PpModelKind::kSign, 512},
                                     {"SGC", PpModelKind::kSgc, 512}};
  const auto datasets = graph::medium_datasets();
  const char* ds_tag[] = {"O", "P", "W"};

  std::printf("%-10s %12s %12s %12s %12s\n", "config", configs[0].label,
              configs[1].label, configs[2].label, configs[3].label);
  std::vector<double> ssd_vs_gpu, ssd_vs_hostcr, ssd_vs_hostrr;
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    for (const auto& m : models) {
      double t[4] = {0, 0, 0, 0};
      for (const std::size_t hops : {2, 3, 4, 5, 6}) {
        for (int c = 0; c < 4; ++c) {
          auto cfg = paper_pp_config(datasets[d], m.kind, hops, m.hidden);
          cfg.placement = configs[c].placement;
          cfg.loader = configs[c].loader;
          t[c] += simulate_pp_epoch(cfg).epoch_seconds;
        }
      }
      std::printf("%s-%-8s %12.2f %12.2f %12.2f %12.2f\n", ds_tag[d], m.label,
                  t[0] / t[0], t[1] / t[0], t[2] / t[0], t[3] / t[0]);
      ssd_vs_gpu.push_back(t[0] / t[3]);
      ssd_vs_hostcr.push_back(t[1] / t[3]);
      ssd_vs_hostrr.push_back(t[2] / t[3]);
    }
  }
  std::printf("\nSSD+CR achieves %.0f%% of GPU-placement efficiency, %.0f%% "
              "of Host+CR, and is %.2fx vs Host+RR\n",
              100 * geomean(ssd_vs_gpu), 100 * geomean(ssd_vs_hostcr),
              geomean(ssd_vs_hostrr));
  std::printf("(paper: 36%%, 41%%, and ~2%% faster than Host+RR)\n");

  header("Real measured placements on the products analogue (CPU + disk)");
  const auto ds = graph::make_dataset(graph::DatasetName::kProductsSim, 0.4);
  struct RealRow {
    const char* label;
    core::LoadingMode mode;
  };
  for (const RealRow row :
       {RealRow{"RAM w/ RR (prefetch)", core::LoadingMode::kPrefetch},
        RealRow{"RAM w/ CR (chunks)", core::LoadingMode::kChunkPrefetch},
        RealRow{"Disk w/ CR (store)", core::LoadingMode::kStorageChunk}}) {
    const auto r = run_pp(ds, "SIGN", 3, 12, 64, row.mode);
    std::printf("%-24s %10.4f s/epoch (test acc %.3f)\n", row.label,
                r.history.mean_epoch_seconds(), r.test_acc);
  }
  return 0;
}
