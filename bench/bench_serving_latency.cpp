// Serving extension — six experiments, one per serving claim:
//
//  1. Throughput vs. offered load, cache-on vs. cache-off (PR 1).  The
//     Section-4.1 inversion made visible: the same LRU policy that bought
//     nothing on the training stream (bench_ablation_caching) extends the
//     load a serving tier survives.
//
//  2. Replicas x routing policy.  N independent pipelines behind a
//     FleetManager, closed-loop clients pushing each config to saturation.
//     Reports per-config throughput, tail latency and aggregate cache hit
//     rate, plus the throughput scaling factor vs. one replica.  Scaling
//     tracks min(replicas, cores): each replica needs a core to itself to
//     add service capacity, so on a many-core box 4 replicas clear 2x+
//     while a single-core box shows the flat curve it should.
//     cache_affinity's hit-rate column is the policy's point: sharded
//     caches stop duplicating the same hot set — and since PR 4 the shard
//     map is a consistent-hash ring, so it survives fleet resizes.
//
//  3. Admission control at overload.  A paced open-loop client offers 2x
//     the single-replica saturation rate; the shed-budget sweep shows the
//     trade: with shedding off, queue delay grows to whatever the bounded
//     queue holds (p99 ~ capacity / service rate); with a budget, the p99
//     of *admitted* requests stays pinned near the budget and the overload
//     shows up as shed rate instead — and the kLow class absorbs nearly
//     all of it, which is what priority classes are for.
//
//  4. fp32 vs int8 serving.  Same byte budget, same workload, both
//     precisions: the int8 row codec stores ~4x smaller rows, so the cache
//     holds ~4x more of them (the capacity ratio and the resulting hit
//     rates are in the JSON), fewer misses reach the store (preads per
//     micro-batch, which also shows what batched read_rows coalescing
//     saves), and the accuracy columns (top-1 agreement, max |logit err|
//     vs fp32) price the precision loss — the accuracy-vs-latency tradeoff
//     measured, not assumed.
//
//  5. Autoscaling under a staged load ramp (0.5x -> 2.5x -> 0.5x of
//     single-replica saturation).  Three fleets drive the same trace:
//     fixed at the autoscaler's min (1), fixed at its max (4), and the
//     elastic fleet (min 1, max 4, shed-rate/idle hysteresis).  The claim
//     is two-sided and both sides are recorded: the elastic fleet answers
//     (nearly) like fixed-max — beating fixed-min on answered_rps, whose
//     single pipeline sheds most of the 2.5x phase — while provisioning
//     (nearly) like fixed-min — beating fixed-max on idle replica-seconds,
//     whose three extra dispatchers sit empty through both 0.5x phases.
//     The replica-count timeline (sampled + membership events, including
//     rows cache-warmed into each spawn and its first-window hit rate)
//     lands in the JSON.
//
//  6. Deadlines at 2x saturation (serving API v2).  Two eviction arms over
//     the same shed budget and offered stream: FIFO drop-head (the PR-2
//     baseline — blown requests are computed anyway and counted late) vs
//     deadline-aware (slack-ordered eviction, blown requests shed BEFORE
//     compute).  Two claims, one row each.  Uniform deadline: slack order
//     equals FIFO order there, so the row isolates the dispatch-time
//     shed, whose win is GOODPUT — the compute not burned on doomed
//     requests answers viable ones in time (more in-time answers, lower
//     admitted p99, and a fresher head-of-line that admits more).  Mixed
//     1x/5x deadlines: eviction ORDER now differs (FIFO kills requests
//     with slack while keeping doomed ones) and the aware arm must hold a
//     lower miss-per-admitted rate at equal-or-better admission — the
//     gated comparison, machine-relative by construction (both arms on
//     this machine, deadline scaled to its batch service time), in the
//     JSON as the "deadline_gate" record.
//
//  7. Cross-process overhead (src/rpc/).  The same closed-loop drive over
//     two fleets of two replicas each: one in-process (PR 2's threads),
//     one where each replica is a replica_server_cli child answering over
//     a Unix socket in ppgnn-wire (docs/wire-protocol.md).  Both serve
//     file-backed rows through the same LRU byte budget; the only change
//     is the process boundary, so the throughput ratio IS the RPC tax
//     (framing + codec + socket hops + one extra scheduler handoff).  The
//     "cross_process" JSON row records both rates and the overhead ratio;
//     the deploy gate is ratio <= 2x.
//
//  9. Tenant isolation (src/tenancy/).  Four equal contracts on one
//     replica; both arms run tenant 0 at its full contracted quota's
//     worth of ADMITTED load (arm A offers exactly quota, arm B blasts
//     10x and the bucket clips it back to quota), tenants 1-3 at half
//     quota throughout.  Load-matched arms isolate the enforcement
//     claim — blasting past your contract gains you nothing and costs
//     your neighbors nothing beyond what your contracted rate already
//     does.  Gated in the "tenant_isolation" record: no victim is
//     quota-refused, no victim's admitted p99 moves more than 10%, and
//     the aggressor IS refused (the buckets demonstrably fired).
//
// Every row also prints as one JSON line ("json: {...}"); --json=PATH
// additionally writes all records to PATH as a JSON array (the
// BENCH_serving.json artifact CI uploads).  --quick shrinks streams for
// CI-sized runs.
#include "common.h"
#include "loader/cache.h"
#include "loader/storage.h"
#include "serve/feature_source.h"
#include "serve/inference_session.h"
#include "serve/micro_batcher.h"
#include "serve/replica_set.h"
#include "serve/router.h"
#include "serve/server_stats.h"
#include "rpc/remote_replica.h"
#include "serve/testbed.h"
#include "serve/workload.h"
#include "tenancy/tenant.h"
#include "tensor/cpu_features.h"
#include "tensor/quant.h"
#include "tensor/rng.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <fstream>
#include <functional>
#include <future>
#include <memory>
#include <thread>

#include "serve/serve_api.h"

using namespace ppgnn;
using namespace ppgnn::bench;

namespace {

constexpr std::size_t kNodes = 20000;
constexpr std::size_t kFeatDim = 32;
constexpr std::size_t kClasses = 16;
constexpr std::size_t kHops = 2;

std::vector<std::string> g_records;  // every JSON line, for --json=PATH

void emit(const std::string& json) {
  std::printf("json: %s\n", json.c_str());
  g_records.push_back(json);
}

struct LoadPoint {
  double offered_rps = 0;
  double achieved_rps = 0;
  serve::LatencySummary latency;
  serve::FeatureCacheStats cache;
  std::uint64_t preads = 0;  // syscalls the store served this config with
};

// Drives `stream` at `offered_rps` through a fresh single session over
// `source`.  Bounded open loop: requests are submitted on schedule while
// fewer than 4096 are in flight (plus the batcher's own admission bound),
// so moderate overload shows up as queue latency; past the backpressure
// bound the driver throttles like a real client feeling admission control,
// and the achieved-rps column dropping below offered-rps is the overload
// signal.
LoadPoint drive(const serve::ServingTestbed& tb,
                std::unique_ptr<serve::FeatureSource> source,
                const std::vector<std::int64_t>& stream, double offered_rps,
                const loader::FeatureFileStore* store = nullptr) {
  auto* cached = dynamic_cast<serve::CachedSource*>(source.get());
  serve::InferenceSession session(tb.make_model(), std::move(source));
  serve::MicroBatchConfig mc;
  mc.max_batch_size = 128;
  mc.max_delay = std::chrono::microseconds(500);
  serve::ServerStats stats;
  serve::MicroBatcher batcher(session, mc, &stats);

  const auto interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(1.0 / offered_rps));
  std::deque<std::future<std::vector<float>>> inflight;
  const auto t0 = std::chrono::steady_clock::now();
  auto next = t0;
  for (const auto node : stream) {
    std::this_thread::sleep_until(next);
    next += interval;
    inflight.push_back(batcher.submit(node));
    // Reap settled futures opportunistically to bound memory.
    while (inflight.size() > 4096) {
      inflight.front().get();
      inflight.pop_front();
    }
  }
  while (!inflight.empty()) {
    inflight.front().get();
    inflight.pop_front();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  LoadPoint p;
  p.offered_rps = offered_rps;
  p.achieved_rps = static_cast<double>(stream.size()) / wall;
  p.latency = stats.summary();
  if (cached) p.cache = cached->stats();
  if (store) p.preads = store->preads();
  return p;
}

// Every cache in this bench gets the same byte budget — 5% of the fp32
// resident set — regardless of codec; int8's smaller stored rows then buy
// proportionally more resident rows, which is the capacity claim the
// precision section measures.
constexpr std::size_t kFp32RowBytes = (kHops + 1) * kFeatDim * sizeof(float);
constexpr std::size_t kCacheBudgetBytes = (kNodes / 20) * kFp32RowBytes;

// A FleetManager over file-backed, LRU-cached per-replica sources, plus
// the cache and store handles for hit-rate / syscall reporting.  Heap-
// allocated: the FleetBuilder inside the manager captures this struct's
// address and may build more sources at a scale-up long after make_fleet
// returned.
struct Fleet {
  std::unique_ptr<serve::FleetManager> set;
  std::vector<const serve::CachedSource*> caches;
  std::vector<const loader::FeatureFileStore*> stores;
  std::size_t cache_capacity_rows = 0;  // rows the byte budget holds

  double hit_rate() const {
    return serve::aggregate_cache_stats(caches).hit_rate();
  }
  std::uint64_t preads() const {
    std::uint64_t total = 0;
    for (const auto* s : stores) total += s->preads();
    return total;
  }
};

std::unique_ptr<Fleet> make_fleet(
    const serve::ServingTestbed& tb, const std::string& store_dir,
    const std::string& ckpt, std::size_t replicas,
    serve::RoutingPolicy policy,
    std::chrono::microseconds shed_budget = std::chrono::microseconds{0},
    serve::Precision precision = serve::Precision::kFp32,
    loader::RowCodec codec = loader::RowCodec::kFp32,
    serve::AutoscaleConfig autoscale = {}, bool deadline_aware = true,
    const tenancy::TenantRegistry* tenants = nullptr) {
  auto f = std::make_unique<Fleet>();
  Fleet* fp = f.get();  // stable address for the builder's source factory
  serve::FleetBuilder builder(
      ckpt, [&tb](std::size_t) { return tb.make_model(); },
      [fp, store_dir, codec](std::size_t)
          -> std::unique_ptr<serve::FeatureSource> {
        auto source = std::make_unique<serve::FileStoreSource>(
            loader::FeatureFileStore::open(store_dir, kNodes, kHops + 1,
                                           kFeatDim, codec));
        fp->stores.push_back(&source->store());
        const std::size_t stored_row_bytes = source->store().row_bytes();
        auto policy_ptr = std::make_unique<loader::LruCache>(
            kCacheBudgetBytes, stored_row_bytes);
        fp->cache_capacity_rows = policy_ptr->capacity();
        auto cached = std::make_unique<serve::CachedSource>(
            std::move(source), std::move(policy_ptr));
        fp->caches.push_back(cached.get());
        return cached;
      },
      precision);
  serve::FleetConfig fc;
  fc.policy = policy;
  fc.precision = precision;
  fc.batch.max_batch_size = 128;
  fc.batch.max_delay = std::chrono::microseconds(500);
  fc.batch.shed_budget = shed_budget;
  fc.batch.deadline_aware = deadline_aware;
  fc.autoscale = autoscale;
  fc.tenants = tenants;
  f->set = std::make_unique<serve::FleetManager>(std::move(builder),
                                                 replicas, fc);
  return f;
}

struct SaturationPoint {
  double achieved_rps = 0;
  serve::LatencySummary latency;
  double hit_rate = 0;
};

// Closed-loop saturation: `clients` threads keep `window` requests in
// flight each until the stream drains — the max-throughput measurement.
// This overload drives a bare FleetManager (the cross-process arm of
// section 7 has no in-process cache handles to report).
SaturationPoint drive_closed(serve::FleetManager& set,
                             const std::vector<std::int64_t>& stream,
                             std::size_t clients, std::size_t window) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  const std::size_t shard = (stream.size() + clients - 1) / clients;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const std::size_t lo = c * shard;
      const std::size_t hi = std::min(stream.size(), lo + shard);
      std::deque<std::future<std::vector<float>>> inflight;
      for (std::size_t i = lo; i < hi; ++i) {
        if (inflight.size() >= window) {
          inflight.front().get();
          inflight.pop_front();
        }
        inflight.push_back(set.submit(stream[i]));
      }
      while (!inflight.empty()) {
        inflight.front().get();
        inflight.pop_front();
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  SaturationPoint p;
  p.achieved_rps = static_cast<double>(stream.size()) / wall;
  p.latency = set.aggregate_latency();
  return p;
}

SaturationPoint drive_closed(Fleet& fleet,
                             const std::vector<std::int64_t>& stream,
                             std::size_t clients, std::size_t window) {
  auto p = drive_closed(*fleet.set, stream, clients, window);
  p.hit_rate = fleet.hit_rate();
  return p;
}

// One tenant's offered rate in the multi-tenant isolation drive.
struct TenantLoad {
  std::uint32_t tenant = 0;
  double rps = 0;
};

// Paced open loop of single-node v2 envelopes, each tenant on its own
// arrival schedule, for `warmup + seconds` of wall time.  Every envelope
// goes through FleetManager::submit — the path the tenancy front gate
// (token buckets, priority ceiling, DWRR hand-off) actually guards — and
// every submission produces exactly one response.
//
// Latency is measured CLIENT-SIDE (submit -> completion) and only over
// kOk envelopes submitted after the warm-up cut: a freshly built fleet's
// first fraction of a second serves through a cold row cache, and at
// these offered rates that transient alone backs up the open loop enough
// to own the lifetime p99.  The isolation gate compares steady states,
// so the warm-up samples are discarded symmetrically in both arms.  The
// returned rows are the fleet's cumulative per-tenant merge (admission
// and refusal counters span warm-up too — refusal counts are what the
// gate checks and warming changes none of them) with the latency columns
// replaced by the steady-state client-side percentiles.
std::vector<serve::TenantStat> drive_tenant_mix(
    serve::FleetManager& fleet, const std::vector<std::int64_t>& stream,
    const std::vector<TenantLoad>& loads, double seconds, double warmup) {
  using Clock = std::chrono::steady_clock;
  serve::CompletionQueue cq;
  serve::ServeResponse resp;
  std::size_t inflight = 0;
  const auto t0 = Clock::now();
  const auto warm_end =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(warmup));
  const auto end =
      warm_end + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(seconds));
  std::vector<Clock::time_point> next(loads.size(), t0);
  std::vector<Clock::duration> interval(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    interval[i] = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(1.0 / loads[i].rps));
  }
  // Submission bookkeeping indexed by envelope id: which load slot it
  // belongs to and when it left, so completions can be billed per tenant
  // without trusting any server-side clock.
  std::vector<std::uint32_t> sub_slot;
  std::vector<Clock::time_point> sub_when;
  std::vector<std::vector<double>> lat(loads.size());
  const auto account = [&](const serve::ServeResponse& r) {
    --inflight;
    if (r.status != serve::ServeStatus::kOk) return;
    if (sub_when[r.id] < warm_end) return;
    const double us = std::chrono::duration<double, std::micro>(
                          Clock::now() - sub_when[r.id])
                          .count();
    lat[sub_slot[r.id]].push_back(us);
  };
  std::size_t si = 0;
  while (true) {
    // Earliest-deadline tenant submits next; ties resolve to the lower
    // index, which is deterministic across runs.
    std::size_t k = 0;
    for (std::size_t j = 1; j < loads.size(); ++j) {
      if (next[j] < next[k]) k = j;
    }
    if (next[k] >= end) break;
    std::this_thread::sleep_until(next[k]);
    serve::ServeRequest req;
    req.id = si;
    req.nodes = {stream[si % stream.size()]};
    req.tenant = loads[k].tenant;
    sub_slot.push_back(static_cast<std::uint32_t>(k));
    sub_when.push_back(Clock::now());
    fleet.submit(std::move(req), cq);
    ++inflight;
    ++si;
    next[k] += interval[k];
    while (cq.poll(&resp)) account(resp);
    while (inflight > 4096) {
      if (cq.wait_for(&resp, std::chrono::milliseconds(100))) account(resp);
    }
  }
  while (inflight > 0) {
    if (cq.wait_for(&resp, std::chrono::milliseconds(100))) account(resp);
  }
  const auto pct = [](std::vector<double>& v, double q) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    return v[static_cast<std::size_t>(q * (static_cast<double>(v.size()) -
                                           1.0))];
  };
  auto rows = fleet.aggregate_tenants();
  for (auto& row : rows) {
    for (std::size_t k = 0; k < loads.size(); ++k) {
      if (loads[k].tenant != row.tenant) continue;
      row.samples = lat[k].size();
      row.p50_us = pct(lat[k], 0.50);
      row.p99_us = pct(lat[k], 0.99);
    }
  }
  return rows;
}

struct OverloadPoint {
  double offered_rps = 0;
  double answered_rps = 0;  // completed requests over wall time
  serve::LatencySummary admitted_latency;
  serve::AdmissionCounters admission;
  double shed_rate_high = 0;  // fraction of kHigh offered never answered
  double shed_rate_low = 0;
};

// Paced open loop at `offered_rps` with a kHigh/kLow traffic mix.
// Rejected and shed requests are dropped (a retrying client's first
// attempt); per-class survival is accounted at the call site since only
// the caller knows each request's class.
OverloadPoint drive_overload(Fleet& fleet,
                             const std::vector<std::int64_t>& stream,
                             double offered_rps, double low_frac) {
  const auto interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(1.0 / offered_rps));
  std::size_t offered[2] = {0, 0}, answered[2] = {0, 0};
  std::deque<std::pair<serve::Priority, std::future<std::vector<float>>>>
      inflight;
  const auto reap_front = [&] {
    try {
      inflight.front().second.get();
      ++answered[static_cast<std::size_t>(inflight.front().first)];
    } catch (const serve::RejectedError&) {
      // shed from the queue — counted by not incrementing answered
    }
    inflight.pop_front();
  };
  const auto t0 = std::chrono::steady_clock::now();
  auto next = t0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    std::this_thread::sleep_until(next);
    next += interval;
    const auto pri = static_cast<double>(i % 100) < low_frac * 100
                         ? serve::Priority::kLow
                         : serve::Priority::kHigh;
    ++offered[static_cast<std::size_t>(pri)];
    auto adm = fleet.set->try_submit(stream[i], pri);
    if (adm.accepted) inflight.emplace_back(pri, std::move(adm.result));
    while (inflight.size() > 4096) reap_front();
  }
  while (!inflight.empty()) reap_front();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  OverloadPoint p;
  p.offered_rps = offered_rps;
  p.admitted_latency = fleet.set->aggregate_latency();
  p.admission = fleet.set->aggregate_admission();
  p.answered_rps = static_cast<double>(p.admitted_latency.count) / wall;
  const auto survival = [&](serve::Priority pri) {
    const auto i = static_cast<std::size_t>(pri);
    return offered[i] ? 1.0 - static_cast<double>(answered[i]) /
                                  static_cast<double>(offered[i])
                      : 0.0;
  };
  p.shed_rate_high = survival(serve::Priority::kHigh);
  p.shed_rate_low = survival(serve::Priority::kLow);
  return p;
}

struct DeadlinePoint {
  double offered_rps = 0;
  double answered_in_time_rps = 0;  // kOk responses over wall time
  serve::LatencySummary admitted_latency;
  serve::AdmissionCounters admission;  // parts, fleet-wide
  std::size_t offered = 0;
  std::size_t ok = 0;      // answered within deadline
  std::size_t missed = 0;  // kDeadlineExceeded: shed blown or answered late
  std::size_t shed = 0;    // kShed: refused/evicted with life left
  // Misses per ADMITTED request: of everything the door accepted, the
  // fraction that provably missed its deadline.  Door refusals are the
  // client's cue to re-route, not misses — and normalizing by offered
  // would let an arm look better just by refusing more at the door.
  // Admitted counts ride along in the table and JSON, because a lower
  // miss rate only means something at equal-or-better admission.
  double miss_rate() const {
    return admission.admitted ? static_cast<double>(missed) /
                                    static_cast<double>(admission.admitted)
                              : 0.0;
  }
};

// Paced open loop at `offered_rps` over the v2 envelope API: every request
// is a single-node envelope stamped with deadline_of(i) at submit time,
// answered through a callback CompletionQueue (statuses counted on the
// dispatcher thread — the per-request promise/future pair of the legacy
// driver is gone from this hot path, which is the v2 claim).
DeadlinePoint drive_deadline(
    Fleet& fleet, const std::vector<std::int64_t>& stream, double offered_rps,
    double low_frac,
    const std::function<std::chrono::steady_clock::duration(std::size_t)>&
        deadline_of) {
  const auto interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(1.0 / offered_rps));
  std::atomic<std::size_t> ok{0}, missed{0}, shed{0};
  serve::CompletionQueue cq([&](serve::ServeResponse&& r) {
    switch (r.status) {
      case serve::ServeStatus::kOk:
        ok.fetch_add(1, std::memory_order_relaxed);
        break;
      case serve::ServeStatus::kDeadlineExceeded:
        missed.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        shed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  const auto t0 = std::chrono::steady_clock::now();
  auto next = t0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    std::this_thread::sleep_until(next);
    next += interval;
    serve::ServeRequest req;
    req.id = i;
    req.nodes = {stream[i]};
    req.priority = static_cast<double>(i % 100) < low_frac * 100
                       ? serve::Priority::kLow
                       : serve::Priority::kHigh;
    req.deadline = serve::deadline_in(deadline_of(i));
    fleet.set->submit(std::move(req), cq);
  }
  // Every envelope delivers exactly one response; wait for the tail.
  while (cq.delivered() < stream.size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  DeadlinePoint p;
  p.offered_rps = offered_rps;
  p.offered = stream.size();
  p.ok = ok.load();
  p.missed = missed.load();
  p.shed = shed.load();
  p.answered_in_time_rps = static_cast<double>(p.ok) / wall;
  p.admitted_latency = fleet.set->aggregate_latency();
  p.admission = fleet.set->aggregate_admission();
  return p;
}

// One point of the replica-count timeline section 5 records.
struct TimelineSample {
  double t_seconds = 0;
  std::size_t replicas = 0;
  std::size_t queue_depth = 0;
  std::size_t idle_replicas = 0;  // nothing queued, nothing in service
};

struct RampPoint {
  double offered_mean_rps = 0;
  double answered_rps = 0;
  serve::LatencySummary admitted_latency;
  serve::AdmissionCounters admission;
  std::size_t max_replicas_seen = 0;
  double replica_seconds = 0;       // integral of replica count over time
  double idle_replica_seconds = 0;  // share of it spent with empty queues
  std::vector<TimelineSample> timeline;
  std::vector<serve::FleetEvent> events;
};

// Staged open-loop ramp (serve::StagedRampPacer: 0.5x / 2.5x / 0.5x of
// `baseline_rps`, equal wall time each) totalling `stream.size()` offered
// requests.  Samples the replica count + fleet queue depth every 50ms for
// the timeline and the replica-seconds integrals.
RampPoint drive_ramp(Fleet& fleet, const std::vector<std::int64_t>& stream,
                     double baseline_rps) {
  const double total_seconds =
      static_cast<double>(stream.size()) /
      (serve::StagedRampPacer::kMeanMult * baseline_rps);
  serve::StagedRampPacer pacer(baseline_rps, total_seconds);

  RampPoint p;
  p.offered_mean_rps = serve::StagedRampPacer::kMeanMult * baseline_rps;
  std::deque<std::future<std::vector<float>>> inflight;
  const auto reap_front = [&] {
    try {
      inflight.front().get();
    } catch (const serve::RejectedError&) {
    }
    inflight.pop_front();
  };
  const auto t0 = pacer.start();
  auto next_sample = t0;
  const auto sample_every = std::chrono::milliseconds(50);
  double last_sample_s = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= next_sample) {
      TimelineSample s;
      s.t_seconds = std::chrono::duration<double>(now - t0).count();
      s.replicas = fleet.set->num_replicas();
      s.queue_depth = fleet.set->total_queue_depth();
      s.idle_replicas = fleet.set->idle_replicas();
      p.max_replicas_seen = std::max(p.max_replicas_seen, s.replicas);
      const double dt = s.t_seconds - last_sample_s;
      p.replica_seconds += dt * static_cast<double>(s.replicas);
      // Idle integrates PER REPLICA: a fixed-max fleet at 0.5x load keeps
      // most dispatchers empty while one serves the hot shard — that
      // wasted provisioning is exactly what the elastic fleet avoids.
      p.idle_replica_seconds += dt * static_cast<double>(s.idle_replicas);
      last_sample_s = s.t_seconds;
      p.timeline.push_back(s);
      next_sample = now + sample_every;
    }
    if (!pacer.pace()) break;  // the trace is wall-time-bounded
    auto adm = fleet.set->try_submit(stream[i]);
    if (adm.accepted) inflight.push_back(std::move(adm.result));
    while (inflight.size() > 4096) reap_front();
  }
  while (!inflight.empty()) reap_front();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  p.admitted_latency = fleet.set->aggregate_latency();
  p.admission = fleet.set->aggregate_admission();
  p.answered_rps =
      static_cast<double>(p.admitted_latency.count) / wall;
  p.events = fleet.set->events();
  return p;
}

std::string timeline_json(const RampPoint& p) {
  // Compact [t, replicas, queued, idle_replicas] rows; the queue depth and
  // idle count ride along so the artifact shows *why* the count moved.
  std::string out = "[";
  for (std::size_t i = 0; i < p.timeline.size(); ++i) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s[%.2f,%zu,%zu,%zu]", i ? "," : "",
                  p.timeline[i].t_seconds, p.timeline[i].replicas,
                  p.timeline[i].queue_depth, p.timeline[i].idle_replicas);
    out += buf;
  }
  out += "]";
  return out;
}

std::string events_json(const RampPoint& p) {
  std::string out = "[";
  for (std::size_t i = 0; i < p.events.size(); ++i) {
    const auto& e = p.events[i];
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"t\":%.2f,\"action\":\"%s\",\"generation\":%llu,"
                  "\"replicas_after\":%zu,\"warmed_keys\":%zu,"
                  "\"first_window_hit_rate\":%.3f}",
                  i ? "," : "", e.t_seconds, e.spawned ? "spawn" : "retire",
                  static_cast<unsigned long long>(e.generation),
                  e.replicas_after, e.warmed_keys, e.first_window_hit_rate);
    out += buf;
  }
  out += "]";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }
  header("Serving: load sweep, replica scaling, admission, autoscaling");

  // Shared offline artifacts — ServingTestbed: one preprocessing pass, one
  // on-disk store, one quick_train'd checkpoint every replica loads.
  serve::TestbedConfig tc;
  tc.nodes = kNodes;
  tc.feat_dim = kFeatDim;
  tc.classes = kClasses;
  tc.hops = kHops;
  tc.create_store = true;  // fp32 store; the int8 section writes its own
  const serve::ServingTestbed tb(tc);
  const std::string dir = tb.dir();
  const std::string ckpt = tb.checkpoint();
  // The int8 deployment artifact: same trained weights through the
  // quantized checkpoint section.
  const std::string ckpt_int8 = dir + "/model_int8.ckpt";
  {
    auto trained = tb.make_model();
    serve::load_deployed_model(*trained, ckpt);
    serve::save_deployed_model(*trained, ckpt_int8, serve::Precision::kInt8);
  }

  const auto make_stream = [&](std::size_t n, std::uint64_t seed = 31) {
    return tb.stream(n, seed);
  };

  // --- 1. Offered-load sweep, cache on/off (single replica). -------------
  header("1. throughput vs offered load, cache-on vs cache-off");
  std::printf("%-10s %-8s %12s %10s %10s %10s %10s\n", "offered/s", "cache",
              "achieved/s", "p50(us)", "p99(us)", "mean(us)", "hit rate");
  const std::vector<double> loads =
      quick ? std::vector<double>{5000.0, 20000.0}
            : std::vector<double>{2000.0, 5000.0, 10000.0, 20000.0, 50000.0};
  const double seconds_per_point = quick ? 0.6 : 1.5;
  for (const double offered : loads) {
    const auto stream =
        make_stream(static_cast<std::size_t>(offered * seconds_per_point));
    for (const bool with_cache : {false, true}) {
      auto file_source = tb.file_source();
      const auto* store = &file_source->store();
      std::unique_ptr<serve::FeatureSource> source = std::move(file_source);
      if (with_cache) {
        source = std::make_unique<serve::CachedSource>(
            std::move(source),
            std::make_unique<loader::LruCache>(kCacheBudgetBytes,
                                               kFp32RowBytes));
      }
      const auto p = drive(tb, std::move(source), stream, offered, store);
      std::printf("%-10.0f %-8s %12.0f %10.0f %10.0f %10.0f %9.1f%%\n",
                  p.offered_rps, with_cache ? "lru-5%" : "off",
                  p.achieved_rps, p.latency.p50_us, p.latency.p99_us,
                  p.latency.mean_us, 100 * p.cache.hit_rate());
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "{\"section\":\"load_sweep\",\"offered_rps\":%.0f,"
                    "\"cache\":\"%s\",\"achieved_rps\":%.0f,"
                    "\"cache_hit_rate\":%.3f,\"preads\":%llu,"
                    "\"preads_uncoalesced\":%llu,\"latency\":%s}",
                    p.offered_rps, with_cache ? "lru" : "off",
                    p.achieved_rps, p.cache.hit_rate(),
                    static_cast<unsigned long long>(p.preads),
                    static_cast<unsigned long long>(
                        (with_cache ? p.cache.rows_read : stream.size()) *
                        (kHops + 1)),
                    p.latency.to_json().c_str());
      emit(buf);
    }
  }

  // --- 2. Replica x routing-policy saturation sweep. ----------------------
  header("2. replicas x routing policy (closed-loop saturation)");
  std::printf("%-9s %-15s %12s %10s %10s %10s %9s\n", "replicas", "policy",
              "achieved/s", "p50(us)", "p99(us)", "hit rate", "vs 1");
  const auto sat_stream = make_stream(quick ? 20000 : 60000);
  const std::size_t clients = 4, window = 512;
  double single_replica_rps = 0;
  double best_speedup_at4 = 0;
  for (const std::size_t replicas : {std::size_t{1}, std::size_t{2},
                                     std::size_t{4}}) {
    for (const auto policy : {serve::RoutingPolicy::kRoundRobin,
                              serve::RoutingPolicy::kLeastLoaded,
                              serve::RoutingPolicy::kCacheAffinity}) {
      if (replicas == 1 && policy != serve::RoutingPolicy::kRoundRobin) {
        continue;  // one replica routes identically under every policy
      }
      auto fleet = make_fleet(tb, tb.store_dir(), ckpt, replicas, policy);
      const auto p = drive_closed(*fleet, sat_stream, clients, window);
      fleet->set->stop();
      if (replicas == 1) single_replica_rps = p.achieved_rps;
      const double speedup =
          single_replica_rps > 0 ? p.achieved_rps / single_replica_rps : 0;
      if (replicas == 4) best_speedup_at4 = std::max(best_speedup_at4, speedup);
      std::printf("%-9zu %-15s %12.0f %10.0f %10.0f %9.1f%% %8.2fx\n",
                  replicas, serve::policy_name(policy), p.achieved_rps,
                  p.latency.p50_us, p.latency.p99_us, 100 * p.hit_rate,
                  speedup);
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "{\"section\":\"replica_sweep\",\"replicas\":%zu,"
                    "\"policy\":\"%s\",\"achieved_rps\":%.0f,"
                    "\"speedup_vs_1\":%.2f,\"cache_hit_rate\":%.3f,"
                    "\"latency\":%s}",
                    replicas, serve::policy_name(policy), p.achieved_rps,
                    speedup, p.hit_rate, p.latency.to_json().c_str());
      emit(buf);
    }
  }
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"section\":\"scaling\",\"replicas\":4,"
                  "\"best_speedup_vs_1\":%.2f,\"cores\":%u}",
                  best_speedup_at4, std::thread::hardware_concurrency());
    emit(buf);
  }

  // --- 3. Admission control at 2x single-replica saturation. --------------
  header("3. shed-budget sweep at 2x single-replica saturation");
  const double overload_rps = 2.0 * single_replica_rps;
  const double low_frac = 0.75;
  std::printf("offered = %.0f req/s (2x saturation), %d%% kLow traffic\n",
              overload_rps, static_cast<int>(low_frac * 100));
  std::printf("%-12s %12s %12s %12s %10s %10s\n", "budget", "answered/s",
              "adm p50(us)", "adm p99(us)", "shed kLow", "shed kHigh");
  const auto overload_stream = make_stream(
      static_cast<std::size_t>(overload_rps * (quick ? 0.5 : 1.0)), 37);
  for (const long budget_ms : {-1L, 2L, 10L}) {  // -1 = shedding off
    auto fleet = make_fleet(
        tb, tb.store_dir(), ckpt, 1, serve::RoutingPolicy::kRoundRobin,
        std::chrono::microseconds(budget_ms < 0 ? 0 : budget_ms * 1000));
    const auto p = drive_overload(*fleet, overload_stream, overload_rps,
                                  low_frac);
    fleet->set->stop();
    char label[32];
    if (budget_ms < 0) {
      std::snprintf(label, sizeof(label), "off");
    } else {
      std::snprintf(label, sizeof(label), "%ldms", budget_ms);
    }
    std::printf("%-12s %12.0f %12.0f %12.0f %9.1f%% %9.1f%%\n", label,
                p.answered_rps, p.admitted_latency.p50_us,
                p.admitted_latency.p99_us, 100 * p.shed_rate_low,
                100 * p.shed_rate_high);
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"section\":\"shedding\",\"shed_budget_ms\":%ld,"
                  "\"offered_rps\":%.0f,\"answered_rps\":%.0f,"
                  "\"admitted_p99_us\":%.0f,\"shed_rate_low\":%.3f,"
                  "\"shed_rate_high\":%.3f,\"admission\":%s,\"latency\":%s}",
                  budget_ms < 0 ? 0 : budget_ms, p.offered_rps,
                  p.answered_rps, p.admitted_latency.p99_us, p.shed_rate_low,
                  p.shed_rate_high, p.admission.to_json().c_str(),
                  p.admitted_latency.to_json().c_str());
    emit(buf);
  }

  // --- 4. fp32 vs int8: quantized weights + packed rows, same byte budget.
  header("4. precision: fp32 vs int8 (same cache byte budget)");
  const std::string int8_store_dir = dir + "/int8_store";
  loader::FeatureFileStore::create(int8_store_dir, tb.pre().hop_features,
                                   loader::RowCodec::kInt8);

  // Accuracy offline, on the workload's own node distribution: both
  // sessions resolve features from RAM so only the numeric path differs;
  // the quantized side deploys from the quantized checkpoint, as a fleet
  // would, so its error includes the checkpoint codec's share.
  serve::PrecisionDrift drift;
  {
    auto fp32_model = tb.make_model();
    serve::load_deployed_model(*fp32_model, ckpt);
    auto int8_model = tb.make_model();
    serve::load_deployed_model(*int8_model, ckpt_int8);
    core::quantize_int8(*int8_model);
    serve::InferenceSession ref(std::move(fp32_model), tb.memory_source());
    serve::InferenceSession quant(std::move(int8_model), tb.memory_source(),
                                  serve::Precision::kInt8);
    drift = serve::compare_precision(
        ref, quant,
        serve::first_unique(make_stream(quick ? 20000 : 60000), 2048,
                            kNodes));
  }

  std::printf("%-10s %12s %10s %10s %11s %12s %10s %10s\n", "precision",
              "achieved/s", "p99(us)", "hit rate", "cache rows", "row bytes",
              "preads", "vs fp32");
  double fp32_rps = 0, fp32_capacity = 0;
  for (const auto precision :
       {serve::Precision::kFp32, serve::Precision::kInt8}) {
    const bool int8 = precision == serve::Precision::kInt8;
    auto fleet = make_fleet(
        tb, int8 ? int8_store_dir : tb.store_dir(), int8 ? ckpt_int8 : ckpt,
        2, serve::RoutingPolicy::kCacheAffinity, std::chrono::microseconds{0},
        precision, int8 ? loader::RowCodec::kInt8 : loader::RowCodec::kFp32);
    const std::size_t store_row_bytes = fleet->stores[0]->row_bytes();
    const auto p = drive_closed(*fleet, sat_stream, clients, window);
    const std::uint64_t preads = fleet->preads();
    const std::size_t batches = fleet->set->aggregate_batches();
    fleet->set->stop();
    if (!int8) {
      fp32_rps = p.achieved_rps;
      fp32_capacity = static_cast<double>(fleet->cache_capacity_rows);
    }
    const double speedup = fp32_rps > 0 ? p.achieved_rps / fp32_rps : 1.0;
    const double capacity_ratio =
        fp32_capacity > 0
            ? static_cast<double>(fleet->cache_capacity_rows) / fp32_capacity
            : 1.0;
    std::printf("%-10s %12.0f %10.0f %9.1f%% %11zu %12zu %10llu %9.2fx\n",
                serve::precision_name(precision), p.achieved_rps,
                p.latency.p99_us, 100 * p.hit_rate,
                fleet->cache_capacity_rows, store_row_bytes,
                static_cast<unsigned long long>(preads), speedup);
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "{\"section\":\"precision\",\"precision\":\"%s\","
        "\"achieved_rps\":%.0f,\"speedup_vs_fp32\":%.2f,"
        "\"cache_hit_rate\":%.3f,\"cache_capacity_rows\":%zu,"
        "\"effective_cache_capacity_vs_fp32\":%.2f,"
        "\"store_row_bytes\":%zu,\"preads\":%llu,"
        "\"preads_per_batch\":%.2f,\"top1_agreement\":%.4f,"
        "\"max_logit_err\":%.5f,\"latency\":%s}",
        serve::precision_name(precision), p.achieved_rps, speedup,
        p.hit_rate, fleet->cache_capacity_rows, capacity_ratio,
        store_row_bytes, static_cast<unsigned long long>(preads),
        batches ? static_cast<double>(preads) / static_cast<double>(batches)
                : 0.0,
        int8 ? drift.top1_agreement : 1.0,
        int8 ? drift.max_logit_err : 0.0,
        p.latency.to_json().c_str());
    emit(buf);
  }
  std::printf("accuracy: %.2f%% top-1 agreement, max |logit err| %.4f "
              "(%zu-node sample)\n",
              100 * drift.top1_agreement, drift.max_logit_err,
              drift.sampled);

  // --- 5. Autoscaling under the staged ramp. ------------------------------
  header("5. autoscale: staged ramp 0.5x -> 2.5x -> 0.5x saturation");
  const std::size_t kMinReplicas = 1, kMaxReplicas = 4;
  serve::AutoscaleConfig as;
  as.enabled = true;
  as.min_replicas = kMinReplicas;
  as.max_replicas = kMaxReplicas;
  as.scale_up_shed = 0.10;
  as.scale_down_idle = 0.90;
  // Ramp phases are seconds long; keep the reaction path well inside one
  // phase: sustain within one stats window, cooldown shorter than a phase.
  as.sustain = std::chrono::milliseconds(300);
  as.idle_window = std::chrono::milliseconds(800);
  as.cooldown = std::chrono::milliseconds(1000);
  const auto shed_budget = std::chrono::milliseconds(2);
  // Phases must be long enough for the reaction path (sustain + spawn +
  // a stats window of its effect) to land well inside the 2.5x phase:
  // 2s phases are the floor, the full run uses 3s.
  const double ramp_seconds = quick ? 6.0 : 9.0;
  const auto ramp_stream = make_stream(
      static_cast<std::size_t>(ramp_seconds * serve::StagedRampPacer::kMeanMult *
                               single_replica_rps),
      53);
  std::printf("trace: %.0f -> %.0f -> %.0f req/s offered, %.1fs per phase\n",
              0.5 * single_replica_rps, 2.5 * single_replica_rps,
              0.5 * single_replica_rps, ramp_seconds / 3);
  std::printf("%-12s %12s %12s %10s %10s %12s %12s\n", "fleet",
              "answered/s", "adm p99(us)", "shed", "max repl", "repl-sec",
              "idle r-sec");

  struct RampConfig {
    const char* name;
    std::size_t replicas;
    bool autoscale;
  };
  double autoscale_answered = 0, fixed_min_answered = 0;
  double autoscale_idle = 0, fixed_max_idle = 0;
  for (const RampConfig rc : {RampConfig{"fixed-min(1)", kMinReplicas, false},
                              RampConfig{"fixed-max(4)", kMaxReplicas, false},
                              RampConfig{"autoscale", kMinReplicas, true}}) {
    serve::AutoscaleConfig cfg = as;
    cfg.enabled = rc.autoscale;
    auto fleet = make_fleet(tb, tb.store_dir(), ckpt, rc.replicas,
                            serve::RoutingPolicy::kCacheAffinity,
                            std::chrono::duration_cast<std::chrono::microseconds>(shed_budget),
                            serve::Precision::kFp32, loader::RowCodec::kFp32,
                            cfg);
    const auto p = drive_ramp(*fleet, ramp_stream, single_replica_rps);
    fleet->set->stop();
    if (rc.autoscale) {
      autoscale_answered = p.answered_rps;
      autoscale_idle = p.idle_replica_seconds;
    } else if (rc.replicas == kMinReplicas) {
      fixed_min_answered = p.answered_rps;
    } else {
      fixed_max_idle = p.idle_replica_seconds;
    }
    std::printf("%-12s %12.0f %12.0f %9.1f%% %10zu %12.1f %12.1f\n",
                rc.name, p.answered_rps, p.admitted_latency.p99_us,
                100 * p.admission.shed_rate(), p.max_replicas_seen,
                p.replica_seconds, p.idle_replica_seconds);
    // Everything the fleet simulator needs to re-run this arm offline
    // rides in the record: the measured service-rate anchors (baseline
    // rps, mean batch, dispatch gauge, hit rate), the workload shape
    // (nodes, skew, cache capacity), the machine (cores) and the full
    // policy constants — so fleetsim's calibration gate is a pure function
    // of BENCH_serving.json, with nothing re-derived from this source.
    const serve::StageGauges ramp_stages = fleet->set->aggregate_stages();
    std::string buf(2048 + 32 * p.timeline.size() + 224 * p.events.size(),
                    '\0');
    const int n = std::snprintf(
        buf.data(), buf.size(),
        "{\"section\":\"autoscale_trace\",\"fleet\":\"%s\","
        "\"autoscale\":%s,\"min_replicas\":%zu,\"max_replicas\":%zu,"
        "\"offered_mean_rps\":%.0f,\"answered_rps\":%.0f,"
        "\"admitted_p99_us\":%.0f,\"shed_rate\":%.3f,"
        "\"max_replicas_seen\":%zu,\"replica_seconds\":%.1f,"
        "\"idle_replica_seconds\":%.1f,\"admission\":%s,"
        "\"single_replica_rps\":%.0f,\"ramp_seconds\":%.1f,"
        "\"mean_batch\":%.2f,\"cache_hit_rate\":%.4f,"
        "\"cache_capacity_rows\":%zu,\"nodes\":%zu,\"skew\":%.2f,"
        "\"cores\":%u,\"max_batch_size\":%zu,\"max_delay_us\":%lld,"
        "\"shed_budget_ms\":%lld,\"stats_window_ms\":500,"
        "\"scale_up_shed\":%.2f,\"scale_down_idle\":%.2f,"
        "\"sustain_ms\":%lld,\"idle_window_ms\":%lld,\"cooldown_ms\":%lld,"
        "\"tick_ms\":%lld,\"warm_keys\":512,"
        "\"stages\":%s,\"events\":%s,\"timeline\":%s}",
        rc.name, rc.autoscale ? "true" : "false",
        rc.autoscale ? kMinReplicas : rc.replicas,
        rc.autoscale ? kMaxReplicas : rc.replicas, p.offered_mean_rps,
        p.answered_rps, p.admitted_latency.p99_us,
        p.admission.shed_rate(), p.max_replicas_seen, p.replica_seconds,
        p.idle_replica_seconds, p.admission.to_json().c_str(),
        single_replica_rps, ramp_seconds,
        fleet->set->aggregate_mean_batch_size(), fleet->hit_rate(),
        fleet->cache_capacity_rows, kNodes, tb.config().skew,
        std::thread::hardware_concurrency(),
        static_cast<std::size_t>(128),
        static_cast<long long>(500),
        static_cast<long long>(shed_budget.count()),
        as.scale_up_shed, as.scale_down_idle,
        static_cast<long long>(as.sustain.count()),
        static_cast<long long>(as.idle_window.count()),
        static_cast<long long>(as.cooldown.count()),
        static_cast<long long>(
            std::chrono::duration_cast<std::chrono::milliseconds>(as.tick)
                .count()),
        ramp_stages.to_json().c_str(), events_json(p).c_str(),
        timeline_json(p).c_str());
    buf.resize(n > 0 ? static_cast<std::size_t>(n) : 0);
    emit(buf);
  }
  std::printf("autoscale vs fixed-min answered: %.2fx; autoscale vs "
              "fixed-max idle replica-seconds: %.2fx\n",
              fixed_min_answered > 0 ? autoscale_answered / fixed_min_answered
                                     : 0.0,
              fixed_max_idle > 0 ? autoscale_idle / fixed_max_idle : 0.0);

  // --- 6. Deadline sweep at 2x saturation: slack vs FIFO eviction. --------
  header("6. deadlines at 2x saturation: slack-ordered vs FIFO eviction");
  // Both arms run the same 10ms shed budget and the same offered stream;
  // the FIFO arm is the PR-2 baseline (deadline_aware=false: head-of-queue
  // eviction, blown requests computed anyway and counted late), the slack
  // arm orders eviction by effective deadline and sheds blown requests
  // BEFORE compute.  The claim under test: at equal admitted throughput,
  // acting on deadlines lowers the miss rate — the compute saved on doomed
  // requests answers viable ones inside their budget instead.
  const double dl_offered = 2.0 * single_replica_rps;
  const double dl_low_frac = 0.75;
  // The deadline is machine-relative with a 10ms floor: on a Release box
  // one 128-row batch serves in ~1ms so the floor binds (the headline
  // 10ms number), while on a sanitizer leg — where a single batch can
  // take 25ms — a fixed 10ms would be below ONE service time and every
  // admitted request would miss under either policy, measuring nothing.
  const double batch_service_ms = 1000.0 * 128.0 / single_replica_rps;
  const long dl_deadline_ms =
      std::max(10L, static_cast<long>(8.0 * batch_service_ms));
  const auto dl_deadline = std::chrono::milliseconds(dl_deadline_ms);
  const auto dl_budget = dl_deadline;  // budget = deadline, both arms
  const auto dl_stream = make_stream(
      static_cast<std::size_t>(dl_offered * (quick ? 0.5 : 1.0)), 41);
  std::printf("offered = %.0f req/s (2x saturation), %d%% kLow, "
              "deadline = shed budget = %ldms (10ms floor, scaled to this "
              "machine's %.1fms batch service time)\n",
              dl_offered, static_cast<int>(dl_low_frac * 100),
              dl_deadline_ms, batch_service_ms);
  std::printf("%-10s %-12s %12s %12s %10s %10s %10s\n", "eviction",
              "deadline", "in-time/s", "adm p99(us)", "miss rate", "shed",
              "admitted");
  struct EvictionArm {
    const char* name;
    bool aware;
  };
  // [0] = uniform deadline, [1] = mixed.  The gate reads the MIXED row:
  // under a uniform deadline slack order equals FIFO order (identical
  // effective deadlines), so that row isolates the dispatch-time shed —
  // whose win is goodput and admitted p99, not miss-per-admitted (by
  // shedding blown work early it keeps the head-of-line fresh, admits
  // MORE, and the marginal admissions land near the deadline edge).
  // Heterogeneous deadlines are where eviction ORDER matters, and there
  // the aware arm must win the miss rate at equal-or-better admission.
  double fifo_miss[2] = {0, 0}, slack_miss[2] = {0, 0};
  std::size_t fifo_admitted[2] = {0, 0}, slack_admitted[2] = {0, 0};
  double fifo_in_time[2] = {0, 0}, slack_in_time[2] = {0, 0};
  double fifo_p99[2] = {0, 0}, slack_p99[2] = {0, 0};
  for (const bool mixed : {false, true}) {
    // A uniform deadline isolates the dispatch-time shed; the mixed
    // 1x/5x row adds heterogeneous slack, where FIFO eviction kills
    // requests that could still make it while keeping doomed ones.
    const auto deadline_of =
        [mixed, dl_deadline](std::size_t i)
        -> std::chrono::steady_clock::duration {
      if (mixed && i % 2 == 1) return 5 * dl_deadline;
      return dl_deadline;
    };
    char deadline_label[32];
    if (mixed) {
      std::snprintf(deadline_label, sizeof(deadline_label), "%ld/%ldms",
                    dl_deadline_ms, 5 * dl_deadline_ms);
    } else {
      std::snprintf(deadline_label, sizeof(deadline_label), "%ldms",
                    dl_deadline_ms);
    }
    for (const EvictionArm arm :
         {EvictionArm{"fifo", false}, EvictionArm{"slack", true}}) {
      auto fleet = make_fleet(
          tb, tb.store_dir(), ckpt, 1, serve::RoutingPolicy::kRoundRobin,
          std::chrono::duration_cast<std::chrono::microseconds>(dl_budget),
          serve::Precision::kFp32, loader::RowCodec::kFp32, {}, arm.aware);
      const auto p =
          drive_deadline(*fleet, dl_stream, dl_offered, dl_low_frac,
                         deadline_of);
      fleet->set->stop();
      std::printf("%-10s %-12s %12.0f %12.0f %9.1f%% %9.1f%% %10zu\n",
                  arm.name, deadline_label, p.answered_in_time_rps,
                  p.admitted_latency.p99_us, 100 * p.miss_rate(),
                  100 * p.admission.shed_rate(), p.admission.admitted);
      const std::size_t row = mixed ? 1 : 0;
      (arm.aware ? slack_miss : fifo_miss)[row] = p.miss_rate();
      (arm.aware ? slack_admitted : fifo_admitted)[row] =
          p.admission.admitted;
      (arm.aware ? slack_in_time : fifo_in_time)[row] =
          p.answered_in_time_rps;
      (arm.aware ? slack_p99 : fifo_p99)[row] = p.admitted_latency.p99_us;
      char buf[640];
      std::snprintf(
          buf, sizeof(buf),
          "{\"section\":\"deadline\",\"eviction\":\"%s\","
          "\"deadline\":\"%s\",\"deadline_ms\":%ld,\"offered_rps\":%.0f,"
          "\"answered_in_time_rps\":%.0f,\"admitted_p99_us\":%.0f,"
          "\"deadline_miss_rate\":%.4f,\"ok\":%zu,\"missed\":%zu,"
          "\"shed\":%zu,\"admission\":%s,\"latency\":%s}",
          arm.name, deadline_label, dl_deadline_ms, p.offered_rps,
          p.answered_in_time_rps, p.admitted_latency.p99_us, p.miss_rate(),
          p.ok, p.missed, p.shed, p.admission.to_json().c_str(),
          p.admitted_latency.to_json().c_str());
      emit(buf);
    }
  }
  // The machine-relative deadline gate: both arms measured on THIS
  // machine, same stream, same budget.  Gated on the mixed row (where
  // eviction order differs): miss-per-admitted must not regress AND
  // admitted throughput must hold within 10% — a miss rate bought by
  // refusing work at the door would not count.  The uniform row's claim
  // is goodput: dispatch-time shed answers more requests in time at a
  // lower admitted p99 (reported, not gated — its marginal admissions sit
  // at the deadline edge by construction).
  const bool deadline_gate_ok =
      slack_miss[1] <= fifo_miss[1] &&
      static_cast<double>(slack_admitted[1]) >=
          0.9 * static_cast<double>(fifo_admitted[1]);
  std::printf("deadline gate (mixed %ld/%ldms): slack miss %.1f%%/admitted "
              "vs fifo %.1f%% at %zu vs %zu admitted -> %s\n",
              dl_deadline_ms, 5 * dl_deadline_ms, 100 * slack_miss[1],
              100 * fifo_miss[1], slack_admitted[1], fifo_admitted[1],
              deadline_gate_ok ? "OK" : "REGRESSION");
  std::printf("dispatch-shed payoff (%ldms uniform): %.0f vs %.0f in-time "
              "req/s (%.2fx), adm p99 %.0f vs %.0f us\n",
              dl_deadline_ms, slack_in_time[0], fifo_in_time[0],
              fifo_in_time[0] > 0 ? slack_in_time[0] / fifo_in_time[0] : 0.0,
              slack_p99[0], fifo_p99[0]);
  {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"section\":\"deadline_gate\",\"deadline_ms\":%ld,"
        "\"fifo_miss_rate_mixed\":%.4f,\"slack_miss_rate_mixed\":%.4f,"
        "\"fifo_admitted_mixed\":%zu,\"slack_admitted_mixed\":%zu,"
        "\"fifo_in_time_rps_uniform\":%.0f,\"slack_in_time_rps_uniform\":%.0f,"
        "\"fifo_p99_uniform_us\":%.0f,\"slack_p99_uniform_us\":%.0f,"
        "\"ok\":%s}",
        dl_deadline_ms, fifo_miss[1], slack_miss[1], fifo_admitted[1],
        slack_admitted[1], fifo_in_time[0], slack_in_time[0], fifo_p99[0],
        slack_p99[0], deadline_gate_ok ? "true" : "false");
    emit(buf);
  }

  // --- 7. Cross-process serving overhead (src/rpc/). ----------------------
  header("7. in-process vs cross-process fleet (2 replicas, closed loop)");
  {
    // Same front (FleetManager), same closed-loop clients, same stream,
    // same file+LRU serving stack per replica.  The in-process arm batches
    // on threads in this process; the cross-process arm spawns two
    // replica_server_cli children next to this binary and answers over
    // Unix sockets in ppgnn-wire.  The ratio between the two rates is the
    // whole RPC tax; with the pooled writev fast path the deploy gate is
    // <= 1.5x (target 1.4x), and the record carries the transport counters
    // that justify it: frames coalesced per writev, bytes per syscall,
    // pool hit rate, allocations per frame.
    // Not shrunk under --quick: this section's record is GATED, and on a
    // small box the 20k-request window's pass-to-pass variance (the
    // in-process arm alone swings tens of percent) is wider than the
    // 1.4x-vs-1.5x margin being asserted.  The 60k window is the shortest
    // that measures the tax instead of the scheduler.
    const auto xp_stream = make_stream(60000, 43);
    // Discarded steady-state warmup, identical for both arms.  The gate
    // compares serving rates, not cold starts: by section 7 this process
    // has six sections of warm page cache and allocator arenas behind it,
    // while the cross arm's children are freshly exec'd (checkpoint load,
    // cold LRU) — timing from the first request hands the in-process arm
    // a head start that reads as transport tax.  A short untimed drive on
    // the same fleet instance warms both arms to the state the ratio is
    // meant to price.  Sized to cycle the whole key space once so the LRU
    // reaches its steady hit rate, not a half-warm transient.
    const auto warm_stream = make_stream(20000, 44);

    // Each arm runs three times and keeps its fastest pass.  The gate is a
    // RATIO of two absolute rates measured back to back on a shared host,
    // so a scheduler hiccup landing on any single pass moves the ratio by
    // more than the transport tax being measured; best-of-N strips that
    // worst-case interference from both sides symmetrically.
    SaturationPoint in_proc;
    for (int pass = 0; pass < 3; ++pass) {
      auto local = make_fleet(tb, tb.store_dir(), ckpt, 2,
                              serve::RoutingPolicy::kRoundRobin);
      drive_closed(*local, warm_stream, clients, window);
      const auto p = drive_closed(*local, xp_stream, clients, window);
      local->set->stop();
      if (p.achieved_rps > in_proc.achieved_rps) in_proc = p;
    }

    // The children rebuild the same stack server-side: file store plus an
    // LRU sized to this bench's byte budget (make_fleet's kCacheBudgetBytes)
    // and the same micro-batcher shape make_fleet configures.
    rpc::ReplicaSpawnConfig scfg;
    scfg.socket_dir = dir;
    scfg.log_path = dir + "/bench-replica.log";
    scfg.server_args = {
        "--checkpoint=" + ckpt,
        "--store=" + tb.store_dir(),
        "--nodes=" + std::to_string(kNodes),
        "--model=" + tc.model,
        "--hops=" + std::to_string(kHops),
        "--feat-dim=" + std::to_string(kFeatDim),
        "--hidden=" + std::to_string(tc.hidden),
        "--classes=" + std::to_string(kClasses),
        "--max-batch=128",
        "--max-delay-us=500",
        "--cache=lru",
        "--cache-mb=" +
            std::to_string(static_cast<double>(kCacheBudgetBytes) /
                           (1024.0 * 1024.0)),
    };
    serve::FleetConfig fc;
    fc.batch.max_batch_size = 128;
    fc.batch.max_delay = std::chrono::microseconds(500);
    SaturationPoint cross;
    rpc::RpcStats xp_rpc;  // transport counters from the winning pass
    for (int pass = 0; pass < 3; ++pass) {
      serve::FleetManager remote(
          [&scfg](std::size_t ordinal) {
            std::string err;
            auto rep = rpc::spawn_replica_process(scfg, ordinal, &err);
            if (!rep) {
              std::fprintf(stderr, "spawn replica %zu failed: %s\n", ordinal,
                           err.c_str());
            }
            return rep;
          },
          2, fc);
      drive_closed(remote, warm_stream, clients, window);
      const auto p = drive_closed(remote, xp_stream, clients, window);
      const rpc::RpcStats st = remote.aggregate_rpc_stats();
      remote.stop();
      if (p.achieved_rps > cross.achieved_rps) {
        cross = p;
        xp_rpc = st;
      }
    }

    const double ratio =
        cross.achieved_rps > 0 ? in_proc.achieved_rps / cross.achieved_rps
                               : 0.0;
    const bool within_gate = ratio > 0 && ratio <= 1.5;
    std::printf("%-14s %12s %10s %10s\n", "deployment", "achieved/s",
                "p50(us)", "p99(us)");
    std::printf("%-14s %12.0f %10.0f %10.0f\n", "in-process",
                in_proc.achieved_rps, in_proc.latency.p50_us,
                in_proc.latency.p99_us);
    std::printf("%-14s %12.0f %10.0f %10.0f\n", "cross-process",
                cross.achieved_rps, cross.latency.p50_us,
                cross.latency.p99_us);
    std::printf("cross-process gate: %.2fx of in-process throughput "
                "(<= 1.5x gated, 1.4x target) -> %s\n",
                ratio, within_gate ? "OK" : "REGRESSION");
    std::printf("rpc fast path: frames=%llu writev=%llu frames/writev=%.2f "
                "bytes/syscall=%.0f pool-hit=%.1f%% allocs/frame=%.4f\n",
                static_cast<unsigned long long>(xp_rpc.frames_sent),
                static_cast<unsigned long long>(xp_rpc.writev_calls),
                xp_rpc.frames_per_writev(), xp_rpc.bytes_per_syscall(),
                100 * xp_rpc.pool_hit_rate(), xp_rpc.allocs_per_frame());
    char buf[768];
    std::snprintf(buf, sizeof(buf),
                  "{\"section\":\"cross_process\",\"replicas\":2,"
                  "\"in_process_rps\":%.0f,\"cross_process_rps\":%.0f,"
                  "\"overhead_ratio\":%.2f,\"ok\":%s,"
                  "\"frames_per_writev\":%.2f,\"bytes_per_syscall\":%.0f,"
                  "\"pool_hit_rate\":%.4f,\"allocs_per_frame\":%.4f,"
                  "\"in_process_latency\":%s,\"cross_process_latency\":%s}",
                  in_proc.achieved_rps, cross.achieved_rps, ratio,
                  within_gate ? "true" : "false",
                  xp_rpc.frames_per_writev(), xp_rpc.bytes_per_syscall(),
                  xp_rpc.pool_hit_rate(), xp_rpc.allocs_per_frame(),
                  in_proc.latency.to_json().c_str(),
                  cross.latency.to_json().c_str());
    emit(buf);
  }

  // --- 8. kernel ladder: per-ISA GEMM table + end-to-end serving. --------
  header("8. kernel ladder: INT8 GEMM arms (PPGNN_ISA forces any arm)");
  {
    // The arm an unforced int8 deployment on this host dispatches to —
    // recorded per row as "active" so the fleetsim calibration knows
    // which table entry prices the serving runs above.
    const Isa dispatched_arm = active_isa();

    // Micro GEMM on the serving testbed's first Linear at a saturated
    // micro-batch: m=255 requests x (hops+1)*feat -> hidden.  This is the
    // acceptance shape (AVX2 >= 1.5x SSE2) and the rate CpuGemmSpec::
    // measured() feeds the capacity planner.
    const std::size_t gm = 255, gk = (kHops + 1) * kFeatDim, gn = 32;
    Rng grng(97);
    const Tensor gx = Tensor::normal({gm, gk}, grng, 0.1f, 1.f);
    const Tensor gw = Tensor::normal({gn, gk}, grng, 0.f, 1.f);
    const serve::Precision int8 = serve::Precision::kInt8;
    const auto ladder_stream = make_stream(quick ? 15000 : 40000, 47);

    std::printf("%-12s %10s %10s %12s %12s %12s %7s\n", "isa", "supported",
                "gops", "vs sse2", "serve rps", "vs sse2", "active");
    double sse2_gops = 0, sse2_rps = 0;
    for (std::size_t i = 0; i < kNumIsa; ++i) {
      const Isa arm = static_cast<Isa>(i);
      if (!isa_supported(arm)) {
        std::printf("%-12s %10s\n", isa_name(arm), "no");
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "{\"section\":\"kernel_ladder\",\"isa\":\"%s\","
                      "\"supported\":false,\"active\":false}",
                      isa_name(arm));
        emit(buf);
        continue;
      }

      // GEMM rate: quantize for this arm, time repeated dispatched calls.
      const QuantizedActs gxq = quantize_acts_per_row(gx);
      const QuantizedMatrix gwq = quantize_per_row(gw, arm);
      Tensor gc;
      gemm_s8_nt(gxq, gwq, gc);  // warm: packs, faults, pool spin-up
      const int reps = quick ? 200 : 800;
      const auto g0 = std::chrono::steady_clock::now();
      for (int r = 0; r < reps; ++r) gemm_s8_nt(gxq, gwq, gc);
      const double gsec =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        g0)
              .count();
      const double gops = 2.0 * static_cast<double>(gm) * gk * gn * reps /
                          gsec / 1e9;

      // End-to-end: the same int8 closed-loop drive as section 4, with
      // the override forcing every quantize in the fleet onto this arm.
      set_isa_override(arm);
      auto fleet =
          make_fleet(tb, int8_store_dir, ckpt_int8, 2,
                     serve::RoutingPolicy::kCacheAffinity,
                     std::chrono::microseconds{0}, int8,
                     loader::RowCodec::kInt8);
      const auto p = drive_closed(*fleet, ladder_stream, clients, window);
      fleet->set->stop();
      clear_isa_override();

      if (arm == Isa::kSse2) {
        sse2_gops = gops;
        sse2_rps = p.achieved_rps;
      }
      const double gops_vs = sse2_gops > 0 ? gops / sse2_gops : 0.0;
      const double rps_vs = sse2_rps > 0 ? p.achieved_rps / sse2_rps : 0.0;
      const bool active = arm == dispatched_arm;
      std::printf("%-12s %10s %10.1f %11.2fx %12.0f %11.2fx %7s\n",
                  isa_name(arm), "yes", gops, gops_vs, p.achieved_rps,
                  rps_vs, active ? "*" : "");
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "{\"section\":\"kernel_ladder\",\"isa\":\"%s\","
                    "\"supported\":true,\"gemm_m\":%zu,\"gemm_k\":%zu,"
                    "\"gemm_n\":%zu,\"gemm_gops\":%.2f,"
                    "\"gemm_speedup_vs_sse2\":%.2f,\"serve_rps\":%.0f,"
                    "\"serve_speedup_vs_sse2\":%.2f,\"cache_hit_rate\":%.3f,"
                    "\"active\":%s}",
                    isa_name(arm), gm, gk, gn, gops, gops_vs,
                    p.achieved_rps, rps_vs, p.hit_rate,
                    active ? "true" : "false");
      emit(buf);
    }
    std::printf("dispatched arm on this host: %s\n",
                isa_name(dispatched_arm));
  }

  // --- 9. tenant isolation: a 10x-quota aggressor vs its neighbors. ------
  header("9. tenant isolation (src/tenancy/): 10x-quota aggressor");
  {
    // Four equal contracts on one replica, each entitled to 1/8 of this
    // machine's single-replica saturation (so all four within quota sit
    // far from overload — isolation is measured, not masked by shedding).
    // Arm A (fair): tenant 0 offers exactly its quota, tenants 1-3 offer
    // half theirs.  Arm B (storm): tenant 0 blasts 10x its quota while
    // tenants 1-3 keep arm A's rates.  The bucket clips the blast back to
    // the contracted rate, so both arms carry the same ADMITTED workload
    // (modulo the one-time burst, kept small below) — the comparison
    // isolates enforcement, not the load increase tenant 0's contract
    // already entitles it to.  The gated claim: the token buckets absorb
    // the blast at the fleet front, so no victim is ever quota-refused
    // and no victim's admitted p99 moves by more than 10% — and the
    // aggressor IS refused, proving the gate was actually exercised
    // rather than trivially idle.
    const double quota = single_replica_rps / 8.0;
    const double victim_rps = 0.5 * quota;
    const double iso_seconds = quick ? 2.0 : 4.0;
    // Each arm's first second is driven but discarded: it warms the
    // fresh fleet's row cache so the measured window compares steady
    // states (see drive_tenant_mix).
    const double iso_warmup = 1.0;
    const auto iso_stream = make_stream(20000, 53);

    tenancy::TenantRegistry registry;
    for (std::uint32_t t = 0; t < 4; ++t) {
      tenancy::TenantContract c;
      c.rate_per_s = quota;
      // A quarter-second of quota: deep enough that pacing jitter never
      // refuses an in-contract tenant, shallow enough that the storm
      // arm's one-time burst admission stays marginal next to rate x
      // seconds (keeping the two arms' admitted workloads comparable).
      c.burst = quota / 4.0;
      registry.set_contract(t, c);
    }

    const auto row_of = [](const std::vector<serve::TenantStat>& rows,
                           std::uint32_t t) -> const serve::TenantStat* {
      for (const auto& r : rows) {
        if (r.tenant == t) return &r;
      }
      return nullptr;
    };
    const auto run_arm = [&](bool storm) {
      auto fleet = make_fleet(tb, tb.store_dir(), ckpt, 1,
                              serve::RoutingPolicy::kRoundRobin,
                              std::chrono::microseconds{0},
                              serve::Precision::kFp32,
                              loader::RowCodec::kFp32, {}, true, &registry);
      std::vector<TenantLoad> loads;
      for (std::uint32_t t = 0; t < 4; ++t) {
        const double rps =
            t == 0 ? (storm ? 10.0 : 1.0) * quota : victim_rps;
        loads.push_back({t, rps});
      }
      auto rows = drive_tenant_mix(*fleet->set, iso_stream, loads,
                                   iso_seconds, iso_warmup);
      fleet->set->stop();
      return rows;
    };

    std::printf("contracts: 4 tenants x %.0f parts/s quota; victims offer "
                "%.0f/s, tenant 0 offers %.0f/s fair vs %.0f/s storm "
                "for %.0fs\n",
                quota, victim_rps, quota, 10.0 * quota, iso_seconds);
    std::vector<serve::TenantStat> fair, storm;
    double worst_ratio = 0;
    std::size_t victim_refused = 0, aggressor_refused = 0;
    bool iso_ok = false;
    // The ratio compares two back-to-back p99 measurements on a shared
    // host; retries strip transient scheduler noise, same policy as the
    // serve_cli gates (a real leak fails every time).
    for (int attempt = 0; attempt < 3 && !iso_ok; ++attempt) {
      if (attempt > 0) {
        std::printf("isolation gate missed; retrying once (loaded-machine "
                    "noise gets one second chance)\n");
      }
      fair = run_arm(false);
      storm = run_arm(true);
      worst_ratio = 0;
      victim_refused = 0;
      for (std::uint32_t t = 1; t < 4; ++t) {
        const auto* f = row_of(fair, t);
        const auto* s = row_of(storm, t);
        if (!f || !s || f->p99_us <= 0) {
          worst_ratio = 1e9;  // a missing victim row can never pass
          continue;
        }
        worst_ratio = std::max(worst_ratio, s->p99_us / f->p99_us);
        victim_refused += s->quota_refused;
      }
      const auto* ag = row_of(storm, 0);
      aggressor_refused = ag ? ag->quota_refused : 0;
      iso_ok = worst_ratio <= 1.10 && victim_refused == 0 &&
               aggressor_refused > 0;
    }

    std::printf("%-8s %-6s %10s %10s %10s %10s\n", "arm", "tenant",
                "admitted", "quota-ref", "p50(us)", "p99(us)");
    for (const auto* rows : {&fair, &storm}) {
      for (const auto& t : *rows) {
        std::printf("%-8s %-6u %10zu %10zu %10.0f %10.0f\n",
                    rows == &fair ? "fair" : "storm", t.tenant, t.admitted,
                    t.quota_refused, t.p50_us, t.p99_us);
      }
    }
    std::printf("isolation gate: worst victim p99 ratio %.3f (<= 1.10), "
                "victim quota refusals %zu (== 0), aggressor refused %zu "
                "(> 0) -> %s\n",
                worst_ratio, victim_refused, aggressor_refused,
                iso_ok ? "OK" : "REGRESSION");
    std::string rows_json = "[";
    for (std::size_t i = 0; i < storm.size(); ++i) {
      if (i) rows_json += ",";
      rows_json += storm[i].to_json();
    }
    rows_json += "]";
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"section\":\"tenant_isolation\",\"tenants\":4,"
                  "\"quota_rps\":%.0f,\"aggressor_mult\":10,"
                  "\"victim_p99_ratio\":%.3f,\"victim_quota_refused\":%zu,"
                  "\"aggressor_quota_refused\":%zu,\"ok\":%s,"
                  "\"storm\":",
                  quota, worst_ratio, victim_refused, aggressor_refused,
                  iso_ok ? "true" : "false");
    emit(std::string(buf) + rows_json + "}");
  }

  std::printf(
      "\nExpected shape: (1) the cache-off p99 departs first as offered "
      "load approaches the store's service rate while ~60%% LRU hit rates "
      "buy the cached config headroom; (2) throughput scales with replicas "
      "up to the core count, and cache_affinity holds the highest hit rate "
      "because each replica's cache specializes on its key-space shard; "
      "(3) with a shed budget the admitted p99 stays near the budget at 2x "
      "overload — the excess becomes kLow shed rate, not queue delay; "
      "(4) the int8 codec's ~3.6x cache-capacity multiplier lifts the hit "
      "rate at the same byte budget, cutting preads and raising throughput, "
      "while top-1 agreement stays >= 99%%; (5) the elastic fleet rides the "
      "ramp — answering like fixed-max during the 2.5x phase (beating "
      "fixed-min on answered_rps) while idling like fixed-min through the "
      "0.5x phases (beating fixed-max on idle replica-seconds), with the "
      "spawn/retire timeline in the JSON; (6) shedding blown requests "
      "before compute returns their batch slots to requests that can "
      "still make it — more in-time answers at a lower admitted p99 under "
      "a uniform deadline, and under mixed deadlines slack-ordered "
      "eviction additionally beats FIFO's miss-per-admitted rate at "
      "equal-or-better admission; (7) the socket hop prices in at well "
      "under 2x — micro-batching amortizes the wire codec the same way it "
      "amortizes store reads, so the cross-process fleet keeps most of the "
      "in-process rate; (8) GEMM throughput climbs the kernel ladder — "
      "each arm at least ~1.5x the rung below on the serving shape, with "
      "every arm bit-identical to scalar — while the end-to-end gain "
      "compresses toward the store/cache share of the request; (9) the "
      "token buckets absorb a 10x-quota aggressor at the fleet front — "
      "its neighbors keep their admitted p99 within 10%% and are never "
      "quota-refused, while the aggressor's excess answers "
      "kQuotaExceeded without touching a replica.\n");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << "[\n";
    for (std::size_t i = 0; i < g_records.size(); ++i) {
      out << "  " << g_records[i] << (i + 1 < g_records.size() ? "," : "")
          << "\n";
    }
    out << "]\n";
    std::printf("wrote %zu records to %s\n", g_records.size(),
                json_path.c_str());
  }
  return 0;
}
