// Serving extension — throughput vs. offered load, cache-on vs. cache-off.
//
// The training-side benches measure epoch time; a serving tier is measured
// by the latency distribution it holds while absorbing an offered request
// rate.  This bench drives the file-backed deployment (features on storage,
// the case where caching matters) with a paced open-loop Zipf client at
// increasing offered loads and reports achieved throughput plus p50/p99
// latency, with and without a 5%-capacity LRU row cache in front of the
// store.
//
// Expected shape: at low load both configs hold sub-millisecond p50 and the
// curves overlap (the batcher's max_delay floor dominates); as offered load
// approaches the no-cache service capacity its p99 climbs first and its
// achieved rate saturates below the offered rate — the cache's extra
// headroom is the Section-4.1 inversion made visible: the same LRU policy
// that bought nothing on the training stream (bench_ablation_caching)
// extends the load a serving tier survives.  (On a box whose page cache
// absorbs the store's preads, the hit-rate column still shows the
// inversion even when the latency curves stay close.)
// Each row also prints as one JSON line ("json: {...}") for machines.
#include "common.h"
#include "loader/cache.h"
#include "loader/storage.h"
#include "serve/feature_source.h"
#include "serve/inference_session.h"
#include "serve/micro_batcher.h"
#include "serve/server_stats.h"
#include "serve/workload.h"

#include <unistd.h>

#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <thread>

using namespace ppgnn;
using namespace ppgnn::bench;

namespace {

constexpr std::size_t kNodes = 20000;
constexpr std::size_t kFeatDim = 32;
constexpr std::size_t kClasses = 16;
constexpr std::size_t kHops = 2;

struct LoadPoint {
  double offered_rps = 0;
  double achieved_rps = 0;
  serve::LatencySummary latency;
  serve::FeatureCacheStats cache;
};

std::unique_ptr<core::PpModel> make_model() {
  Rng rng(7);
  core::SignConfig cfg;
  cfg.feat_dim = kFeatDim;
  cfg.hops = kHops;
  cfg.hidden = 32;
  cfg.classes = kClasses;
  cfg.mlp_layers = 2;
  cfg.dropout = 0.f;
  return std::make_unique<core::Sign>(cfg, rng);
}

// Drives `stream` at `offered_rps` through a fresh session over `source`.
// Bounded open loop: requests are submitted on schedule while fewer than
// 4096 are in flight (plus the batcher's own admission bound), so moderate
// overload shows up as queue latency; past the backpressure bound the
// driver throttles like a real client feeling admission control, and the
// achieved-rps column dropping below offered-rps is the overload signal.
LoadPoint drive(std::unique_ptr<serve::FeatureSource> source,
                const std::vector<std::int64_t>& stream, double offered_rps) {
  auto* cached = dynamic_cast<serve::CachedSource*>(source.get());
  serve::InferenceSession session(make_model(), std::move(source));
  serve::MicroBatchConfig mc;
  mc.max_batch_size = 128;
  mc.max_delay = std::chrono::microseconds(500);
  serve::ServerStats stats;
  serve::MicroBatcher batcher(session, mc, &stats);

  const auto interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(1.0 / offered_rps));
  std::deque<std::future<std::vector<float>>> inflight;
  const auto t0 = std::chrono::steady_clock::now();
  auto next = t0;
  for (const auto node : stream) {
    std::this_thread::sleep_until(next);
    next += interval;
    inflight.push_back(batcher.submit(node));
    // Reap settled futures opportunistically to bound memory.
    while (inflight.size() > 4096) {
      inflight.front().get();
      inflight.pop_front();
    }
  }
  while (!inflight.empty()) {
    inflight.front().get();
    inflight.pop_front();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  LoadPoint p;
  p.offered_rps = offered_rps;
  p.achieved_rps = static_cast<double>(stream.size()) / wall;
  p.latency = stats.summary();
  if (cached) p.cache = cached->stats();
  return p;
}

}  // namespace

int main() {
  header("Serving: throughput vs offered load, cache-on vs cache-off");

  // Shared offline artifacts: one preprocessing pass, one on-disk store.
  graph::SbmConfig sc;
  sc.num_nodes = kNodes;
  sc.num_classes = kClasses;
  sc.avg_degree = 10.0;
  sc.degree_power = 1.6;
  sc.seed = 11;
  const auto sbm = graph::generate_sbm(sc);
  graph::FeatureConfig fc;
  fc.dim = kFeatDim;
  const Tensor x = graph::generate_features(sbm.labels, kClasses, fc);
  core::PrecomputeConfig pc;
  pc.hops = kHops;
  const auto pre = core::precompute(sbm.graph, x, pc);
  char dir_tmpl[] = "/tmp/bench_serving_store.XXXXXX";
  if (!::mkdtemp(dir_tmpl)) {
    std::perror("mkdtemp");
    return 1;
  }
  const std::string dir = dir_tmpl;
  { loader::FeatureFileStore::create(dir, pre.hop_features); }

  const auto open_store = [&] {
    return loader::FeatureFileStore::open(dir, kNodes, kHops + 1, kFeatDim);
  };
  const std::size_t cache_rows = kNodes / 20;  // 5% capacity

  std::printf("%-10s %-8s %12s %10s %10s %10s %10s\n", "offered/s", "cache",
              "achieved/s", "p50(us)", "p99(us)", "mean(us)", "hit rate");
  for (const double offered : {2000.0, 5000.0, 10000.0, 20000.0, 50000.0}) {
    serve::ZipfWorkloadConfig wc;
    wc.num_nodes = kNodes;
    // ~1.5s of traffic per point, capped to keep the sweep quick.
    wc.num_requests = static_cast<std::size_t>(offered * 1.5);
    wc.skew = 0.99;
    wc.seed = 31;
    const auto stream = serve::zipf_stream(wc);

    for (const bool with_cache : {false, true}) {
      std::unique_ptr<serve::FeatureSource> source =
          std::make_unique<serve::FileStoreSource>(open_store());
      if (with_cache) {
        source = std::make_unique<serve::CachedSource>(
            std::move(source), std::make_unique<loader::LruCache>(cache_rows));
      }
      const auto p = drive(std::move(source), stream, offered);
      std::printf("%-10.0f %-8s %12.0f %10.0f %10.0f %10.0f %9.1f%%\n",
                  p.offered_rps, with_cache ? "lru-5%" : "off",
                  p.achieved_rps, p.latency.p50_us, p.latency.p99_us,
                  p.latency.mean_us, 100 * p.cache.hit_rate());
      std::printf("json: {\"offered_rps\":%.0f,\"cache\":\"%s\","
                  "\"achieved_rps\":%.0f,\"cache_hit_rate\":%.3f,"
                  "\"latency\":%s}\n",
                  p.offered_rps, with_cache ? "lru" : "off", p.achieved_rps,
                  p.cache.hit_rate(), p.latency.to_json().c_str());
    }
  }
  std::printf("\nExpected shape: overlapping sub-millisecond curves at low "
              "load; the cache-off p99 departs first as offered load "
              "approaches the store's random-read service rate, while the "
              "~60%% LRU hit rate (impossible on the training stream — see "
              "bench_ablation_caching) buys the cached config extra "
              "headroom.\n");
  return 0;
}
