// Table 6 (Appendix E) — test accuracy of HOGA and SIGN across hop counts
// and chunk sizes on the pokec analogue.
//
// Expected shape (paper): accuracy differences across chunk sizes are
// < 0.5% at every hop count; chunk size 1 is exactly SGD-RR.
#include "common.h"

using namespace ppgnn;
using namespace ppgnn::bench;

int main() {
  header("Table 6: test accuracy vs chunk size (pokec analogue)");
  const auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.5);
  const std::size_t chunk_sizes[] = {1, 256, 512};
  std::printf("%-6s %-5s", "model", "hops");
  for (const auto cs : chunk_sizes) std::printf("  chunk=%-4zu", cs);
  std::printf("%10s\n", "max gap");

  double worst_gap = 0;
  for (const char* kind : {"HOGA", "SIGN"}) {
    for (const std::size_t hops : {2, 4, 6}) {
      std::printf("%-6s %-5zu", kind, hops);
      double lo = 1.0, hi = 0.0;
      for (const auto cs : chunk_sizes) {
        const auto mode = cs == 1 ? core::LoadingMode::kPrefetch
                                  : core::LoadingMode::kChunkPrefetch;
        const auto r = run_pp(ds, kind, hops, 20, 64, mode, cs);
        lo = std::min(lo, r.test_acc);
        hi = std::max(hi, r.test_acc);
        std::printf("  %8.3f  ", r.test_acc);
        std::fflush(stdout);
      }
      std::printf("%10.3f\n", hi - lo);
      worst_gap = std::max(worst_gap, hi - lo);
    }
  }
  std::printf("\nworst accuracy spread across chunk sizes: %.3f "
              "(paper: < 0.005 on absolute accuracy; analogue runs are "
              "noisier at 1/28 the training-set size)\n",
              worst_gap);
  return 0;
}
