// Ablation (extension) — propagation operator choice and K > 1 kernels.
//
// Section 2.5: SIGN's operator "can be the normalized adjacency matrix or
// those derived from Personalized PageRank (PPR) or Heat kernel"; the
// paper's main experiments fix K = 1 (sym-normalized adjacency) for all
// PP-GNNs (Appendix A).  This bench measures what that choice costs or
// buys on the medium analogues: SIGN accuracy per single operator, the
// K = 3 multi-kernel variant (sym + PPR + heat), and the input-expansion
// price K(R+1) each option pays (Section 3.4).
#include "common.h"

using namespace ppgnn;
using namespace ppgnn::bench;

namespace {

core::Sign make_sign(const graph::Dataset& ds, std::size_t matrices,
                     Rng& rng) {
  // SIGN over an arbitrary number of input matrices: hops = matrices - 1.
  core::SignConfig cfg;
  cfg.feat_dim = ds.feature_dim();
  cfg.hops = matrices - 1;
  cfg.hidden = 64;
  cfg.classes = ds.num_classes;
  cfg.dropout = 0.3f;
  return core::Sign(cfg, rng);
}

double train_on(const core::Preprocessed& pre, const graph::Dataset& ds) {
  Rng rng(3);
  core::Sign model = make_sign(ds, pre.hop_features.size(), rng);
  core::PpTrainConfig tc;
  tc.epochs = 20;
  tc.batch_size = 256;
  tc.lr = 1e-2f;
  tc.eval_every = 2;
  const auto r = core::train_pp(model, pre, ds, tc);
  return r.history.test_at_best_val();
}

}  // namespace

int main() {
  const std::size_t hops = 3;
  header("Ablation: propagation operator for SIGN (3 hops)");
  std::printf("%-14s %10s %10s %10s %14s\n", "dataset", "sym", "ppr", "heat",
              "multi (K=3)");

  for (const auto name : graph::medium_datasets()) {
    const auto ds = graph::make_dataset(name, 0.4);

    const auto run_op = [&](core::OperatorKind op) {
      core::PrecomputeConfig pc;
      pc.op = op;
      pc.hops = hops;
      return train_on(core::precompute(ds.graph, ds.features, pc), ds);
    };
    const double sym = run_op(core::OperatorKind::kSymNorm);
    const double ppr = run_op(core::OperatorKind::kPpr);
    const double heat = run_op(core::OperatorKind::kHeat);

    // K = 3: all operators at once — Eq. (2) with K kernels; the expanded
    // input grows to K(R+1)-ish matrices (shared hop-0 appears once).
    std::vector<core::PrecomputeConfig> multi(3);
    multi[0].op = core::OperatorKind::kSymNorm;
    multi[1].op = core::OperatorKind::kPpr;
    multi[2].op = core::OperatorKind::kHeat;
    for (auto& m : multi) m.hops = hops;
    const auto pre = core::precompute_multi(ds.graph, ds.features, multi);
    const double k3 = train_on(pre, ds);

    std::printf("%-14s %10.3f %10.3f %10.3f %14.3f\n", ds.name.c_str(), sym,
                ppr, heat, k3);
    std::fflush(stdout);
  }

  header("Input-expansion price (paper-scale igb-large bytes, R=3)");
  const auto scale = graph::paper_scale(graph::DatasetName::kIgbLargeSim);
  for (const std::size_t k : {1ul, 2ul, 3ul}) {
    std::printf("K=%zu: %.2f TB\n", k,
                static_cast<double>(scale.preprocessed_bytes(3, k)) / 1e12);
  }
  std::printf("\nExpected shape: sym and heat land within a few points of "
              "each other (both are pure low-pass filters); PPR trails on "
              "these low-SNR analogues because its teleport term keeps "
              "re-injecting the noisy raw features; K=3 matches the best "
              "single kernel at 3x the input-expansion cost — why the "
              "paper's evaluation keeps K=1.\n");
  return 0;
}
