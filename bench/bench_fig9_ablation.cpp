// Figure 9 — ablation of the data-loading optimizations with input data in
// host memory: baseline -> efficient batch assembly -> + double-buffer
// prefetching -> + chunk reshuffling.  Paper: 3.3x, then 1.9x, then 2.4x,
// 15x total (geomean over 3 models x 3 medium datasets).
//
// Section 1 reproduces the paper-scale numbers with the cost model;
// section 2 measures the same ladder for real on the analogues (CPU).
#include "common.h"

using namespace ppgnn;
using namespace ppgnn::bench;
using namespace ppgnn::sim;

int main() {
  header("Figure 9: normalized epoch time, input in host memory (modeled)");
  std::printf("%-10s %12s %12s %12s %12s\n", "config", "baseline",
              "+assembly", "+dbl-buffer", "+chunks");

  struct ModelRow {
    const char* label;
    PpModelKind kind;
    std::size_t hidden;
  };
  const std::vector<ModelRow> models{{"HOGA", PpModelKind::kHoga, 256},
                                     {"SIGN", PpModelKind::kSign, 512},
                                     {"SGC", PpModelKind::kSgc, 512}};
  const auto datasets = graph::medium_datasets();
  const char* ds_tag[] = {"O", "P", "W"};  // paper's x-tick naming

  std::vector<double> s1, s2, s3, total;
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    for (const auto& m : models) {
      double t[4] = {0, 0, 0, 0};
      const LoaderKind ladder[4] = {
          LoaderKind::kBaseline, LoaderKind::kFusedAssembly,
          LoaderKind::kDoubleBuffer, LoaderKind::kChunkPipeline};
      for (const std::size_t hops : {2, 3, 4, 5, 6}) {
        for (int step = 0; step < 4; ++step) {
          auto cfg = paper_pp_config(datasets[d], m.kind, hops, m.hidden);
          cfg.placement = DataPlacement::kHost;
          cfg.loader = ladder[step];
          t[step] += simulate_pp_epoch(cfg).epoch_seconds;
        }
      }
      std::printf("%s-%-8s %12.3f %12.3f %12.3f %12.3f\n", ds_tag[d], m.label,
                  1.0, t[1] / t[0], t[2] / t[0], t[3] / t[0]);
      s1.push_back(t[0] / t[1]);
      s2.push_back(t[1] / t[2]);
      s3.push_back(t[2] / t[3]);
      total.push_back(t[0] / t[3]);
    }
  }
  std::printf("\ngeomean speedups: assembly %.2fx, +double-buffer %.2fx, "
              "+chunks %.2fx, total %.1fx (paper: 3.3x, 1.9x, 2.4x, 15x)\n",
              geomean(s1), geomean(s2), geomean(s3), geomean(total));

  header("Real measured ladder on the analogues (CPU wall clock)");
  std::printf("%-12s %12s %12s %12s %12s\n", "config", "baseline(s)",
              "+assembly", "+dbl-buffer", "+chunks");
  std::vector<double> real_total;
  for (const auto name : datasets) {
    const auto ds = graph::make_dataset(name, 0.4);
    const core::LoadingMode ladder[4] = {
        core::LoadingMode::kBaselinePerRow, core::LoadingMode::kFusedAssembly,
        core::LoadingMode::kPrefetch, core::LoadingMode::kChunkPrefetch};
    double t[4];
    for (int step = 0; step < 4; ++step) {
      const auto r = run_pp(ds, "SIGN", 3, 4, 64, ladder[step]);
      t[step] = r.history.mean_epoch_seconds();
    }
    std::printf("%-12s %12.4f %12.3f %12.3f %12.3f\n", ds.name.c_str(), t[0],
                t[1] / t[0], t[2] / t[0], t[3] / t[0]);
    real_total.push_back(t[0] / t[3]);
  }
  std::printf("\nreal geomean total speedup (SIGN, CPU): %.2fx — smaller "
              "than paper-scale because CPU compute dominates where a GPU "
              "would be loading-bound.\n",
              geomean(real_total));
  return 0;
}
