// Extension — the full PP-GNN model ladder, including the two family
// members the paper cites but does not evaluate (SSGC, GAMLP).
//
// One shared preprocessing pass (the amortization workflow of Section
// 3.5) feeds five models per dataset; rows report parameters, accuracy,
// convergence epoch and modeled paper-scale throughput, placing SSGC and
// GAMLP on the Figure 7 expressivity/cost ladder:
//   SGC < SSGC (hop average fixes SGC's final-hop-only cap, still linear)
//       < SIGN / GAMLP (per-hop branches vs learned hop gates)
//       <= HOGA (full token attention).
#include "common.h"

using namespace ppgnn;
using namespace ppgnn::bench;

int main() {
  const std::size_t hops = 4;
  for (const auto name :
       {graph::DatasetName::kPokecSim, graph::DatasetName::kWikiSim}) {
    const auto ds = graph::make_dataset(name, 0.4);
    header("Extension models on " + ds.name + " (4 hops, shared "
           "preprocessing)");

    core::PrecomputeConfig pc;
    pc.hops = hops;
    const auto pre = core::precompute(ds.graph, ds.features, pc);

    std::printf("%-7s %10s %10s %12s %16s\n", "model", "params", "test acc",
                "conv epoch", "paper epochs/s");
    for (const std::string kind : {"SGC", "SSGC", "SIGN", "GAMLP", "HOGA"}) {
      Rng rng(7);
      auto model = make_pp_model(kind, ds, hops, 64, rng);
      core::PpTrainConfig tc;
      tc.epochs = 24;
      tc.batch_size = 256;
      tc.lr = 1e-2f;
      tc.eval_every = 2;
      tc.mode = core::LoadingMode::kPrefetch;
      const auto r = core::train_pp(*model, pre, ds, tc);

      // Paper-scale throughput from the cost model; SSGC shares SGC's
      // shape (single linear) and GAMLP sits near SIGN's (per-hop work +
      // MLP) — their training FLOPs are within a few percent.
      const auto sim_kind = (kind == "SGC" || kind == "SSGC")
                                ? sim::PpModelKind::kSgc
                                : (kind == "HOGA" ? sim::PpModelKind::kHoga
                                                  : sim::PpModelKind::kSign);
      auto cfg = paper_pp_config(name, sim_kind, hops,
                                 kind == "HOGA" ? 256 : 512);
      cfg.loader = sim::LoaderKind::kChunkPipeline;
      cfg.placement = sim::DataPlacement::kHost;
      const auto sim = sim::simulate_pp_epoch(cfg);

      std::printf("%-7s %10zu %10.3f %12zu %16.3f\n", kind.c_str(),
                  model->num_params(), r.history.test_at_best_val(),
                  r.history.convergence_epoch(),
                  sim.throughput_epochs_per_sec());
      std::fflush(stdout);
    }
  }
  std::printf("\nExpected shape: on wiki (hop-heterogeneous classes) "
              "accuracy orders SGC < SSGC < SIGN/GAMLP/HOGA with "
              "throughput ordered the other way; on pokec "
              "(hop-homogeneous) the final hop is already a sufficient "
              "statistic, so SGC matches the MLP models and SSGC's hop "
              "average actually dilutes it — which hops carry information "
              "decides the model choice.\n");
  return 0;
}
