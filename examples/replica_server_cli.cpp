// replica_server_cli: one PP-GNN replica in its own process, serving
// ServeRequest envelopes over ppgnn-wire (docs/wire-protocol.md).
//
// This is the server half of the cross-process fleet: a front
// (FleetManager built with a RemoteSpawnFn — serve_cli --remote-replicas)
// spawns one of these per replica, handshakes on the socket, and routes
// envelope sub-batches to it.  The process loads the deployed checkpoint,
// opens the shared FeatureFileStore, and serves through a real
// MicroBatcher — admission control, priority classes and deadline shedding
// behave exactly as in-process.
//
// Lifecycle: serves until SIGTERM/SIGINT, then drains — admitted work is
// answered and flushed, new requests bounce kDraining (the front
// re-routes them) — and exits 0.  See docs/operations.md for the rolling
// restart / crash recovery runbook.
//
//   ./replica_server_cli --socket=unix:/tmp/r0.sock \
//       --checkpoint=/path/model.ckpt --store=/path/store --nodes=100000 \
//       [--model=SIGN] [--hops=2] [--feat-dim=32] [--hidden=32]
//       [--classes=16] [--precision=fp32|int8] [--cache=none|lru]
//       [--cache-mb=16] [--max-batch=256] [--max-delay-us=200]
//       [--shed-budget-ms=0] [--drain-timeout-ms=10000]
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/sgc.h"
#include "core/sign.h"
#include "loader/cache.h"
#include "loader/storage.h"
#include "rpc/server.h"
#include "serve/feature_source.h"
#include "serve/inference_session.h"
#include "tensor/rng.h"

using namespace ppgnn;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

struct Args {
  std::string socket;      // unix:/path or tcp:host:port (required)
  std::string checkpoint;  // deployed model checkpoint (required)
  std::string store;       // FeatureFileStore directory (required)
  std::size_t nodes = 0;   // rows in the store (required)
  std::string model = "SIGN";
  std::size_t hops = 2;
  std::size_t feat_dim = 32;
  std::size_t hidden = 32;
  std::size_t classes = 16;
  std::string precision = "fp32";
  std::string cache = "none";  // none | lru
  double cache_mb = 16.0;
  std::size_t max_batch = 256;
  long max_delay_us = 200;
  double shed_budget_ms = 0.0;
  long drain_timeout_ms = 10000;
};

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "replica_server_cli: serve one PP-GNN replica over ppgnn-wire\n"
      "  --socket=ADDR          unix:/path or tcp:host:port (required)\n"
      "  --checkpoint=PATH      deployed model checkpoint (required)\n"
      "  --store=DIR            FeatureFileStore directory (required)\n"
      "  --nodes=N              rows in the store (required)\n"
      "  --model=SGC|SIGN       architecture shell (default SIGN)\n"
      "  --hops=K --feat-dim=D --hidden=H --classes=C   model shape\n"
      "  --precision=fp32|int8  must match the checkpoint and store codec\n"
      "  --cache=none|lru       server-side row cache over the store\n"
      "  --cache-mb=M           cache byte budget (default 16)\n"
      "  --max-batch=N --max-delay-us=U --shed-budget-ms=B   batching\n"
      "  --drain-timeout-ms=T   SIGTERM drain budget (default 10000)\n"
      "  --help                 this text\n");
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "bad arg: %s (use --key=value)\n", arg.c_str());
      std::exit(2);
    }
    const auto eq = arg.find('=');
    std::string k, v;
    if (eq != std::string::npos) {
      k = arg.substr(2, eq - 2);
      v = arg.substr(eq + 1);
    } else {
      k = arg.substr(2);
      if (i + 1 < argc && argv[i + 1][0] != '-') v = argv[++i];
    }
    std::replace(k.begin(), k.end(), '-', '_');
    try {
      if (k == "socket") a.socket = v;
      else if (k == "checkpoint") a.checkpoint = v;
      else if (k == "store") a.store = v;
      else if (k == "nodes") a.nodes = std::stoul(v);
      else if (k == "model") a.model = v;
      else if (k == "hops") a.hops = std::stoul(v);
      else if (k == "feat_dim") a.feat_dim = std::stoul(v);
      else if (k == "hidden") a.hidden = std::stoul(v);
      else if (k == "classes") a.classes = std::stoul(v);
      else if (k == "precision") a.precision = v;
      else if (k == "cache") a.cache = v;
      else if (k == "cache_mb") a.cache_mb = std::stod(v);
      else if (k == "max_batch") a.max_batch = std::stoul(v);
      else if (k == "max_delay_us") a.max_delay_us = std::stol(v);
      else if (k == "shed_budget_ms") a.shed_budget_ms = std::stod(v);
      else if (k == "drain_timeout_ms") a.drain_timeout_ms = std::stol(v);
      else {
        std::fprintf(stderr, "unknown flag: --%s\n", k.c_str());
        usage(stderr);
        std::exit(2);
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad value for --%s: %s\n", k.c_str(), v.c_str());
      std::exit(2);
    }
  }
  if (a.socket.empty() || a.checkpoint.empty() || a.store.empty() ||
      a.nodes == 0) {
    std::fprintf(stderr,
                 "--socket, --checkpoint, --store and --nodes are required\n");
    usage(stderr);
    std::exit(2);
  }
  if (a.cache != "none" && a.cache != "lru") {
    std::fprintf(stderr, "unknown --cache=%s (none|lru)\n", a.cache.c_str());
    std::exit(2);
  }
  return a;
}

std::unique_ptr<core::PpModel> make_shell(const Args& a) {
  // Same shells ServingTestbed stamps out; weights are overwritten from
  // the checkpoint, so the init seed is irrelevant.
  Rng rng(7);
  if (a.model == "SGC") {
    return std::make_unique<core::Sgc>(a.feat_dim, a.hops, a.classes, rng);
  }
  if (a.model == "SIGN") {
    core::SignConfig sc;
    sc.feat_dim = a.feat_dim;
    sc.hops = a.hops;
    sc.hidden = a.hidden;
    sc.classes = a.classes;
    sc.mlp_layers = 2;
    sc.dropout = 0.f;
    return std::make_unique<core::Sign>(sc, rng);
  }
  std::fprintf(stderr, "unknown --model=%s (SGC|SIGN)\n", a.model.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  serve::Precision prec;
  if (!serve::parse_precision(a.precision, &prec)) {
    std::fprintf(stderr, "unknown --precision=%s (fp32|int8)\n",
                 a.precision.c_str());
    return 2;
  }

  std::unique_ptr<serve::InferenceSession> session;
  try {
    const loader::RowCodec codec = prec == serve::Precision::kInt8
                                       ? loader::RowCodec::kInt8
                                       : loader::RowCodec::kFp32;
    auto source = std::make_unique<serve::FileStoreSource>(
        loader::FeatureFileStore::open(a.store, a.nodes, a.hops + 1,
                                       a.feat_dim, codec));
    std::unique_ptr<serve::FeatureSource> features = std::move(source);
    if (a.cache == "lru") {
      const std::size_t row_bytes =
          static_cast<serve::FileStoreSource*>(features.get())
              ->store()
              .row_bytes();
      const auto budget = static_cast<std::size_t>(a.cache_mb * 1024 * 1024);
      features = std::make_unique<serve::CachedSource>(
          std::move(features),
          std::make_unique<loader::LruCache>(budget, row_bytes));
    }
    // FleetBuilder handles the precision-specific load path (int8
    // checkpoints quantize on load) exactly as an in-process fleet would.
    serve::FleetBuilder builder(
        a.checkpoint, [&a](std::size_t) { return make_shell(a); },
        [&features](std::size_t) { return std::move(features); }, prec);
    session = builder.build(0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replica_server: failed to load artifacts: %s\n",
                 e.what());
    return 1;
  }

  rpc::ReplicaServerConfig cfg;
  cfg.address = a.socket;
  cfg.batch.max_batch_size = a.max_batch;
  cfg.batch.max_delay = std::chrono::microseconds(a.max_delay_us);
  cfg.batch.shed_budget = std::chrono::microseconds(
      static_cast<long>(a.shed_budget_ms * 1000.0));
  cfg.drain_timeout = std::chrono::milliseconds(a.drain_timeout_ms);

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  std::printf("replica_server: pid %d serving %s at %s (%s, %zu nodes)\n",
              ::getpid(), a.model.c_str(), a.socket.c_str(),
              serve::precision_name(prec), a.nodes);
  std::fflush(stdout);
  rpc::ReplicaServer server(std::move(session), cfg);
  const int rc = server.run(&g_stop);
  const auto& st = server.stats();
  std::printf("replica_server: pid %d exiting rc=%d (%zu admitted, %zu shed, "
              "%zu batches)\n",
              ::getpid(), rc, st.admission().admitted, st.admission().shed,
              st.batches());
  // Per-tenant breakdown (src/tenancy/): the wire carries the tenant id on
  // v2 requests, so a remote replica can report the same slices a local
  // one does.  Skipped when everything was the default tenant — the
  // untenanted log shape is unchanged.  CI's crossproc leg greps these
  // lines into tenant-stats.txt.
  const auto tenant_rows = st.tenant_stats();
  if (tenant_rows.size() > 1 ||
      (tenant_rows.size() == 1 && tenant_rows[0].tenant != 0)) {
    for (const auto& t : tenant_rows) {
      std::printf("replica_server: tenant %u admitted=%zu shed=%zu "
                  "samples=%zu p50_us=%.0f p99_us=%.0f\n",
                  t.tenant, t.admitted, t.rejected + t.shed, t.samples,
                  t.p50_us, t.p99_us);
    }
  }
  // Server-side half of the transport evidence; the front logs the client
  // half.  This lands in the log artifact CI uploads on smoke failure.
  const rpc::RpcStats& rs = server.rpc_stats();
  if (rs.frames_sent > 0) {
    std::printf("replica_server: rpc fast path frames=%llu writev=%llu "
                "frames/writev=%.2f bytes/syscall=%.0f pool-hit=%.1f%% "
                "allocs/frame=%.4f\n",
                static_cast<unsigned long long>(rs.frames_sent),
                static_cast<unsigned long long>(rs.writev_calls),
                rs.frames_per_writev(), rs.bytes_per_syscall(),
                100 * rs.pool_hit_rate(), rs.allocs_per_frame());
  }
  return rc;
}
