// Data-parallel PP-GNN training across worker threads — the executable
// analogue of the paper's 1/2/4-GPU scaling experiments (Tables 3/4) and
// of Section 5's locality-aware multi-GPU data placement.
//
// Trains SIGN on the igb-medium analogue with 1, 2 and 4 workers under
// both epoch-order policies and reports accuracy, epoch time and the
// remote-row fraction (the traffic that makes naive multi-GPU loading
// egress-bound at scale).
#include <cstdio>

#include "core/parallel_trainer.h"
#include "core/precompute.h"
#include "core/sign.h"
#include "graph/dataset.h"

int main() {
  using namespace ppgnn;

  const auto ds = graph::make_dataset(graph::DatasetName::kIgbMediumSim, 0.15);
  core::PrecomputeConfig pc;
  pc.hops = 2;
  const auto pre = core::precompute(ds.graph, ds.features, pc);
  std::printf("dataset %s: %zu nodes, %zu train rows, %zu-hop features\n\n",
              ds.name.c_str(), ds.num_nodes(), ds.split.train.size(),
              pre.num_hops());

  const core::ModelFactory factory =
      [&](Rng& rng) -> std::unique_ptr<core::PpModel> {
    core::SignConfig cfg;
    cfg.feat_dim = ds.feature_dim();
    cfg.hops = pc.hops;
    cfg.hidden = 64;
    cfg.classes = ds.num_classes;
    cfg.dropout = 0.f;
    return std::make_unique<core::Sign>(cfg, rng);
  };

  std::printf("%-24s %8s %10s %12s %14s\n", "policy", "workers", "test acc",
              "epoch (s)", "remote rows");
  for (const auto policy : {core::EpochOrderPolicy::kGlobalShuffle,
                            core::EpochOrderPolicy::kLocalityAware}) {
    for (const int workers : {1, 2, 4}) {
      core::DataParallelConfig cfg;
      cfg.num_workers = workers;
      cfg.epochs = 6;
      cfg.batch_size = 256;
      cfg.eval_every = 2;
      cfg.seed = 5;
      cfg.policy = policy;
      const auto r = core::train_pp_data_parallel(factory, pre, ds, cfg);
      std::printf("%-24s %8d %10.4f %12.4f %13.1f%%\n",
                  core::to_string(policy), workers,
                  r.history.test_at_best_val(),
                  r.history.mean_epoch_seconds(),
                  100.0 * r.remote_row_fraction);
    }
  }
  std::printf("\nGlobal shuffling fetches ~(W-1)/W of every batch from other "
              "workers' partitions; locality-aware ordering eliminates that "
              "traffic at no accuracy cost (the multi-GPU variant of the "
              "chunk-reshuffling argument).\n");
  return 0;
}
