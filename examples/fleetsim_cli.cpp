// fleetsim_cli: trace-driven capacity planning for the serving tier.
//
// Three modes, one binary:
//
//  * Plan (default): build or load an arrival trace, sweep fleet sizes
//    (fixed 1..N plus an autoscale arm) through the discrete-event
//    simulator, and print the cheapest configuration that meets the SLO —
//    admitted p99 under --target-p99-ms AND shed rate under
//    --max-shed-rate.  Hours of trace replay in seconds: the simulator
//    runs the real policy objects on a virtual clock (src/fleetsim/).
//
//      ./fleetsim_cli --trace=diurnal --span-seconds=3600 \
//          --base-rps=300 --peak-rps=1800 --baseline-rps=1200 \
//          --target-p99-ms=10
//      ./fleetsim_cli --trace=arrivals.trace --json=PLAN.json
//
//  * Replay (--replicas=N): one simulation of a fixed or autoscaled fleet
//    over the trace, full SimResult JSON — for studying a single config
//    rather than choosing one.
//
//  * Calibrate (--calibrate=BENCH_serving.json): parse the bench's
//    autoscale_trace records, rebuild the service/cache models from the
//    measured anchors, replay the same staged ramp, and gate simulated
//    throughput / admitted p99 / spawn-retire sequence against the
//    measurement (src/fleetsim/calibrate.h).  Writes the report to --out
//    (default SIM_calibration.json); exits 1 when any arm misses its
//    tolerance — the CI smoke that keeps the model honest.
//
// Traces: --trace=diurnal (sinusoidal day compressed to --span-seconds),
// --trace=burst (steady base with periodic bursts), or a path to a
// ppgnn-trace v1 file recorded by serve_cli --trace-out.
//
// The service model defaults to the header's first-order constants;
// override per-machine with --baseline-rps/--mean-batch/--dispatch-us/
// --hit-rate (the calibrated() constructor) or the raw knobs
// --overhead-us/--hit-us/--miss-extra-us.  --cores bounds the modeled
// timesharing (replicas are threads in one process).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fleetsim/calibrate.h"
#include "fleetsim/fleet_sim.h"
#include "fleetsim/planner.h"
#include "serve/router.h"
#include "serve/trace.h"
#include "serve/workload.h"
#include "tenancy/tenant.h"

using namespace ppgnn;

namespace {

struct Args {
  // Trace selection.
  std::string trace = "diurnal";  // diurnal | burst | path
  double span_seconds = 3600;
  double base_rps = 300;
  double peak_rps = 1800;      // diurnal crest
  double peak_at = 0.5;
  double burst_mult = 5.0;     // burst shape
  double burst_every = 60;
  double burst_seconds = 5;
  std::size_t nodes = 20000;
  double skew = 0.99;
  std::size_t batch_nodes = 1;
  double low_frac = 0.0;
  double deadline_ms = 0.0;
  std::uint64_t seed = 1;
  // Service model.
  double baseline_rps = 0;     // > 0 switches to calibrated()
  double mean_batch = 64;
  double dispatch_us = 0;
  double hit_rate = 0.5;
  double overhead_us = 120;
  double hit_us = 4.0;
  double miss_extra_us = 8.0;
  double cores = 0;            // 0 = hardware_concurrency
  // Fleet knobs.
  std::string policy = "cache_affinity";
  std::size_t max_batch = 128;
  long max_delay_us = 500;
  double shed_budget_ms = 2.0;
  std::size_t cache_rows = 1024;
  std::size_t warm_keys = 512;
  double spawn_ms = 30;
  double initial_fill = 0.0;
  // Plan / replay.
  double target_p99_ms = 10.0;
  double max_shed_rate = 0.01;
  std::size_t min_replicas = 1;
  std::size_t max_replicas = 4;
  bool autoscale_arm = true;
  std::size_t replicas = 0;    // > 0 = single-replay mode
  bool autoscale = false;      // replay mode: autoscaled instead of fixed
  // Multi-tenant replay (src/tenancy/): same contracts the live front
  // enforces, driven by the sim clock — "does tenant B's p99 survive
  // tenant A at 10x quota" answered before anyone deploys.
  std::size_t tenants = 1;    // synthetic traces: ids drawn from [0, N)
  std::string tenant_mix;     // DWRR weights, tiled across tenants
  double tenant_rate = 0.0;   // parts/s quota per tenant (0 = unmetered)
  double tenant_burst = 0.0;  // bucket depth (0 = one second of quota)
  // Calibration.
  std::string calibrate;       // BENCH_serving.json path
  std::string out = "SIM_calibration.json";
  // Output.
  std::string json;            // plan/replay JSON path ("" = stdout only)
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "bad arg: %s (use --key=value)\n", arg.c_str());
      std::exit(2);
    }
    const auto eq = arg.find('=');
    std::string k, v;
    if (eq != std::string::npos) {
      k = arg.substr(2, eq - 2);
      v = arg.substr(eq + 1);
    } else {
      k = arg.substr(2);
      v = "1";
    }
    std::replace(k.begin(), k.end(), '-', '_');
    try {
    if (k == "trace") a.trace = v;
    else if (k == "span_seconds") a.span_seconds = std::stod(v);
    else if (k == "base_rps") a.base_rps = std::stod(v);
    else if (k == "peak_rps") a.peak_rps = std::stod(v);
    else if (k == "peak_at") a.peak_at = std::stod(v);
    else if (k == "burst_mult") a.burst_mult = std::stod(v);
    else if (k == "burst_every") a.burst_every = std::stod(v);
    else if (k == "burst_seconds") a.burst_seconds = std::stod(v);
    else if (k == "nodes") a.nodes = std::stoul(v);
    else if (k == "skew") a.skew = std::stod(v);
    else if (k == "batch_nodes") a.batch_nodes = std::stoul(v);
    else if (k == "low_frac") a.low_frac = std::stod(v);
    else if (k == "deadline_ms") a.deadline_ms = std::stod(v);
    else if (k == "seed") a.seed = std::stoull(v);
    else if (k == "baseline_rps") a.baseline_rps = std::stod(v);
    else if (k == "mean_batch") a.mean_batch = std::stod(v);
    else if (k == "dispatch_us") a.dispatch_us = std::stod(v);
    else if (k == "hit_rate") a.hit_rate = std::stod(v);
    else if (k == "overhead_us") a.overhead_us = std::stod(v);
    else if (k == "hit_us") a.hit_us = std::stod(v);
    else if (k == "miss_extra_us") a.miss_extra_us = std::stod(v);
    else if (k == "cores") a.cores = std::stod(v);
    else if (k == "policy") a.policy = v;
    else if (k == "max_batch") a.max_batch = std::stoul(v);
    else if (k == "max_delay_us") a.max_delay_us = std::stol(v);
    else if (k == "shed_budget_ms") a.shed_budget_ms = std::stod(v);
    else if (k == "cache_rows") a.cache_rows = std::stoul(v);
    else if (k == "warm_keys") a.warm_keys = std::stoul(v);
    else if (k == "spawn_ms") a.spawn_ms = std::stod(v);
    else if (k == "initial_fill") a.initial_fill = std::stod(v);
    else if (k == "target_p99_ms") a.target_p99_ms = std::stod(v);
    else if (k == "max_shed_rate") a.max_shed_rate = std::stod(v);
    else if (k == "min_replicas") a.min_replicas = std::stoul(v);
    else if (k == "max_replicas") a.max_replicas = std::stoul(v);
    else if (k == "autoscale_arm") a.autoscale_arm = v != "0";
    else if (k == "no_autoscale_arm") a.autoscale_arm = false;
    else if (k == "replicas") a.replicas = std::stoul(v);
    else if (k == "autoscale") a.autoscale = v != "0";
    else if (k == "tenants") a.tenants = std::stoul(v);
    else if (k == "tenant_mix") a.tenant_mix = v;
    else if (k == "tenant_rate") a.tenant_rate = std::stod(v);
    else if (k == "tenant_burst") a.tenant_burst = std::stod(v);
    else if (k == "calibrate") a.calibrate = v;
    else if (k == "out") a.out = v;
    else if (k == "json") a.json = v;
    else { std::fprintf(stderr, "unknown flag: --%s\n", k.c_str()); std::exit(2); }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad value for --%s: %s\n", k.c_str(), v.c_str());
      std::exit(2);
    }
  }
  if (a.nodes == 0 || a.max_batch == 0 || a.span_seconds <= 0) {
    std::fprintf(stderr, "nodes, max_batch, span-seconds must be positive\n");
    std::exit(2);
  }
  if (a.min_replicas == 0 || a.max_replicas < a.min_replicas) {
    std::fprintf(stderr, "need 1 <= min-replicas <= max-replicas\n");
    std::exit(2);
  }
  if (a.tenants == 0 || a.tenant_rate < 0 || a.tenant_burst < 0) {
    std::fprintf(stderr,
                 "--tenants must be >= 1; --tenant-rate/--tenant-burst "
                 "must be >= 0\n");
    std::exit(2);
  }
  return a;
}

std::vector<serve::TraceEvent> make_trace(const Args& a) {
  serve::TraceMixConfig mix;
  mix.num_nodes = a.nodes;
  mix.skew = a.skew;
  mix.batch_nodes = a.batch_nodes;
  mix.low_frac = a.low_frac;
  mix.deadline_us = static_cast<std::uint64_t>(a.deadline_ms * 1000.0);
  mix.tenants = static_cast<std::uint32_t>(a.tenants);
  mix.seed = a.seed;
  if (a.trace == "diurnal") {
    serve::DiurnalTraceConfig cfg;
    cfg.mix = mix;
    cfg.span_seconds = a.span_seconds;
    cfg.base_rps = a.base_rps;
    cfg.peak_rps = a.peak_rps;
    cfg.peak_at = a.peak_at;
    return serve::diurnal_trace(cfg);
  }
  if (a.trace == "burst") {
    serve::BurstTraceConfig cfg;
    cfg.mix = mix;
    cfg.span_seconds = a.span_seconds;
    cfg.base_rps = a.base_rps;
    cfg.burst_mult = a.burst_mult;
    cfg.burst_every_seconds = a.burst_every;
    cfg.burst_seconds = a.burst_seconds;
    return serve::burst_trace(cfg);
  }
  return serve::load_trace(a.trace);  // a recorded file
}

fleetsim::ServiceModel make_model(const Args& a, double cores) {
  if (a.baseline_rps > 0) {
    return fleetsim::ServiceModel::calibrated(
        a.baseline_rps, a.mean_batch, a.dispatch_us, a.hit_rate, cores);
  }
  fleetsim::ServiceModelParams p;
  p.batch_overhead_us = a.overhead_us;
  p.hit_us_per_row = a.hit_us;
  p.miss_extra_us_per_row = a.miss_extra_us;
  p.cores = cores;
  return fleetsim::ServiceModel(p);
}

fleetsim::SimFleetConfig make_fleet(const Args& a) {
  fleetsim::SimFleetConfig cfg;
  serve::parse_policy(a.policy, &cfg.policy);
  cfg.batch.max_batch_size = a.max_batch;
  cfg.batch.max_delay = std::chrono::microseconds(a.max_delay_us);
  cfg.batch.shed_budget = std::chrono::microseconds(
      static_cast<long>(a.shed_budget_ms * 1000.0));
  cfg.warm_keys = a.warm_keys;
  cfg.initial_fill = a.initial_fill;
  cfg.spawn_latency = std::chrono::milliseconds(
      static_cast<std::int64_t>(a.spawn_ms));
  cfg.cache.capacity_rows = a.cache_rows;
  cfg.cache.num_nodes = a.nodes;
  cfg.cache.skew = a.skew;
  return cfg;
}

void emit(const std::string& payload, const std::string& path) {
  if (!path.empty()) {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      std::exit(1);
    }
    out << payload << "\n";
    std::printf("wrote %s\n", path.c_str());
  }
  std::printf("json: %s\n", payload.c_str());
}

int run_calibration_mode(const Args& a) {
  std::ifstream in(a.calibrate);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", a.calibrate.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  fleetsim::BenchCalibration calib;
  try {
    calib = fleetsim::parse_bench_json(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "calibration parse failed: %s\n", e.what());
    return 1;
  }
  std::printf("=== fleetsim calibration vs %s ===\n", a.calibrate.c_str());
  std::printf("anchors: baseline %.0f parts/s, mean batch %.1f, hit %.1f%%, "
              "%zu arms, ramp %.1fs\n",
              calib.single_replica_rps, calib.mean_batch,
              100 * calib.cache_hit_rate, calib.arms.size(),
              calib.ramp_seconds);
  if (const auto* k = calib.dispatched_kernel()) {
    std::printf("kernel: %s arm, %.1f Gop/s measured (per-ISA table: %zu "
                "rows)\n",
                k->isa.c_str(), k->gemm_gops, calib.kernels.size());
  }
  if (calib.has_cross_process) {
    // The record that prices sim::RpcSpec::measured() for cross-process
    // plans: the bench's wire tax plus the fast-path coalescing evidence.
    std::printf("cross-process: %.2fx wire tax, %.2f frames/writev, "
                "pool-hit %.1f%%, %.4f allocs/frame\n",
                calib.xp_overhead_ratio, calib.xp_frames_per_writev,
                100 * calib.xp_pool_hit_rate, calib.xp_allocs_per_frame);
  }
  const fleetsim::CalibrationTolerance tol;
  const auto report = fleetsim::run_calibration(calib, tol);
  std::printf("%-14s %12s %12s %7s %12s %12s %7s %8s %8s %s\n", "arm",
              "meas rps", "sim rps", "ratio", "meas p99", "sim p99", "ratio",
              "events", "edits", "gate");
  for (const auto& c : report.arms) {
    std::printf("%-14s %12.0f %12.0f %7.2f %12.0f %12.0f %7.2f %8s %8zu %s\n",
                c.fleet.c_str(), c.measured_rps, c.sim_rps, c.rps_ratio,
                c.measured_p99_us, c.sim_p99_us, c.p99_ratio,
                (c.measured_events + "/" + c.sim_events).c_str(),
                c.event_edits, c.pass ? "PASS" : "FAIL");
  }
  emit(report.to_json(tol), a.out);
  std::printf("%s: simulator %s the measured ramp within tolerance\n",
              report.pass ? "PASS" : "FAIL",
              report.pass ? "reproduces" : "does NOT reproduce");
  return report.pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  if (!a.calibrate.empty()) return run_calibration_mode(a);

  // Tenant contracts: main-scope so the registry outlives every FleetSim
  // below (SimFleetConfig holds a raw pointer).
  tenancy::TenantRegistry registry;
  const bool tenanted = a.tenants > 1 || a.tenant_rate > 0;
  if (tenanted) {
    std::vector<std::uint32_t> weights;
    std::string werr;
    if (!tenancy::parse_tenant_mix(a.tenant_mix, &weights, &werr)) {
      std::fprintf(stderr, "bad --tenant-mix: %s\n", werr.c_str());
      return 2;
    }
    for (std::uint32_t t = 0; t < a.tenants; ++t) {
      tenancy::TenantContract c;
      c.rate_per_s = a.tenant_rate;
      c.burst = a.tenant_burst;
      c.weight = weights.empty() ? 1 : weights[t % weights.size()];
      registry.set_contract(t, c);
    }
  }

  const double cores =
      a.cores > 0 ? a.cores
                  : std::max(1u, std::thread::hardware_concurrency());
  const auto model = make_model(a, cores);
  const auto trace = make_trace(a);
  if (trace.empty()) {
    std::fprintf(stderr, "empty trace\n");
    return 1;
  }
  std::printf("=== fleetsim: %s trace ===\n", a.trace.c_str());
  std::printf("trace: %zu envelopes (%zu parts), %.1fs span, mean %.0f "
              "envelopes/s offered\n",
              trace.size(), serve::trace_parts(trace),
              serve::trace_span_seconds(trace), serve::trace_mean_rps(trace));

  fleetsim::SimFleetConfig base = make_fleet(a);
  if (tenanted) base.tenants = &registry;
  if (a.replicas > 0) {
    // Single-config replay.
    fleetsim::SimFleetConfig cfg = base;
    cfg.initial_replicas = a.replicas;
    cfg.autoscale.enabled = a.autoscale;
    cfg.autoscale.min_replicas = a.replicas;
    cfg.autoscale.max_replicas =
        a.autoscale ? std::max(a.max_replicas, a.replicas) : a.replicas;
    const auto r = fleetsim::FleetSim(cfg, model).run(trace);
    std::printf("replayed %.1fs of trace in %.2fs: %zu answered "
                "(%.0f/s), p99 %.0fus, shed rate %.2f%%, replicas %zu max, "
                "%.1f replica-seconds\n",
                r.span_seconds, r.sim_wall_seconds, r.answered,
                r.answered_rps, r.admitted_latency.p99_us, 100 * r.shed_rate,
                r.max_replicas_seen, r.replica_seconds);
    if (!r.tenants.empty()) {
      std::printf("%-8s %10s %10s %10s %10s %10s\n", "tenant", "admitted",
                  "shed", "quota-ref", "p50(us)", "p99(us)");
      for (const auto& t : r.tenants) {
        std::printf("%-8u %10zu %10zu %10zu %10.0f %10.0f\n", t.tenant,
                    t.admitted, t.rejected + t.shed, t.quota_refused,
                    t.p50_us, t.p99_us);
      }
    }
    emit(r.to_json(), a.json);
    return 0;
  }

  // Capacity plan.
  fleetsim::PlanTarget target;
  target.p99_ms = a.target_p99_ms;
  target.max_shed_rate = a.max_shed_rate;
  target.min_replicas = a.min_replicas;
  target.max_replicas = a.max_replicas;
  target.try_autoscale = a.autoscale_arm;
  const auto plan = fleetsim::plan_capacity(base, model, trace, target);
  std::printf("%-12s %10s %12s %10s %10s %12s %s\n", "arm", "answered/s",
              "p99(us)", "shed", "max reps", "rep-seconds", "SLO");
  double total_wall = 0;
  for (const auto& arm : plan.arms) {
    const auto& r = arm.result;
    total_wall += r.sim_wall_seconds;
    std::printf("%-12s %10.0f %12.0f %9.2f%% %10zu %12.1f %s\n",
                arm.name.c_str(), r.answered_rps, r.admitted_latency.p99_us,
                100 * r.shed_rate, r.max_replicas_seen,
                arm.cost_replica_seconds, arm.feasible ? "meets" : "misses");
  }
  std::printf("swept %zu arms x %.1fs trace in %.2fs simulator wall time\n",
              plan.arms.size(), serve::trace_span_seconds(trace), total_wall);
  emit(plan.to_json(target), a.json);
  if (plan.attainable()) {
    const auto* best = plan.best_arm();
    std::printf("PLAN: %s is the cheapest config meeting p99 <= %.1fms and "
                "shed <= %.2f%% (%.1f replica-seconds)\n",
                best->name.c_str(), target.p99_ms, 100 * target.max_shed_rate,
                best->cost_replica_seconds);
  } else {
    std::printf("PLAN: target unattainable within %zu..%zu replicas — raise "
                "max-replicas or relax the SLO\n",
                target.min_replicas, target.max_replicas);
  }
  return 0;
}
