// Storage-resident training — the igb-large workflow (Sections 4.3 / 6.4).
//
// When the expanded input exceeds host memory, the pipeline writes per-hop
// feature files and trains by reading contiguous chunks straight from
// storage (the GPUDirect-Storage analogue), with chunk reshuffling keeping
// reads sequential and the double-buffered prefetcher overlapping I/O with
// compute.  This example runs the whole path for real on the igb-large
// analogue: preprocess -> spill to disk -> train from disk -> compare
// against in-memory training.
#include <cstdio>

#include "core/autoconfig.h"
#include "core/precompute.h"
#include "core/sign.h"
#include "core/trainer.h"
#include "graph/dataset.h"

int main() {
  using namespace ppgnn;

  const auto ds = graph::make_dataset(graph::DatasetName::kIgbLargeSim, 0.4);
  std::printf("dataset %s: %zu nodes, %zu edges, %zu-dim features\n",
              ds.name.c_str(), ds.num_nodes(), ds.graph.num_edges(),
              ds.feature_dim());

  // What would the automated configurator do at *paper* scale?
  const core::AutoConfigurator ac(sim::MachineSpec::paper_server(), 1);
  sim::PpModelShape shape;
  shape.kind = sim::PpModelKind::kSign;
  shape.hops = 3;
  shape.feat_dim = ds.paper.feature_dim;
  shape.hidden = 512;
  shape.classes = ds.paper.classes;
  const auto plan = ac.plan(shape, ds.paper);
  std::printf("\nautoconfig @ paper scale: %s\n", plan.summary().c_str());

  // Run the decided strategy for real on the analogue.
  core::PrecomputeConfig pc;
  pc.hops = 3;
  const auto pre = core::precompute(ds.graph, ds.features, pc);
  std::printf("\npreprocessed %zu hops in %.2f s; expanded training input "
              "%.1f MB\n",
              pre.num_hops(), pre.preprocess_seconds,
              static_cast<double>(ds.split.train.size() * pre.row_bytes()) /
                  1e6);

  auto train_with = [&](core::LoadingMode mode, const char* label) {
    Rng rng(1);
    core::SignConfig sc;
    sc.feat_dim = ds.feature_dim();
    sc.hops = 3;
    sc.hidden = 96;
    sc.classes = ds.num_classes;
    sc.dropout = 0.3f;
    core::Sign model(sc, rng);
    core::PpTrainConfig tc;
    tc.epochs = 10;
    tc.batch_size = 512;
    tc.chunk_size = 512;
    tc.mode = mode;
    tc.storage_dir = "/tmp/ppgnn_igb_large_store";
    const auto r = core::train_pp(model, pre, ds, tc);
    std::printf("%-28s test acc %.3f, %.3f s/epoch\n", label,
                r.history.test_at_best_val(), r.history.mean_epoch_seconds());
  };

  std::printf("\n");
  train_with(core::LoadingMode::kStorageChunk,
             "disk store + chunk reshuffle");
  train_with(core::LoadingMode::kChunkPrefetch,
             "in-memory + chunk reshuffle");
  std::printf("\nSame chunk-reshuffled batch order => identical accuracy; "
              "the storage path adds only I/O latency that the prefetcher "
              "mostly hides.\n");
  return 0;
}
