// Sampling-based MP-GNN training with all six samplers — the three
// families the paper characterizes (Section 2.3) on one analogue:
// node-wise (Neighbor, LABOR), layer-wise (FastGCN, LADIES) and graph-wise
// (SAINT, ClusterGCN).
//
// Shows the trade-offs that motivate PP-GNNs: node-wise samplers fetch far
// more feature rows per epoch (neighbor explosion) while layer/graph-wise
// samplers bound the fetch volume but give up accuracy (FastGCN most, its
// frontier-blind draws being what LADIES fixed).  A PP-GNN (SIGN) run is
// included for reference: it touches each training row exactly once per
// epoch.
#include <cstdio>

#include "core/precompute.h"
#include "core/sign.h"
#include "core/trainer.h"
#include "graph/dataset.h"
#include "mpgnn/mp_trainer.h"
#include "sampling/clustergcn.h"
#include "sampling/fastgcn.h"
#include "sampling/labor.h"
#include "sampling/ladies.h"
#include "sampling/neighbor.h"
#include "sampling/saint.h"

int main() {
  using namespace ppgnn;

  const auto ds = graph::make_dataset(graph::DatasetName::kProductsSim, 0.5);
  std::printf("dataset %s: %zu nodes, %zu edges, %zu classes\n\n",
              ds.name.c_str(), ds.num_nodes(), ds.graph.num_edges(),
              ds.num_classes);
  std::printf("%-10s %10s %16s %14s\n", "sampler", "test acc",
              "rows fetched/ep", "edges/ep");

  const std::size_t layers = 3;
  const std::vector<int> fanouts{15, 10, 5};

  auto run = [&](const sampling::Sampler& sampler) {
    Rng rng(1);
    mpgnn::SageConfig cfg;
    cfg.in_dim = ds.feature_dim();
    cfg.hidden_dim = 64;
    cfg.out_dim = ds.num_classes;
    cfg.num_layers = layers;
    cfg.dropout = 0.3f;
    mpgnn::GraphSage model(cfg, rng);
    mpgnn::MpTrainConfig tc;
    tc.epochs = 20;
    tc.batch_size = 128;   // products' train split is tiny (8%); small
    tc.lr = 1e-2f;         // batches + the paper's higher lr keep the
    tc.eval_every = 4;     // samplers from being optimizer-step starved

    const auto r = mpgnn::train_mp(model, ds, sampler, tc);
    std::printf("%-10s %10.3f %16zu %14zu\n", sampler.name().c_str(),
                r.history.test_at_best_val(),
                r.sampler_stats.input_rows / tc.epochs,
                r.sampler_stats.edges / tc.epochs);
  };

  run(sampling::NeighborSampler(fanouts));
  run(sampling::LaborSampler(fanouts));
  run(sampling::FastGcnSampler(layers, 512));
  run(sampling::LadiesSampler(layers, 512));
  run(sampling::SaintNodeSampler(layers, 512));
  run(sampling::ClusterGcnSampler(layers, 16, 2));

  // PP-GNN reference: one pass over the expanded training rows.
  core::PrecomputeConfig pc;
  pc.hops = layers;
  const auto pre = core::precompute(ds.graph, ds.features, pc);
  Rng rng(1);
  core::SignConfig sc;
  sc.feat_dim = ds.feature_dim();
  sc.hops = layers;
  sc.hidden = 96;
  sc.classes = ds.num_classes;
  sc.dropout = 0.3f;
  core::Sign model(sc, rng);
  core::PpTrainConfig tc;
  tc.epochs = 20;
  tc.batch_size = 512;
  const auto r = core::train_pp(model, pre, ds, tc);
  std::printf("%-10s %10.3f %16zu %14s  (pre-propagated, %zu hops)\n",
              "SIGN (PP)", r.history.test_at_best_val(),
              ds.split.train.size(), "-", pc.hops);
  std::printf("\nNode-wise samplers re-fetch overlapping neighborhoods every "
              "batch; the PP-GNN reads each training row once.\n");
  return 0;
}
