// Config-file-driven training — the C++ port of the paper artifact's
// model_cfg.json workflow (Appendix J: "modify model_cfg.json to explore
// different models and hyperparameter settings").
//
//   ./build/examples/example_train_cli                 # built-in default
//   ./build/examples/example_train_cli my_cfg.json     # your config
//   ./build/examples/example_train_cli --print-config  # show the schema
//
// The config selects dataset, model (SGC/SSGC/SIGN/HOGA/GAMLP), propagation
// operator (sym/rw/ppr/heat), hop count and the loading strategy of
// Section 4 (baseline / fused / prefetch / chunk / storage), then reports
// accuracy, macro-F1, a per-phase time breakdown, and the confusion matrix
// of the largest classes.
#include <cstdio>
#include <string>

#include "core/eval_metrics.h"
#include "core/run_config.h"

namespace {

constexpr const char* kDefaultConfig = R"({
  "dataset": "pokec",
  "scale": 0.25,
  "method": "HOGA",
  "hops": 3,
  "hidden": 64,
  "op": "sym",
  "epochs": 20,
  "batch_size": 256,
  "lr": 0.01,
  "dropout": 0.3,
  "loading": "chunk",
  "chunk_size": 256,
  "seed": 1
})";

}  // namespace

int main(int argc, char** argv) {
  using namespace ppgnn;

  if (argc > 1 && std::string(argv[1]) == "--print-config") {
    std::printf("default config (all keys optional):\n%s\n", kDefaultConfig);
    return 0;
  }

  core::RunConfig cfg;
  try {
    cfg = (argc > 1) ? core::run_config_from_file(argv[1])
                     : core::run_config_from_string(kDefaultConfig);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "config error: %s\n", e.what());
    return 1;
  }
  std::printf("run: %s\n", cfg.summary().c_str());

  const auto ds = graph::make_dataset(cfg.dataset_name(), cfg.scale);
  std::printf("dataset %s: %zu nodes, %zu edges, %zu classes\n",
              ds.name.c_str(), ds.num_nodes(), ds.graph.num_edges(),
              ds.num_classes);

  const auto pre =
      core::precompute(ds.graph, ds.features, cfg.precompute_config());
  std::printf("preprocessing: %zu hops via %s in %.3f s\n", pre.num_hops(),
              cfg.op.c_str(), pre.preprocess_seconds);

  Rng rng(cfg.seed);
  auto model = cfg.make_model(ds, rng);
  const auto result = core::train_pp(*model, pre, ds, cfg.train_config());

  const auto& h = result.history;
  std::printf("\n%s: val %.4f  test@best-val %.4f  convergence epoch %zu\n",
              model->name().c_str(), h.peak_val_acc(), h.test_at_best_val(),
              h.convergence_epoch());
  std::printf("mean epoch %.4f s; last epoch: load %.4f fwd %.4f bwd %.4f "
              "opt %.4f s\n",
              h.mean_epoch_seconds(), h.epochs.back().data_loading_seconds,
              h.epochs.back().forward_seconds,
              h.epochs.back().backward_seconds,
              h.epochs.back().optimizer_seconds);

  // Detailed test-set metrics (beyond the paper's accuracy-only tables).
  const Tensor test_batch = pre.expanded_rows(ds.split.test);
  const Tensor logits = model->forward(test_batch, /*train=*/false);
  const auto cm = core::confusion_matrix(logits, ds.labels_at(ds.split.test));
  std::printf("\ntest metrics: acc %.4f  macro-F1 %.4f (micro-F1 == acc)\n",
              cm.accuracy(), cm.macro_f1());
  const std::size_t show = std::min<std::size_t>(cm.num_classes, 6);
  std::printf("per-class (first %zu): ", show);
  for (std::size_t c = 0; c < show; ++c) {
    std::printf("F1[%zu]=%.3f ", c, cm.f1(c));
  }
  std::printf("\n");
  return 0;
}
