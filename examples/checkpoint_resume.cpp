// Interrupt-and-resume training — the workflow behind the paper's cost
// amortization story (Section 3.5: one preprocessing pass feeds tens or
// hundreds of training runs; long runs must be restartable).
//
// The example trains HOGA for 12 epochs, "crashes" after 6, then resumes
// from the checkpoint in a fresh model instance and shows the resumed
// trajectory continuing exactly where the first half stopped (same epoch
// schedule, same Adam moments — see core/checkpoint.h).
#include <cstdio>
#include <filesystem>

#include "core/checkpoint.h"
#include "core/hoga.h"
#include "core/precompute.h"
#include "core/trainer.h"
#include "graph/dataset.h"

int main() {
  using namespace ppgnn;
  const auto ckpt =
      (std::filesystem::temp_directory_path() / "ppgnn_example_ckpt.bin")
          .string();
  std::filesystem::remove(ckpt);

  const auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.25);
  core::PrecomputeConfig pc;
  pc.hops = 3;
  const auto pre = core::precompute(ds.graph, ds.features, pc);
  std::printf("dataset %s, %zu-hop preprocessing in %.2f s\n",
              ds.name.c_str(), pre.num_hops(), pre.preprocess_seconds);

  const auto make_model = [&](Rng& rng) {
    core::HogaConfig cfg;
    cfg.feat_dim = ds.feature_dim();
    cfg.hops = pc.hops;
    cfg.hidden = 64;
    cfg.heads = 2;
    cfg.classes = ds.num_classes;
    cfg.dropout = 0.f;  // deterministic forwards make the match exact
    return core::Hoga(cfg, rng);
  };
  const auto config_for = [&](std::size_t epochs) {
    core::PpTrainConfig tc;
    tc.epochs = epochs;
    tc.batch_size = 256;
    tc.eval_every = 1;
    tc.seed = 3;
    tc.checkpoint_path = ckpt;
    tc.checkpoint_every = 1;
    return tc;
  };

  // Phase 1: run 6 of 12 epochs, checkpointing every epoch.
  {
    Rng rng(1);
    auto model = make_model(rng);
    const auto r = core::train_pp(model, pre, ds, config_for(6));
    std::printf("\nphase 1 (epochs 1-6):\n");
    for (const auto& e : r.history.epochs) {
      std::printf("  epoch %zu: loss %.4f val %.4f\n", e.epoch, e.train_loss,
                  e.val_acc);
    }
  }
  std::printf("-- simulated crash; process state lost, checkpoint kept --\n");

  // Phase 2: a fresh model instance resumes at epoch 7 from the file.
  {
    Rng rng(1);
    auto model = make_model(rng);
    const auto r = core::train_pp(model, pre, ds, config_for(12));
    std::printf("\nphase 2 (resumed):\n");
    for (const auto& e : r.history.epochs) {
      std::printf("  epoch %zu: loss %.4f val %.4f\n", e.epoch, e.train_loss,
                  e.val_acc);
    }
    std::printf("\nresumed run starts at epoch %zu — the schedule, weights "
                "and Adam moments all continue from the checkpoint.\n",
                r.history.epochs.front().epoch);
  }
  std::filesystem::remove(ckpt);
  return 0;
}
