// Quickstart: train a PP-GNN (SIGN) end to end on a synthetic analogue of
// ogbn-products.
//
//   1. generate the dataset (seeded SBM + class-conditional features)
//   2. preprocess: 3-hop feature propagation with the normalized adjacency
//   3. train with the optimized loader (double-buffered prefetching)
//   4. report accuracy, convergence epoch and the time breakdown
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/example_quickstart
#include <cstdio>

#include "core/precompute.h"
#include "core/sign.h"
#include "core/trainer.h"
#include "graph/dataset.h"

int main() {
  using namespace ppgnn;

  // 1. Dataset (scale 0.5 keeps this under a few seconds on a laptop).
  const auto ds = graph::make_dataset(graph::DatasetName::kProductsSim, 0.5);
  std::printf("dataset %s: %zu nodes, %zu edges, %zu feats, %zu classes, "
              "homophily %.2f\n",
              ds.name.c_str(), ds.num_nodes(), ds.graph.num_edges(),
              ds.feature_dim(), ds.num_classes, ds.homophily);

  // 2. One-time preprocessing (Eq. 2): S = {X, BX, B^2X, B^3X}.
  core::PrecomputeConfig pc;
  pc.hops = 3;
  const auto pre = core::precompute(ds.graph, ds.features, pc);
  std::printf("preprocessing: %zu hops in %.3f s (expanded row = %zu B)\n",
              pre.num_hops(), pre.preprocess_seconds, pre.row_bytes());

  // 3. Train SIGN with the optimized data loader.
  Rng rng(1);
  core::SignConfig sc;
  sc.feat_dim = ds.feature_dim();
  sc.hops = pc.hops;
  sc.hidden = 128;
  sc.classes = ds.num_classes;
  sc.dropout = 0.3f;
  core::Sign model(sc, rng);

  core::PpTrainConfig tc;
  tc.epochs = 30;
  tc.batch_size = 256;
  tc.lr = 1e-2f;
  tc.mode = core::LoadingMode::kPrefetch;
  const auto result = core::train_pp(model, pre, ds, tc);

  // 4. Report.
  const auto& h = result.history;
  std::printf("\nfinal: val %.4f  test@best-val %.4f  convergence epoch %zu\n",
              h.peak_val_acc(), h.test_at_best_val(), h.convergence_epoch());
  std::printf("mean epoch time %.4f s over %zu epochs\n",
              h.mean_epoch_seconds(), h.epochs.size());
  const auto& last = h.epochs.back();
  std::printf("last epoch breakdown: load-stall %.4f fwd %.4f bwd %.4f "
              "opt %.4f s\n",
              last.data_loading_seconds, last.forward_seconds,
              last.backward_seconds, last.optimizer_seconds);
  return 0;
}
