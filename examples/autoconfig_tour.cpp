// Automated training configuration (Section 5) across every benchmark.
//
// For each dataset x PP-GNN model, the configurator probes the model's peak
// GPU working set, sizes the expanded input, picks data placement + training
// method, and predicts the epoch time with the pipeline simulator —
// reproducing the paper's placement outcomes: medium graphs and papers100M
// preload to GPU, igb-medium lands in host memory with chunk reshuffling,
// igb-large goes to storage.
#include <cstdio>

#include "core/autoconfig.h"
#include "graph/dataset.h"

int main() {
  using namespace ppgnn;

  for (const int gpus : {1, 4}) {
    std::printf("====== %d GPU(s) ======\n", gpus);
    const core::AutoConfigurator ac(sim::MachineSpec::paper_server(), gpus);
    for (const auto name : graph::all_datasets()) {
      const auto scale = graph::paper_scale(name);
      std::printf("\n%s (%zu nodes, %zu-dim features):\n",
                  graph::to_string(name), scale.nodes, scale.feature_dim);
      for (const auto kind :
           {sim::PpModelKind::kSgc, sim::PpModelKind::kSign,
            sim::PpModelKind::kHoga}) {
        sim::PpModelShape shape;
        shape.kind = kind;
        shape.hops = 3;
        shape.feat_dim = scale.feature_dim;
        shape.hidden = kind == sim::PpModelKind::kHoga ? 256 : 512;
        shape.classes = scale.classes;
        const auto plan = ac.plan(shape, scale);
        std::printf("  %-5s -> %s\n", sim::to_string(kind),
                    plan.summary().c_str());
      }
    }
    std::printf("\n");
  }
  return 0;
}
