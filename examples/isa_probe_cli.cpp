// isa_probe_cli — report the INT8 GEMM kernel ladder on this host.
//
// Prints one row per ladder arm: whether the binary carries the arm
// (compiled), whether this CPU can run it (supported), and which arm the
// runtime dispatch would pick right now (active — honours PPGNN_ISA).
//
//   --require ARM   exit 0 if ARM is supported on this host, 3 if not.
//                   CI matrix legs use this to skip a forced-arm leg on
//                   runners whose CPU lacks the instructions instead of
//                   failing it (see ci.sh).
#include <cstdio>
#include <cstring>

#include "tensor/cpu_features.h"

using namespace ppgnn;

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--require") == 0) {
    Isa arm;
    if (!parse_isa(argv[2], &arm)) {
      std::fprintf(stderr, "unknown ISA arm '%s' (scalar|sse2|avx2|avx512vnni)\n",
                   argv[2]);
      return 2;
    }
    if (!isa_supported(arm)) {
      std::printf("%s: not supported on this host\n", isa_name(arm));
      return 3;
    }
    std::printf("%s: supported\n", isa_name(arm));
    return 0;
  }
  if (argc > 1) {
    std::fprintf(stderr, "usage: %s [--require ARM]\n", argv[0]);
    return 2;
  }

  const Isa active = active_isa();
  std::printf("INT8 GEMM kernel ladder (PPGNN_ISA forces an arm):\n");
  std::printf("  %-12s %-9s %-10s %s\n", "arm", "compiled", "supported",
              "active");
  for (std::size_t i = 0; i < kNumIsa; ++i) {
    const Isa arm = static_cast<Isa>(i);
    std::printf("  %-12s %-9s %-10s %s\n", isa_name(arm),
                isa_compiled(arm) ? "yes" : "no",
                isa_supported(arm) ? "yes" : "no",
                arm == active ? "<- dispatch" : "");
  }
  std::printf("best supported: %s\n", isa_name(best_supported_isa()));
  return 0;
}
