// Model zoo: every PP-GNN in the library, trained on one dataset under one
// shared preprocessing pass — the "amortize preprocessing across model
// adjustments" workflow the paper motivates in Section 3.5.
//
// Trains SGC, SSGC, SIGN, GAMLP and HOGA on the pokec analogue from the
// same 4-hop propagated features and compares parameter count, accuracy,
// convergence epoch and epoch time — the expressivity-vs-cost ladder of
// Section 6.1 plus the two extension models (SSGC, GAMLP).
#include <cstdio>
#include <memory>
#include <vector>

#include "core/gamlp.h"
#include "core/hoga.h"
#include "core/precompute.h"
#include "core/sgc.h"
#include "core/sign.h"
#include "core/ssgc.h"
#include "core/trainer.h"
#include "graph/dataset.h"

int main() {
  using namespace ppgnn;
  const std::size_t hops = 4;

  const auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.25);
  std::printf("dataset %s: %zu nodes, %zu edges\n", ds.name.c_str(),
              ds.num_nodes(), ds.graph.num_edges());

  // One preprocessing pass serves every model below (the one-time cost).
  core::PrecomputeConfig pc;
  pc.hops = hops;
  const auto pre = core::precompute(ds.graph, ds.features, pc);
  std::printf("shared preprocessing: %zu hops in %.3f s\n\n", pre.num_hops(),
              pre.preprocess_seconds);

  const auto make_model =
      [&](const std::string& kind, Rng& rng) -> std::unique_ptr<core::PpModel> {
    const std::size_t f = ds.feature_dim();
    if (kind == "SGC") return std::make_unique<core::Sgc>(f, hops, ds.num_classes, rng);
    if (kind == "SSGC") return std::make_unique<core::Ssgc>(f, hops, ds.num_classes, rng);
    if (kind == "SIGN") {
      core::SignConfig cfg;
      cfg.feat_dim = f; cfg.hops = hops; cfg.hidden = 64;
      cfg.classes = ds.num_classes; cfg.dropout = 0.3f;
      return std::make_unique<core::Sign>(cfg, rng);
    }
    if (kind == "GAMLP") {
      core::GamlpConfig cfg;
      cfg.feat_dim = f; cfg.hops = hops; cfg.hidden = 64;
      cfg.classes = ds.num_classes; cfg.dropout = 0.3f;
      return std::make_unique<core::Gamlp>(cfg, rng);
    }
    core::HogaConfig cfg;
    cfg.feat_dim = f; cfg.hops = hops; cfg.hidden = 64; cfg.heads = 2;
    cfg.classes = ds.num_classes; cfg.dropout = 0.3f;
    return std::make_unique<core::Hoga>(cfg, rng);
  };

  std::printf("%-7s %10s %10s %12s %12s\n", "model", "params", "test acc",
              "conv epoch", "epoch sec");
  for (const std::string kind : {"SGC", "SSGC", "SIGN", "GAMLP", "HOGA"}) {
    Rng rng(7);
    auto model = make_model(kind, rng);
    core::PpTrainConfig tc;
    tc.epochs = 20;
    tc.batch_size = 256;
    tc.lr = 1e-2f;
    tc.eval_every = 2;
    tc.mode = core::LoadingMode::kPrefetch;
    const auto r = core::train_pp(*model, pre, ds, tc);
    std::printf("%-7s %10zu %10.4f %12zu %12.4f\n", kind.c_str(),
                model->num_params(), r.history.test_at_best_val(),
                r.history.convergence_epoch(), r.history.mean_epoch_seconds());
  }
  std::printf("\nExpected: accuracy SGC < SSGC <= SIGN/GAMLP <= HOGA; epoch "
              "time ordered the other way (Table 1's cost ladder).\n");
  return 0;
}
