// serve_cli: online PP-GNN inference serving under heavy-tailed load.
//
// The end-to-end deployment flow the serving subsystem (src/serve/) exists
// for: preprocess a synthetic graph once, ship the model weights through an
// nn/serialize checkpoint (the deployment round trip), stand up an
// InferenceSession behind a MicroBatcher, and hammer it with a Zipf request
// stream from concurrent clients.  Reports sustained throughput and
// p50/p95/p99 latency — the serving-side metrics the training benches never
// measure — plus cache statistics when serving from the file-backed store.
//
// Defaults reproduce the headline check: >= 10k requests/s over a
// 100k-node graph with in-memory features.  Try --source=file
// --cache=lru --cache_frac=0.05 for the storage-backed deployment, where
// the Section-4.1 caching inversion shows up as a high hit rate.
//
//   ./serve_cli [--nodes=100000] [--requests=200000] [--clients=4]
//               [--model=SIGN] [--hops=2] [--feat_dim=32] [--hidden=32]
//               [--max_batch=256] [--max_delay_us=200] [--skew=0.99]
//               [--source=memory|file] [--cache=none|lru|static]
//               [--cache_frac=0.05] [--window=512]
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/precompute.h"
#include "core/sgc.h"
#include "core/sign.h"
#include "graph/generator.h"
#include "loader/cache.h"
#include "loader/storage.h"
#include "serve/feature_source.h"
#include "serve/inference_session.h"
#include "serve/micro_batcher.h"
#include "serve/server_stats.h"
#include "serve/workload.h"

using namespace ppgnn;

namespace {

struct Args {
  std::size_t nodes = 100000;
  std::size_t requests = 200000;
  std::size_t clients = 4;
  std::string model = "SIGN";
  std::size_t hops = 2;
  std::size_t feat_dim = 32;
  std::size_t hidden = 32;
  std::size_t classes = 16;
  std::size_t max_batch = 256;
  long max_delay_us = 200;
  double skew = 0.99;
  std::string source = "memory";
  std::string cache = "none";
  double cache_frac = 0.05;
  std::size_t window = 512;  // in-flight requests per client
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "bad arg: %s (use --key=value)\n", arg.c_str());
      std::exit(2);
    }
    const std::string k = arg.substr(2, eq - 2), v = arg.substr(eq + 1);
    try {
    if (k == "nodes") a.nodes = std::stoul(v);
    else if (k == "requests") a.requests = std::stoul(v);
    else if (k == "clients") a.clients = std::stoul(v);
    else if (k == "model") a.model = v;
    else if (k == "hops") a.hops = std::stoul(v);
    else if (k == "feat_dim") a.feat_dim = std::stoul(v);
    else if (k == "hidden") a.hidden = std::stoul(v);
    else if (k == "classes") a.classes = std::stoul(v);
    else if (k == "max_batch") a.max_batch = std::stoul(v);
    else if (k == "max_delay_us") a.max_delay_us = std::stol(v);
    else if (k == "skew") a.skew = std::stod(v);
    else if (k == "source") a.source = v;
    else if (k == "cache") a.cache = v;
    else if (k == "cache_frac") a.cache_frac = std::stod(v);
    else if (k == "window") a.window = std::stoul(v);
    else { std::fprintf(stderr, "unknown flag: --%s\n", k.c_str()); std::exit(2); }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad value for --%s: %s\n", k.c_str(), v.c_str());
      std::exit(2);
    }
  }
  if (a.nodes == 0 || a.requests == 0 || a.clients == 0 || a.max_batch == 0 ||
      a.window == 0) {
    std::fprintf(stderr,
                 "nodes, requests, clients, max_batch and window must be "
                 "positive\n");
    std::exit(2);
  }
  return a;
}

// Per-run scratch dir so concurrent serve_cli runs never share state.
std::string scratch_dir() {
  char tmpl[] = "/tmp/serve_cli.XXXXXX";
  if (!::mkdtemp(tmpl)) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  return tmpl;
}

std::unique_ptr<core::PpModel> make_model(const Args& a, std::uint64_t seed) {
  Rng rng(seed);
  if (a.model == "SGC") {
    return std::make_unique<core::Sgc>(a.feat_dim, a.hops, a.classes, rng);
  }
  if (a.model == "SIGN") {
    core::SignConfig cfg;
    cfg.feat_dim = a.feat_dim;
    cfg.hops = a.hops;
    cfg.hidden = a.hidden;
    cfg.classes = a.classes;
    cfg.mlp_layers = 2;
    cfg.dropout = 0.f;
    return std::make_unique<core::Sign>(cfg, rng);
  }
  std::fprintf(stderr, "unknown --model=%s (SGC|SIGN)\n", a.model.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);

  // --- Offline: graph, features, one preprocessing pass. -----------------
  std::printf("=== serve_cli: online PP-GNN serving ===\n");
  graph::SbmConfig sc;
  sc.num_nodes = a.nodes;
  sc.num_classes = a.classes;
  sc.avg_degree = 10.0;
  sc.degree_power = 1.6;  // heavy-tailed hubs, like real serving graphs
  sc.seed = 11;
  const auto sbm = graph::generate_sbm(sc);
  graph::FeatureConfig fc;
  fc.dim = a.feat_dim;
  const Tensor x = graph::generate_features(sbm.labels, a.classes, fc);
  core::PrecomputeConfig pc;
  pc.hops = a.hops;
  const auto pre = core::precompute(sbm.graph, x, pc);
  std::printf("graph: %zu nodes, %zu edges; precompute: %zu hops in %.2fs "
              "(%.1f MB expanded)\n",
              sbm.graph.num_nodes(), sbm.graph.num_edges(), pre.num_hops(),
              pre.preprocess_seconds,
              static_cast<double>(pre.total_bytes()) / (1024 * 1024));

  // --- Deployment round trip: weights out through a checkpoint, into a
  // fresh process-side model.  ---------------------------------------------
  const std::string scratch = scratch_dir();
  const std::string ckpt = scratch + "/model.ckpt";
  {
    auto trained = make_model(a, 7);
    serve::save_deployed_model(*trained, ckpt);
  }
  auto model = make_model(a, 1234);  // different init, overwritten by load
  serve::load_deployed_model(*model, ckpt);
  std::printf("model: %s, %zu params (checkpoint round trip via %s)\n",
              model->name().c_str(), model->num_params(), ckpt.c_str());

  // --- Feature source: in-memory or file-backed, optionally cached. ------
  serve::ZipfWorkloadConfig wc;
  wc.num_nodes = a.nodes;
  wc.num_requests = a.requests;
  wc.skew = a.skew;
  wc.seed = 31;
  std::unique_ptr<serve::FeatureSource> source;
  serve::CachedSource* cached = nullptr;
  if (a.source == "memory") {
    source = std::make_unique<serve::MemorySource>(pre);
  } else if (a.source == "file") {
    auto file = std::make_unique<serve::FileStoreSource>(
        loader::FeatureFileStore::create(scratch + "/store",
                                         pre.hop_features));
    if (a.cache == "none") {
      source = std::move(file);
    } else {
      const auto cap = static_cast<std::size_t>(
          static_cast<double>(a.nodes) * a.cache_frac);
      std::unique_ptr<loader::RowCache> policy;
      std::vector<std::int64_t> warm_rows;
      if (a.cache == "lru") {
        policy = std::make_unique<loader::LruCache>(cap == 0 ? 1 : cap);
      } else if (a.cache == "static") {
        warm_rows = serve::zipf_hot_set(wc, cap);
        policy = std::make_unique<loader::StaticCache>(warm_rows);
      } else {
        std::fprintf(stderr, "unknown --cache=%s\n", a.cache.c_str());
        return 2;
      }
      auto c = std::make_unique<serve::CachedSource>(std::move(file),
                                                     std::move(policy));
      if (!warm_rows.empty()) c->warm(warm_rows);
      cached = c.get();
      source = std::move(c);
    }
  } else {
    std::fprintf(stderr, "unknown --source=%s (memory|file)\n",
                 a.source.c_str());
    return 2;
  }
  // The cache only fronts the file store; report the effective config.
  std::printf("features: %s source, cache=%s\n", source->kind(),
              cached ? a.cache.c_str() : "none");

  // --- Serve the stream from concurrent clients. --------------------------
  serve::InferenceSession session(std::move(model), std::move(source));
  serve::MicroBatchConfig mc;
  mc.max_batch_size = a.max_batch;
  mc.max_delay = std::chrono::microseconds(a.max_delay_us);
  serve::ServerStats stats;
  serve::MicroBatcher batcher(session, mc, &stats);

  const auto stream = serve::zipf_stream(wc);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  const std::size_t shard = (stream.size() + a.clients - 1) / a.clients;
  for (std::size_t c = 0; c < a.clients; ++c) {
    clients.emplace_back([&, c] {
      const std::size_t lo = c * shard;
      const std::size_t hi = std::min(stream.size(), lo + shard);
      // Open-loop-ish client: keep up to `window` requests in flight.
      std::deque<std::future<std::vector<float>>> inflight;
      for (std::size_t i = lo; i < hi; ++i) {
        if (inflight.size() >= a.window) {
          inflight.front().get();
          inflight.pop_front();
        }
        inflight.push_back(batcher.submit(stream[i]));
      }
      while (!inflight.empty()) {
        inflight.front().get();
        inflight.pop_front();
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // --- Report. -------------------------------------------------------------
  const auto s = stats.summary();
  const double rps = static_cast<double>(stream.size()) / wall;
  std::printf("\n%-12s %12s %10s %10s %10s %10s %10s\n", "requests", "req/s",
              "p50(us)", "p95(us)", "p99(us)", "mean(us)", "batch");
  std::printf("%-12zu %12.0f %10.0f %10.0f %10.0f %10.0f %10.1f\n",
              stream.size(), rps, s.p50_us, s.p95_us, s.p99_us, s.mean_us,
              stats.mean_batch_size());
  if (cached) {
    const auto cs = cached->stats();
    std::printf("cache: %.1f%% hit rate (%zu reads for %zu accesses)\n",
                100 * cs.hit_rate(), cs.rows_read, cs.accesses);
  }
  std::printf("json: {\"requests\":%zu,\"throughput_rps\":%.0f,"
              "\"latency\":%s,\"mean_batch\":%.1f}\n",
              stream.size(), rps, s.to_json().c_str(),
              stats.mean_batch_size());
  const bool ok = rps >= 10000.0;
  std::printf("\n%s: sustained %.0f req/s (target 10k/s on the default "
              "100k-node config)\n",
              ok ? "PASS" : "FAIL", rps);
  return ok ? 0 : 1;
}
