// serve_cli: online PP-GNN inference serving under heavy-tailed load.
//
// The end-to-end deployment flow the serving subsystem (src/serve/) exists
// for: preprocess a synthetic graph once, ship the model weights through an
// nn/serialize checkpoint (the deployment round trip), stand up N
// InferenceSession replicas behind a ReplicaSet, and hammer them with a
// Zipf request stream from concurrent clients.  Reports sustained
// throughput, p50/p95/p99 latency, per-replica routing/admission counters,
// and cache statistics when serving from the file-backed store.
//
// Replication and admission control:
//   --replicas=N          N full pipelines (model copy + feature source +
//                         dispatcher thread each)
//   --policy=round_robin|least_loaded|cache_affinity
//   --shed-budget-ms=B    queue-delay budget; past it requests are shed
//                         with a retriable Rejected status (0 = off,
//                         blocking backpressure)
//   --low_frac=F          fraction of traffic marked sheddable (kLow)
//
// Precision:
//   --precision=fp32|int8 int8 deploys a quantized checkpoint (~4x less
//                         weight data), quantizes every Linear per output
//                         channel (one immutable int8 copy shared by all
//                         replicas), and — with --source=file — stores hop
//                         rows in the int8 codec, so the same cache byte
//                         budget holds ~4x more rows.  The run reports
//                         top-1 agreement and max |logit error| against an
//                         fp32 reference on a workload sample, and the
//                         PASS/FAIL gate additionally requires >= 99%
//                         top-1 agreement at int8.
//
// The PASS/FAIL gate comes in two flavors.  --gate=absolute (default)
// requires --min_rps sustained (10k/s on the default 100k-node config).
// --gate=relative calibrates a single-replica baseline on this machine
// first and requires the replicated run to hold >= 90% of it — the gate CI
// uses, since an absolute floor flakes on loaded shared runners where the
// machine itself is the variable.  Either gate re-measures once before
// failing (transient noise gets one retry; a real regression fails twice).
//
//   ./serve_cli [--nodes=100000] [--requests=200000] [--clients=4]
//               [--replicas=1] [--policy=round_robin] [--shed-budget-ms=0]
//               [--low_frac=0] [--gate=absolute|relative|none]
//               [--min_rps=10000] [--model=SIGN] [--hops=2] [--feat_dim=32]
//               [--hidden=32] [--max_batch=256] [--max_delay_us=200]
//               [--skew=0.99] [--source=memory|file] [--precision=fp32|int8]
//               [--cache=none|lru|static] [--cache_frac=0.05] [--window=512]
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/precompute.h"
#include "core/sgc.h"
#include "core/sign.h"
#include "core/trainer.h"
#include "graph/generator.h"
#include "loader/cache.h"
#include "loader/storage.h"
#include "serve/feature_source.h"
#include "serve/inference_session.h"
#include "serve/replica_set.h"
#include "serve/router.h"
#include "serve/server_stats.h"
#include "serve/workload.h"

using namespace ppgnn;

namespace {

struct Args {
  std::size_t nodes = 100000;
  std::size_t requests = 200000;
  std::size_t clients = 4;
  std::size_t replicas = 1;
  std::string policy = "round_robin";
  double shed_budget_ms = 0.0;
  double low_frac = 0.0;
  std::string gate = "absolute";
  double min_rps = 10000.0;
  std::string model = "SIGN";
  std::size_t hops = 2;
  std::size_t feat_dim = 32;
  std::size_t hidden = 32;
  std::size_t classes = 16;
  std::size_t max_batch = 256;
  long max_delay_us = 200;
  double skew = 0.99;
  std::string source = "memory";
  std::string precision = "fp32";
  std::string cache = "none";
  double cache_frac = 0.05;
  std::size_t window = 512;  // in-flight requests per client
  std::size_t train_epochs = 2;
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "bad arg: %s (use --key=value)\n", arg.c_str());
      std::exit(2);
    }
    // Accept --shed-budget-ms and --shed_budget_ms alike.
    std::string k = arg.substr(2, eq - 2);
    std::replace(k.begin(), k.end(), '-', '_');
    const std::string v = arg.substr(eq + 1);
    try {
    if (k == "nodes") a.nodes = std::stoul(v);
    else if (k == "requests") a.requests = std::stoul(v);
    else if (k == "clients") a.clients = std::stoul(v);
    else if (k == "replicas") a.replicas = std::stoul(v);
    else if (k == "policy") a.policy = v;
    else if (k == "shed_budget_ms") a.shed_budget_ms = std::stod(v);
    else if (k == "low_frac") a.low_frac = std::stod(v);
    else if (k == "gate") a.gate = v;
    else if (k == "min_rps") a.min_rps = std::stod(v);
    else if (k == "model") a.model = v;
    else if (k == "hops") a.hops = std::stoul(v);
    else if (k == "feat_dim") a.feat_dim = std::stoul(v);
    else if (k == "hidden") a.hidden = std::stoul(v);
    else if (k == "classes") a.classes = std::stoul(v);
    else if (k == "max_batch") a.max_batch = std::stoul(v);
    else if (k == "max_delay_us") a.max_delay_us = std::stol(v);
    else if (k == "skew") a.skew = std::stod(v);
    else if (k == "source") a.source = v;
    else if (k == "precision") a.precision = v;
    else if (k == "cache") a.cache = v;
    else if (k == "cache_frac") a.cache_frac = std::stod(v);
    else if (k == "window") a.window = std::stoul(v);
    else if (k == "train_epochs") a.train_epochs = std::stoul(v);
    else { std::fprintf(stderr, "unknown flag: --%s\n", k.c_str()); std::exit(2); }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad value for --%s: %s\n", k.c_str(), v.c_str());
      std::exit(2);
    }
  }
  if (a.nodes == 0 || a.requests == 0 || a.clients == 0 || a.max_batch == 0 ||
      a.window == 0 || a.replicas == 0) {
    std::fprintf(stderr,
                 "nodes, requests, clients, replicas, max_batch and window "
                 "must be positive\n");
    std::exit(2);
  }
  serve::RoutingPolicy p;
  if (!serve::parse_policy(a.policy, &p)) {
    std::fprintf(stderr,
                 "unknown --policy=%s "
                 "(round_robin|least_loaded|cache_affinity)\n",
                 a.policy.c_str());
    std::exit(2);
  }
  if (a.gate != "absolute" && a.gate != "relative" && a.gate != "none") {
    std::fprintf(stderr, "unknown --gate=%s (absolute|relative|none)\n",
                 a.gate.c_str());
    std::exit(2);
  }
  serve::Precision prec;
  if (!serve::parse_precision(a.precision, &prec)) {
    std::fprintf(stderr, "unknown --precision=%s (fp32|int8)\n",
                 a.precision.c_str());
    std::exit(2);
  }
  if (a.low_frac < 0 || a.low_frac > 1) {
    std::fprintf(stderr, "--low_frac must be in [0,1]\n");
    std::exit(2);
  }
  if (a.shed_budget_ms < 0) {
    std::fprintf(stderr, "--shed-budget-ms must be >= 0 (0 disables)\n");
    std::exit(2);
  }
  return a;
}

// Per-run scratch dir so concurrent serve_cli runs never share state.
std::string scratch_dir() {
  char tmpl[] = "/tmp/serve_cli.XXXXXX";
  if (!::mkdtemp(tmpl)) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  return tmpl;
}

std::unique_ptr<core::PpModel> make_model(const Args& a, std::uint64_t seed) {
  Rng rng(seed);
  if (a.model == "SGC") {
    return std::make_unique<core::Sgc>(a.feat_dim, a.hops, a.classes, rng);
  }
  if (a.model == "SIGN") {
    core::SignConfig cfg;
    cfg.feat_dim = a.feat_dim;
    cfg.hops = a.hops;
    cfg.hidden = a.hidden;
    cfg.classes = a.classes;
    cfg.mlp_layers = 2;
    cfg.dropout = 0.f;
    return std::make_unique<core::Sign>(cfg, rng);
  }
  std::fprintf(stderr, "unknown --model=%s (SGC|SIGN)\n", a.model.c_str());
  std::exit(2);
}

struct RunResult {
  double rps = 0;             // completed requests over wall time
  serve::LatencySummary latency;       // admitted requests only
  serve::AdmissionCounters admission;  // fleet-wide
  double mean_batch = 0;
  double cache_hit_rate = 0;
  std::size_t cache_capacity_rows = 0;  // per-replica rows the byte budget holds
  bool any_cache = false;
  std::uint64_t preads = 0;  // syscalls into the file store (file source)
  std::vector<serve::ReplicaSnapshot> replicas;
};

// Stands up `replicas` pipelines over fresh per-replica sources and drives
// the full stream from a.clients threads.  Self-contained so the relative
// gate can run it twice (1-replica calibration, then the real config).
RunResult run_serving(const Args& a, const core::Preprocessed& pre,
                      const std::string& ckpt, const std::string& scratch,
                      std::size_t replicas,
                      const std::vector<std::int64_t>& stream) {
  serve::ZipfWorkloadConfig wc;
  wc.num_nodes = a.nodes;
  wc.skew = a.skew;
  wc.seed = 31;

  serve::Precision prec = serve::Precision::kFp32;
  serve::parse_precision(a.precision, &prec);
  const auto codec = prec == serve::Precision::kInt8
                         ? loader::RowCodec::kInt8
                         : loader::RowCodec::kFp32;
  // The cache byte budget is always denominated in fp32 row bytes
  // (cache_frac of the fp32 resident set), so int8's smaller stored rows
  // buy proportionally more resident rows — the capacity claim under test.
  const std::size_t fp32_row_bytes =
      (pre.num_hops() + 1) * pre.feat_dim() * sizeof(float);
  const std::size_t budget_bytes =
      std::max<std::size_t>(1, static_cast<std::size_t>(
          static_cast<double>(a.nodes) * a.cache_frac)) * fp32_row_bytes;

  // One CachedSource per replica (each with a private RowCache — the shard
  // cache_affinity specializes); raw pointers retained for stats only.
  std::vector<const serve::CachedSource*> caches;
  std::vector<const loader::FeatureFileStore*> stores;
  std::size_t cache_capacity_rows = 0;
  const auto make_source =
      [&](std::size_t) -> std::unique_ptr<serve::FeatureSource> {
    if (a.source == "memory") {
      return std::make_unique<serve::MemorySource>(pre);
    }
    auto file = std::make_unique<serve::FileStoreSource>(
        loader::FeatureFileStore::open(scratch + "/store", pre.num_nodes(),
                                       pre.num_hops() + 1, pre.feat_dim(),
                                       codec));
    stores.push_back(&file->store());
    const std::size_t stored_row_bytes = file->store().row_bytes();
    if (a.cache == "none") return file;
    std::unique_ptr<loader::RowCache> policy;
    std::vector<std::int64_t> warm_rows;
    if (a.cache == "lru") {
      policy = std::make_unique<loader::LruCache>(budget_bytes,
                                                  stored_row_bytes);
    } else {  // "static", validated in main
      warm_rows = serve::zipf_hot_set(wc, budget_bytes / stored_row_bytes);
      policy = std::make_unique<loader::StaticCache>(warm_rows,
                                                     stored_row_bytes);
    }
    cache_capacity_rows = policy->capacity();
    auto c = std::make_unique<serve::CachedSource>(std::move(file),
                                                   std::move(policy));
    if (!warm_rows.empty()) c->warm(warm_rows);
    caches.push_back(c.get());
    return c;
  };

  auto sessions = serve::make_replica_sessions(
      replicas, ckpt, [&](std::size_t i) { return make_model(a, 1000 + i); },
      make_source, prec);

  serve::ReplicaSetConfig rc;
  rc.precision = prec;
  serve::parse_policy(a.policy, &rc.policy);
  rc.batch.max_batch_size = a.max_batch;
  rc.batch.max_delay = std::chrono::microseconds(a.max_delay_us);
  rc.batch.shed_budget = std::chrono::microseconds(
      static_cast<long>(a.shed_budget_ms * 1000.0));
  serve::ReplicaSet set(std::move(sessions), rc);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  const std::size_t shard = (stream.size() + a.clients - 1) / a.clients;
  for (std::size_t c = 0; c < a.clients; ++c) {
    clients.emplace_back([&, c] {
      const std::size_t lo = c * shard;
      const std::size_t hi = std::min(stream.size(), lo + shard);
      // Open-loop-ish client: keep up to `window` requests in flight.
      // Rejected/shed requests are dropped, as a real retrying client
      // would after marking the response retriable.
      std::deque<std::future<std::vector<float>>> inflight;
      const auto reap_front = [&] {
        try {
          inflight.front().get();
        } catch (const serve::RejectedError&) {
          // shed from the queue after admission — retriable, not fatal
        }
        inflight.pop_front();
      };
      for (std::size_t i = lo; i < hi; ++i) {
        if (inflight.size() >= a.window) reap_front();
        const auto pri = (a.low_frac > 0 &&
                          static_cast<double>(i % 100) < a.low_frac * 100)
                             ? serve::Priority::kLow
                             : serve::Priority::kHigh;
        auto adm = set.try_submit(stream[i], pri);
        if (adm.accepted) inflight.push_back(std::move(adm.result));
      }
      while (!inflight.empty()) reap_front();
    });
  }
  for (auto& t : clients) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  RunResult r;
  r.latency = set.aggregate_latency();
  r.admission = set.aggregate_admission();
  r.mean_batch = set.aggregate_mean_batch_size();
  r.rps = static_cast<double>(r.latency.count) / wall;
  for (std::size_t i = 0; i < set.num_replicas(); ++i) {
    r.replicas.push_back(set.replica_snapshot(i));
  }
  set.stop();
  if (!caches.empty()) {
    r.any_cache = true;
    r.cache_hit_rate = serve::aggregate_cache_stats(caches).hit_rate();
    r.cache_capacity_rows = cache_capacity_rows;
  }
  for (const auto* s : stores) r.preads += s->preads();
  return r;
}

// Top-1 agreement and max |logit error| of the quantized model against the
// fp32 reference, on the workload's own node distribution (first
// `sample_n` stream entries, deduplicated).  Both sessions resolve
// features from RAM so the comparison isolates the numeric path; the
// quantized side goes through the same artifact the fleet deploys from,
// so the reported error includes the checkpoint codec's share.
serve::PrecisionDrift measure_drift(const Args& a,
                                    const core::Preprocessed& pre,
                                    const std::string& fp32_ckpt,
                                    const std::string& deployed_ckpt,
                                    const std::vector<std::int64_t>& stream,
                                    std::size_t sample_n) {
  auto fp32_model = make_model(a, 7);
  serve::load_deployed_model(*fp32_model, fp32_ckpt);
  auto int8_model = make_model(a, 7);
  serve::load_deployed_model(*int8_model, deployed_ckpt);
  core::quantize_int8(*int8_model);
  serve::InferenceSession ref(std::move(fp32_model),
                              std::make_unique<serve::MemorySource>(pre));
  serve::InferenceSession quant(std::move(int8_model),
                                std::make_unique<serve::MemorySource>(pre),
                                serve::Precision::kInt8);
  return serve::compare_precision(ref, quant,
                                  serve::first_unique(stream, sample_n,
                                                      a.nodes));
}

void print_result(const char* label, const RunResult& r) {
  std::printf("\n[%s]\n", label);
  std::printf("%-12s %12s %10s %10s %10s %10s %10s\n", "answered", "req/s",
              "p50(us)", "p95(us)", "p99(us)", "mean(us)", "batch");
  std::printf("%-12zu %12.0f %10.0f %10.0f %10.0f %10.0f %10.1f\n",
              r.latency.count, r.rps, r.latency.p50_us, r.latency.p95_us,
              r.latency.p99_us, r.latency.mean_us, r.mean_batch);
  if (r.admission.rejected + r.admission.shed > 0) {
    std::printf("admission: %zu admitted, %zu rejected, %zu shed "
                "(shed rate %.1f%%)\n",
                r.admission.admitted, r.admission.rejected, r.admission.shed,
                100 * r.admission.shed_rate());
  }
  if (r.replicas.size() > 1) {
    std::printf("%-8s %10s %10s %10s %10s %10s\n", "replica", "routed",
                "batches", "admitted", "shed", "p99(us)");
    for (std::size_t i = 0; i < r.replicas.size(); ++i) {
      const auto& s = r.replicas[i];
      std::printf("%-8zu %10zu %10zu %10zu %10zu %10.0f\n", i, s.routed,
                  s.batch.batches, s.admission.admitted,
                  s.admission.rejected + s.admission.shed, s.latency.p99_us);
    }
  }
  if (r.any_cache) {
    std::printf("cache: %.1f%% aggregate hit rate across replicas "
                "(%zu rows per replica in budget)\n",
                100 * r.cache_hit_rate, r.cache_capacity_rows);
  }
  if (r.preads > 0) {
    std::printf("storage: %llu preads (batched read_rows coalesces "
                "duplicate/adjacent rows)\n",
                static_cast<unsigned long long>(r.preads));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);

  // --- Offline: graph, features, one preprocessing pass. -----------------
  std::printf("=== serve_cli: online PP-GNN serving ===\n");
  graph::SbmConfig sc;
  sc.num_nodes = a.nodes;
  sc.num_classes = a.classes;
  sc.avg_degree = 10.0;
  sc.degree_power = 1.6;  // heavy-tailed hubs, like real serving graphs
  sc.seed = 11;
  const auto sbm = graph::generate_sbm(sc);
  graph::FeatureConfig fc;
  fc.dim = a.feat_dim;
  const Tensor x = graph::generate_features(sbm.labels, a.classes, fc);
  core::PrecomputeConfig pc;
  pc.hops = a.hops;
  const auto pre = core::precompute(sbm.graph, x, pc);
  std::printf("graph: %zu nodes, %zu edges; precompute: %zu hops in %.2fs "
              "(%.1f MB expanded)\n",
              sbm.graph.num_nodes(), sbm.graph.num_edges(), pre.num_hops(),
              pre.preprocess_seconds,
              static_cast<double>(pre.total_bytes()) / (1024 * 1024));

  // --- Deployment: weights out through a checkpoint; every replica loads
  // the same file, so the fleet is bit-identical by construction.  At int8
  // the deployed checkpoint is the quantized section (~4x less weight
  // data) and the feature store uses the int8 row codec. ------------------
  serve::Precision prec = serve::Precision::kFp32;
  serve::parse_precision(a.precision, &prec);
  const std::string scratch = scratch_dir();
  const std::string ckpt = scratch + "/model.ckpt";
  const std::string ckpt_fp32 = scratch + "/model_fp32.ckpt";
  {
    auto trained = make_model(a, 7);
    core::quick_train(*trained, pre, sbm.labels, a.train_epochs);
    serve::save_deployed_model(*trained, ckpt_fp32);  // accuracy reference
    serve::save_deployed_model(*trained, ckpt, prec);
  }
  const auto file_bytes = [](const std::string& p) -> long {
    struct stat st{};
    return ::stat(p.c_str(), &st) == 0 ? static_cast<long>(st.st_size) : 0;
  };
  std::printf("model: %s via %s checkpoint %s (%ld bytes%s)\n",
              a.model.c_str(), serve::precision_name(prec), ckpt.c_str(),
              file_bytes(ckpt),
              prec == serve::Precision::kInt8
                  ? (" vs " + std::to_string(file_bytes(ckpt_fp32)) +
                     " fp32").c_str()
                  : "");
  if (a.source == "file") {
    loader::FeatureFileStore::create(scratch + "/store", pre.hop_features,
                                     prec == serve::Precision::kInt8
                                         ? loader::RowCodec::kInt8
                                         : loader::RowCodec::kFp32);
  } else if (a.source != "memory") {
    std::fprintf(stderr, "unknown --source=%s (memory|file)\n",
                 a.source.c_str());
    return 2;
  }
  if (a.source == "file" && a.cache != "none" && a.cache != "lru" &&
      a.cache != "static") {
    std::fprintf(stderr, "unknown --cache=%s (none|lru|static)\n",
                 a.cache.c_str());
    return 2;
  }
  std::printf("serving: %zu replicas, policy=%s, shed_budget=%.1fms, "
              "source=%s cache=%s precision=%s\n",
              a.replicas, a.policy.c_str(), a.shed_budget_ms,
              a.source.c_str(), a.source == "file" ? a.cache.c_str() : "n/a",
              serve::precision_name(prec));

  serve::ZipfWorkloadConfig wc;
  wc.num_nodes = a.nodes;
  wc.num_requests = a.requests;
  wc.skew = a.skew;
  wc.seed = 31;
  const auto stream = serve::zipf_stream(wc);

  // --- Gate: absolute floor, machine-relative, or none.  Both gating
  // modes re-measure once before failing. ----------------------------------
  double baseline_rps = 0;
  if (a.gate == "relative") {
    // Calibrate this machine: same stream, one replica, default policy.
    const auto base = run_serving(a, pre, ckpt, scratch, 1, stream);
    baseline_rps = base.rps;
    print_result("calibration: 1 replica", base);
  }

  RunResult r = run_serving(a, pre, ckpt, scratch, a.replicas, stream);
  print_result("measured", r);

  // Accuracy column: at int8 the gate also bounds top-1 disagreement
  // against the fp32 reference (>= 99% agreement on a workload sample).
  serve::PrecisionDrift acc;
  if (prec == serve::Precision::kInt8) {
    acc = measure_drift(a, pre, ckpt_fp32, ckpt, stream,
                        std::min<std::size_t>(a.nodes, 2048));
    std::printf("\naccuracy vs fp32: %.2f%% top-1 agreement, max |logit "
                "err| %.4f (%zu-node sample)\n",
                100 * acc.top1_agreement, acc.max_logit_err, acc.sampled);
  }
  const double kMinAgreement = 0.99;
  const bool acc_ok = prec != serve::Precision::kInt8 ||
                      acc.top1_agreement >= kMinAgreement;

  const auto gate_ok = [&](const RunResult& res) {
    if (!acc_ok) return false;  // wrong answers fail regardless of speed
    if (a.gate == "none") return true;
    if (a.gate == "relative") return res.rps >= 0.9 * baseline_rps;
    return res.rps >= a.min_rps;
  };
  bool ok = gate_ok(r);
  // Retry only throughput misses: those are machine noise, while the
  // accuracy comparison is deterministic and would fail identically.
  if (!ok && acc_ok) {
    std::printf("\ngate missed; retrying once (loaded-machine noise gets "
                "one second chance)\n");
    if (a.gate == "relative") {
      // Recalibrate too: if a co-tenant landed load after the first
      // calibration, a stale idle-machine baseline would fail both
      // attempts no matter how healthy the replicated run is.
      const auto base = run_serving(a, pre, ckpt, scratch, 1, stream);
      baseline_rps = base.rps;
      print_result("calibration (retry): 1 replica", base);
    }
    r = run_serving(a, pre, ckpt, scratch, a.replicas, stream);
    print_result("measured (retry)", r);
    ok = gate_ok(r);
  }

  std::printf("\njson: {\"requests\":%zu,\"replicas\":%zu,\"policy\":\"%s\","
              "\"precision\":\"%s\",\"throughput_rps\":%.0f,"
              "\"baseline_rps\":%.0f,\"top1_agreement\":%.4f,"
              "\"max_logit_err\":%.5f,\"preads\":%llu,"
              "\"cache_capacity_rows\":%zu,"
              "\"latency\":%s,\"admission\":%s,\"mean_batch\":%.1f}\n",
              stream.size(), a.replicas, a.policy.c_str(),
              serve::precision_name(prec), r.rps, baseline_rps,
              acc.top1_agreement, acc.max_logit_err,
              static_cast<unsigned long long>(r.preads),
              r.cache_capacity_rows, r.latency.to_json().c_str(),
              r.admission.to_json().c_str(), r.mean_batch);
  if (!acc_ok) {
    std::printf("FAIL: int8 top-1 agreement %.2f%% below the %.0f%% bound\n",
                100 * acc.top1_agreement, 100 * kMinAgreement);
  } else if (a.gate == "relative") {
    std::printf("%s: %zu-replica run sustained %.0f req/s vs single-replica "
                "baseline %.0f (relative gate: >= 90%%)\n",
                ok ? "PASS" : "FAIL", a.replicas, r.rps, baseline_rps);
  } else if (a.gate == "absolute") {
    std::printf("%s: sustained %.0f req/s (absolute gate: %.0f req/s)\n",
                ok ? "PASS" : "FAIL", r.rps, a.min_rps);
  } else {
    std::printf("PASS: gate disabled (sustained %.0f req/s)\n", r.rps);
  }
  return ok ? 0 : 1;
}
