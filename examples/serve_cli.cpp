// serve_cli: online PP-GNN inference serving under heavy-tailed load.
//
// The end-to-end deployment flow the serving subsystem (src/serve/) exists
// for: preprocess a synthetic graph once (ServingTestbed), ship the model
// weights through an nn/serialize checkpoint (the deployment round trip),
// stand up an elastic fleet of InferenceSession replicas behind a
// FleetManager, and hammer them with a Zipf request stream.  Reports
// sustained throughput, p50/p95/p99 latency, per-replica routing/admission
// counters, and cache statistics when serving from the file-backed store.
//
// Replication and admission control:
//   --replicas=N          initial replica count (full pipeline each)
//   --policy=round_robin|least_loaded|cache_affinity
//   --shed-budget-ms=B    queue-delay budget; past it requests are shed
//                         with a retriable Rejected status (0 = off,
//                         blocking backpressure)
//   --low_frac=F          fraction of traffic marked sheddable (kLow)
//
// Autoscaling (the elastic-fleet mode):
//   --autoscale           drive a staged load ramp (0.5x -> 2.5x -> 0.5x of
//                         this machine's single-replica saturation) and let
//                         the FleetManager's controller spawn/retire
//                         replicas from the windowed shed-rate / idle
//                         signals.  Prints one status line per window:
//                         replica count, windowed shed rate, admitted p99.
//   --min-replicas/--max-replicas   autoscale bounds (default 1 / 4)
//   --scale-up-shed=R     spawn when windowed shed rate > R sustained
//                         (default 0.10)
//   --scale-down-idle=F   retire when >= F of ticks see empty queues
//                         (default 0.90)
//   A shed budget is required for the overload signal; --autoscale defaults
//   it to 2ms when unset.
//
// Serving API v2 (the measured path — every fixed-fleet run drives the
// ServeRequest/ServeResponse envelope through a CompletionQueue):
//   --batch-nodes=N       nodes per request envelope (default 1); under
//                         cache_affinity the fleet splits each envelope
//                         into ring-consistent sub-batches and merges
//   --deadline-ms=D       per-request deadline (0 = none); requests whose
//                         deadline is blown at dispatch are shed before
//                         compute, and the run reports the deadline-miss
//                         rate in the result block and JSON
//   --topk=K              answer top-k (class, score) pairs instead of
//                         full logits (0 = full logits)
//
// Multi-tenant serving (src/tenancy/, the v2 envelope path):
//   --tenants=N           tenant population; each envelope is stamped with
//                         a deterministic tenant id (envelope index mod N)
//                         and the fleet front enforces per-tenant contracts
//   --tenant-mix=W,W,..   DWRR fair-share weights, tiled across tenants
//                         ("2,1" with 4 tenants -> weights 2,1,2,1)
//   --tenant-rate=R       token-bucket quota, admitted parts/s per tenant
//                         (0 = unmetered; refusals answer kQuotaExceeded
//                         without touching a replica)
//   --tenant-burst=B      bucket depth in parts (0 = one second of quota)
//   The run prints a per-tenant table (admitted / shed / quota-refused /
//   p50 / p99) from the same aggregate_tenants() merge the cross-process
//   fleet uses, so isolation can be read off any run mode directly.
//
// Trace capture (feeds the fleet simulator, src/fleetsim/):
//   --trace-out=PATH      record every measured-run arrival (offset,
//                         priority, relative deadline, client id, nodes)
//                         to a ppgnn-trace v1 file that fleetsim_cli
//                         --trace=PATH replays offline.  Calibration runs
//                         are not recorded; a gate retry re-records, so
//                         the file always matches the final measured run.
//
// Cross-process serving (src/rpc/, docs/wire-protocol.md):
//   --remote-replicas=N   serve the measured run through N
//                         replica_server_cli PROCESSES (spawned next to
//                         this binary, one Unix socket each) instead of
//                         in-process replicas.  Calibration stays
//                         in-process, so --gate=relative reports the
//                         cross-process overhead directly.
//   --kill-one-mid-run    crash smoke: kill -9 one replica process
//                         mid-run and prove zero envelopes are lost (the
//                         fleet re-routes against the survivors).  Needs
//                         --remote-replicas >= 2.
//   --serve-log=PATH      append the replica servers' stdout/stderr here
//                         (CI uploads it when the smoke fails)
//
// Precision:
//   --precision=fp32|int8 int8 deploys a quantized checkpoint (~4x less
//                         weight data), quantizes every Linear per output
//                         channel (one immutable int8 copy shared by all
//                         replicas, spawned ones included), and — with
//                         --source=file — stores hop rows in the int8
//                         codec, so the same cache byte budget holds ~4x
//                         more rows.  The run reports top-1 agreement and
//                         max |logit error| against an fp32 reference, and
//                         the PASS/FAIL gate additionally requires >= 99%
//                         top-1 agreement at int8.
//
// The PASS/FAIL gate comes in two flavors.  --gate=absolute (default)
// requires --min_rps sustained (10k/s on the default 100k-node config).
// --gate=relative calibrates a single-replica baseline on this machine
// first and requires the measured run to hold >= 90% of it — the gate CI
// uses, since an absolute floor flakes on loaded shared runners where the
// machine itself is the variable.  Under --autoscale the relative gate is
// the interesting one: the ramp averages ~1.17x single-replica saturation,
// so a fleet stuck at min replicas sheds its way to ~0.67x and FAILS while
// a scaling fleet clears 0.9x.  Either gate re-measures once before
// failing (transient noise gets one retry; a real regression fails twice).
//
//   ./serve_cli [--nodes=100000] [--requests=200000] [--clients=4]
//               [--replicas=1] [--policy=round_robin] [--shed-budget-ms=0]
//               [--low_frac=0] [--gate=absolute|relative|none]
//               [--min_rps=10000] [--model=SIGN] [--hops=2] [--feat_dim=32]
//               [--hidden=32] [--max_batch=256] [--max_delay_us=200]
//               [--skew=0.99] [--source=memory|file] [--precision=fp32|int8]
//               [--cache=none|lru|static] [--cache_frac=0.05] [--window=512]
//               [--autoscale] [--min-replicas=1] [--max-replicas=4]
//               [--scale-up-shed=0.1] [--scale-down-idle=0.9]
//               [--trace-out=arrivals.trace]
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/pp_model.h"
#include "loader/cache.h"
#include "loader/storage.h"
#include "rpc/remote_replica.h"
#include "serve/feature_source.h"
#include "serve/inference_session.h"
#include "serve/replica_set.h"
#include "serve/router.h"
#include "serve/serve_api.h"
#include "serve/server_stats.h"
#include "serve/testbed.h"
#include "serve/trace.h"
#include "serve/workload.h"
#include "tenancy/tenant.h"

using namespace ppgnn;

namespace {

struct Args {
  std::size_t nodes = 100000;
  std::size_t requests = 200000;
  std::size_t clients = 4;
  std::size_t replicas = 1;
  std::string policy = "round_robin";
  double shed_budget_ms = 0.0;
  double low_frac = 0.0;
  std::string gate = "absolute";
  double min_rps = 10000.0;
  std::string model = "SIGN";
  std::size_t hops = 2;
  std::size_t feat_dim = 32;
  std::size_t hidden = 32;
  std::size_t classes = 16;
  std::size_t max_batch = 256;
  long max_delay_us = 200;
  double skew = 0.99;
  std::string source = "memory";
  std::string precision = "fp32";
  std::string cache = "none";
  double cache_frac = 0.05;
  std::size_t window = 512;  // in-flight requests per client
  std::size_t train_epochs = 2;
  // Serving API v2 envelope shape.
  std::size_t batch_nodes = 1;
  double deadline_ms = 0.0;  // 0 = no deadline
  std::size_t topk = 0;      // 0 = full logits
  // Autoscaling.
  bool autoscale = false;
  std::size_t min_replicas = 1;
  std::size_t max_replicas = 4;
  double scale_up_shed = 0.10;
  double scale_down_idle = 0.90;
  double ramp_seconds = 6.0;  // staged-trace wall time (2s per phase)
  std::string trace_out;      // record measured-run arrivals here ("" = off)
  // Cross-process serving (src/rpc/).
  std::size_t remote_replicas = 0;  // 0 = in-process replicas
  bool kill_one_mid_run = false;    // crash smoke (needs remote >= 2)
  std::string serve_log;            // replica servers' stdout/stderr
  // Multi-tenant serving (src/tenancy/).
  std::size_t tenants = 1;    // 1 = untenanted (everything tenant 0)
  std::string tenant_mix;     // DWRR weights, comma-separated, tiled
  double tenant_rate = 0.0;   // parts/s quota per tenant (0 = unmetered)
  double tenant_burst = 0.0;  // bucket depth (0 = one second of quota)
};

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "serve_cli: online PP-GNN inference serving under heavy-tailed load\n"
      "\n"
      "Workload / deployment:\n"
      "  --nodes=N             graph size (default 100000)\n"
      "  --requests=N          request stream length (default 200000)\n"
      "  --clients=N           closed-loop client threads (default 4)\n"
      "  --window=N            in-flight envelopes per client (default 512)\n"
      "  --skew=S              Zipf skew of the stream (default 0.99)\n"
      "  --model=SGC|SIGN      architecture (default SIGN)\n"
      "  --hops=K --feat-dim=D --hidden=H --classes=C   model shape\n"
      "  --train-epochs=N      deployment-prep training (default 2)\n"
      "  --precision=fp32|int8 deployed checkpoint precision\n"
      "  --source=memory|file  feature residency (file = FeatureFileStore)\n"
      "  --cache=none|lru|static  row cache over the file store\n"
      "  --cache-frac=F        cache budget as a fraction of the fp32\n"
      "                        resident set (default 0.05)\n"
      "\n"
      "Fleet / admission:\n"
      "  --replicas=N          fixed fleet size (default 1)\n"
      "  --policy=round_robin|least_loaded|cache_affinity\n"
      "  --max-batch=N --max-delay-us=U   micro-batcher knobs\n"
      "  --shed-budget-ms=B    admission queue-delay budget (0 = block)\n"
      "  --low-frac=F          fraction of traffic marked sheddable kLow\n"
      "\n"
      "Envelopes (serving API v2, the measured path):\n"
      "  --batch-nodes=N       nodes per request envelope (default 1)\n"
      "  --deadline-ms=D       per-request deadline (0 = none)\n"
      "  --topk=K              top-k results instead of full logits\n"
      "\n"
      "Cross-process serving (src/rpc/, docs/wire-protocol.md):\n"
      "  --remote-replicas=N   serve through N replica_server_cli\n"
      "                        processes over Unix sockets (0 = in-process)\n"
      "  --kill-one-mid-run    kill -9 one replica mid-run; prove zero\n"
      "                        envelopes lost (needs --remote-replicas>=2)\n"
      "  --serve-log=PATH      append replica server output here\n"
      "\n"
      "Multi-tenant serving (src/tenancy/):\n"
      "  --tenants=N           tenant population (1 = untenanted)\n"
      "  --tenant-mix=W,W,..   DWRR weights, tiled across tenants\n"
      "  --tenant-rate=R       admitted-parts/s quota (0 = unmetered)\n"
      "  --tenant-burst=B      bucket depth in parts (0 = 1s of quota)\n"
      "\n"
      "Autoscaling:\n"
      "  --autoscale           staged 0.5x->2.5x->0.5x ramp, elastic fleet\n"
      "  --min-replicas=N --max-replicas=N   bounds (default 1 / 4)\n"
      "  --scale-up-shed=R --scale-down-idle=F   controller thresholds\n"
      "  --ramp-seconds=S      ramp wall time (default 6)\n"
      "\n"
      "Gate / output:\n"
      "  --gate=absolute|relative|none   PASS/FAIL criterion\n"
      "  --min-rps=R           absolute-gate floor (default 10000)\n"
      "  --trace-out=PATH      record arrivals for fleetsim_cli --trace\n"
      "  --help                this text\n");
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "bad arg: %s (use --key=value or --flag)\n",
                   arg.c_str());
      std::exit(2);
    }
    // Accept --key=value, --key value, and bare boolean --flag; accept
    // --shed-budget-ms and --shed_budget_ms alike.
    const auto eq = arg.find('=');
    std::string k, v;
    if (eq != std::string::npos) {
      k = arg.substr(2, eq - 2);
      v = arg.substr(eq + 1);
    } else {
      k = arg.substr(2);
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        v = argv[++i];
      } else {
        v = "1";  // bare boolean flag
      }
    }
    std::replace(k.begin(), k.end(), '-', '_');
    try {
    if (k == "nodes") a.nodes = std::stoul(v);
    else if (k == "requests") a.requests = std::stoul(v);
    else if (k == "clients") a.clients = std::stoul(v);
    else if (k == "replicas") a.replicas = std::stoul(v);
    else if (k == "policy") a.policy = v;
    else if (k == "shed_budget_ms") a.shed_budget_ms = std::stod(v);
    else if (k == "low_frac") a.low_frac = std::stod(v);
    else if (k == "gate") a.gate = v;
    else if (k == "min_rps") a.min_rps = std::stod(v);
    else if (k == "model") a.model = v;
    else if (k == "hops") a.hops = std::stoul(v);
    else if (k == "feat_dim") a.feat_dim = std::stoul(v);
    else if (k == "hidden") a.hidden = std::stoul(v);
    else if (k == "classes") a.classes = std::stoul(v);
    else if (k == "max_batch") a.max_batch = std::stoul(v);
    else if (k == "max_delay_us") a.max_delay_us = std::stol(v);
    else if (k == "skew") a.skew = std::stod(v);
    else if (k == "source") a.source = v;
    else if (k == "precision") a.precision = v;
    else if (k == "cache") a.cache = v;
    else if (k == "cache_frac") a.cache_frac = std::stod(v);
    else if (k == "window") a.window = std::stoul(v);
    else if (k == "train_epochs") a.train_epochs = std::stoul(v);
    else if (k == "batch_nodes") a.batch_nodes = std::stoul(v);
    else if (k == "deadline_ms") a.deadline_ms = std::stod(v);
    else if (k == "topk") a.topk = std::stoul(v);
    else if (k == "autoscale") a.autoscale = v != "0";
    else if (k == "min_replicas") a.min_replicas = std::stoul(v);
    else if (k == "max_replicas") a.max_replicas = std::stoul(v);
    else if (k == "scale_up_shed") a.scale_up_shed = std::stod(v);
    else if (k == "scale_down_idle") a.scale_down_idle = std::stod(v);
    else if (k == "ramp_seconds") a.ramp_seconds = std::stod(v);
    else if (k == "trace_out") a.trace_out = v;
    else if (k == "remote_replicas") a.remote_replicas = std::stoul(v);
    else if (k == "kill_one_mid_run") a.kill_one_mid_run = v != "0";
    else if (k == "serve_log") a.serve_log = v;
    else if (k == "tenants") a.tenants = std::stoul(v);
    else if (k == "tenant_mix") a.tenant_mix = v;
    else if (k == "tenant_rate") a.tenant_rate = std::stod(v);
    else if (k == "tenant_burst") a.tenant_burst = std::stod(v);
    else {
      std::fprintf(stderr, "unknown flag: --%s\n", k.c_str());
      usage(stderr);
      std::exit(2);
    }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad value for --%s: %s\n", k.c_str(), v.c_str());
      std::exit(2);
    }
  }
  if (a.nodes == 0 || a.requests == 0 || a.clients == 0 || a.max_batch == 0 ||
      a.window == 0 || a.replicas == 0) {
    std::fprintf(stderr,
                 "nodes, requests, clients, replicas, max_batch and window "
                 "must be positive\n");
    std::exit(2);
  }
  serve::RoutingPolicy p;
  if (!serve::parse_policy(a.policy, &p)) {
    std::fprintf(stderr,
                 "unknown --policy=%s "
                 "(round_robin|least_loaded|cache_affinity)\n",
                 a.policy.c_str());
    std::exit(2);
  }
  if (a.gate != "absolute" && a.gate != "relative" && a.gate != "none") {
    std::fprintf(stderr, "unknown --gate=%s (absolute|relative|none)\n",
                 a.gate.c_str());
    std::exit(2);
  }
  serve::Precision prec;
  if (!serve::parse_precision(a.precision, &prec)) {
    std::fprintf(stderr, "unknown --precision=%s (fp32|int8)\n",
                 a.precision.c_str());
    std::exit(2);
  }
  if (a.low_frac < 0 || a.low_frac > 1) {
    std::fprintf(stderr, "--low_frac must be in [0,1]\n");
    std::exit(2);
  }
  if (a.shed_budget_ms < 0) {
    std::fprintf(stderr, "--shed-budget-ms must be >= 0 (0 disables)\n");
    std::exit(2);
  }
  if (a.batch_nodes == 0) {
    std::fprintf(stderr, "--batch-nodes must be >= 1\n");
    std::exit(2);
  }
  if (a.deadline_ms < 0) {
    std::fprintf(stderr, "--deadline-ms must be >= 0 (0 = none)\n");
    std::exit(2);
  }
  if (a.autoscale &&
      (a.batch_nodes > 1 || a.deadline_ms > 0 || a.topk > 0)) {
    std::fprintf(stderr,
                 "--batch-nodes/--deadline-ms/--topk drive the fixed-fleet "
                 "envelope path; drop --autoscale to use them\n");
    std::exit(2);
  }
  if (a.remote_replicas > 0 && a.autoscale) {
    std::fprintf(stderr,
                 "--remote-replicas drives the fixed-fleet envelope path; "
                 "drop --autoscale to use it\n");
    std::exit(2);
  }
  if (a.remote_replicas > 0 && a.cache == "static") {
    std::fprintf(stderr,
                 "--cache=static is not available server-side; use "
                 "--cache=lru with --remote-replicas\n");
    std::exit(2);
  }
  if (a.tenants == 0) {
    std::fprintf(stderr, "--tenants must be >= 1 (1 = untenanted)\n");
    std::exit(2);
  }
  if (a.tenant_rate < 0 || a.tenant_burst < 0) {
    std::fprintf(stderr, "--tenant-rate/--tenant-burst must be >= 0\n");
    std::exit(2);
  }
  {
    std::vector<std::uint32_t> w;
    std::string err;
    if (!tenancy::parse_tenant_mix(a.tenant_mix, &w, &err)) {
      std::fprintf(stderr, "bad --tenant-mix: %s\n", err.c_str());
      std::exit(2);
    }
  }
  if (a.autoscale && a.tenants > 1) {
    std::fprintf(stderr,
                 "--tenants drives the fixed-fleet envelope path; drop "
                 "--autoscale to use it\n");
    std::exit(2);
  }
  if (a.kill_one_mid_run && a.remote_replicas < 2) {
    std::fprintf(stderr,
                 "--kill-one-mid-run needs --remote-replicas >= 2 (a "
                 "survivor must be left to re-route onto)\n");
    std::exit(2);
  }
  if (a.autoscale) {
    if (a.min_replicas == 0 || a.max_replicas < a.min_replicas) {
      std::fprintf(stderr,
                   "--autoscale needs 1 <= min-replicas <= max-replicas\n");
      std::exit(2);
    }
    if (a.ramp_seconds < 3.0) {
      std::fprintf(stderr,
                   "--ramp-seconds must be >= 3 (the hysteresis needs a "
                   "phase to react within)\n");
      std::exit(2);
    }
    if (a.shed_budget_ms == 0) {
      a.shed_budget_ms = 2.0;  // the autoscaler needs the overload signal
    }
  }
  return a;
}

struct RunResult {
  double rps = 0;             // completed requests over wall time
  serve::LatencySummary latency;       // admitted requests only
  serve::AdmissionCounters admission;  // fleet-wide
  serve::StageGauges stages;           // per-stage means + shed waits
  std::size_t deadline_missed = 0;     // server-side miss count
  // Client-side envelope accounting (v2 path).
  std::size_t envelopes = 0;
  std::size_t envelopes_ok = 0;
  std::size_t envelopes_missed = 0;  // status kDeadlineExceeded
  std::size_t envelopes_shed = 0;    // status kShed
  std::size_t envelopes_quota = 0;   // status kQuotaExceeded
  // Per-tenant slices (fleet merge + front quota ledger); empty untenanted.
  std::vector<serve::TenantStat> tenants;
  std::size_t quota_refused_parts = 0;  // front-gate refusals, in parts
  double deadline_miss_rate() const {
    return envelopes ? static_cast<double>(envelopes_missed) /
                           static_cast<double>(envelopes)
                     : 0.0;
  }
  double mean_batch = 0;
  double cache_hit_rate = 0;
  std::size_t cache_capacity_rows = 0;  // per-replica rows the byte budget holds
  bool any_cache = false;
  std::uint64_t preads = 0;  // syscalls into the file store (file source)
  // Client-side transport counters, all-zero unless remote (rpc/buffer.h).
  rpc::RpcStats rpc;
  std::vector<serve::ReplicaSnapshot> replicas;
  // Autoscale runs only.
  std::size_t max_replicas_seen = 0;
  double replica_seconds = 0;       // provisioned capacity integral
  double idle_replica_seconds = 0;  // provisioned while queues sat empty
  std::vector<serve::FleetEvent> events;
};

// Source/cache wiring shared by every run mode: one private source per
// replica; raw pointers retained for stats only (reads happen after the
// fleet stops — the controller thread that could mutate these lists via a
// spawn is joined by then).
struct SourceFactory {
  const Args& a;
  const serve::ServingTestbed& tb;
  std::vector<const serve::CachedSource*> caches;
  std::vector<const loader::FeatureFileStore*> stores;
  std::size_t cache_capacity_rows = 0;
  std::size_t budget_bytes = 0;

  SourceFactory(const Args& args, const serve::ServingTestbed& testbed)
      : a(args), tb(testbed) {
    // The cache byte budget is always denominated in fp32 row bytes
    // (cache_frac of the fp32 resident set), so int8's smaller stored rows
    // buy proportionally more resident rows — the capacity claim under
    // test.
    const std::size_t fp32_row_bytes =
        (tb.pre().num_hops() + 1) * tb.pre().feat_dim() * sizeof(float);
    budget_bytes =
        std::max<std::size_t>(1, static_cast<std::size_t>(
            static_cast<double>(a.nodes) * a.cache_frac)) * fp32_row_bytes;
  }

  std::unique_ptr<serve::FeatureSource> operator()(std::size_t) {
    if (a.source == "memory") return tb.memory_source();
    auto file = tb.file_source();
    stores.push_back(&file->store());
    const std::size_t stored_row_bytes = file->store().row_bytes();
    if (a.cache == "none") return file;
    std::unique_ptr<loader::RowCache> policy;
    std::vector<std::int64_t> warm_rows;
    if (a.cache == "lru") {
      policy = std::make_unique<loader::LruCache>(budget_bytes,
                                                  stored_row_bytes);
    } else {  // "static", validated in main
      warm_rows = serve::zipf_hot_set(tb.workload(0),
                                      budget_bytes / stored_row_bytes);
      policy = std::make_unique<loader::StaticCache>(warm_rows,
                                                     stored_row_bytes);
    }
    cache_capacity_rows = policy->capacity();
    auto c = std::make_unique<serve::CachedSource>(std::move(file),
                                                   std::move(policy));
    if (!warm_rows.empty()) c->warm(warm_rows);
    caches.push_back(c.get());
    return c;
  }
};

serve::FleetConfig fleet_config(const Args& a, bool with_autoscale,
                                const tenancy::TenantRegistry* tenants =
                                    nullptr) {
  serve::FleetConfig fc;
  fc.tenants = tenants;
  serve::parse_policy(a.policy, &fc.policy);
  serve::parse_precision(a.precision, &fc.precision);
  fc.batch.max_batch_size = a.max_batch;
  fc.batch.max_delay = std::chrono::microseconds(a.max_delay_us);
  fc.batch.shed_budget = std::chrono::microseconds(
      static_cast<long>(a.shed_budget_ms * 1000.0));
  fc.stats_window = std::chrono::milliseconds(250);
  if (with_autoscale) {
    fc.autoscale.enabled = true;
    fc.autoscale.min_replicas = a.min_replicas;
    fc.autoscale.max_replicas = a.max_replicas;
    fc.autoscale.scale_up_shed = a.scale_up_shed;
    fc.autoscale.scale_down_idle = a.scale_down_idle;
    // Reaction path sized to seconds-long ramp phases: sustain within one
    // stats window, cooldown well under a phase so the fleet can take a
    // second step while the overload still stands.
    fc.autoscale.sustain = std::chrono::milliseconds(300);
    fc.autoscale.idle_window = std::chrono::milliseconds(800);
    fc.autoscale.cooldown = std::chrono::milliseconds(1000);
  }
  return fc;
}

void finish_result(RunResult& r, serve::FleetManager& fleet,
                   const SourceFactory& sf, double wall) {
  r.latency = fleet.aggregate_latency();
  r.admission = fleet.aggregate_admission();
  r.stages = fleet.aggregate_stages();
  r.deadline_missed = fleet.aggregate_deadline_missed();
  r.mean_batch = fleet.aggregate_mean_batch_size();
  r.rps = static_cast<double>(r.latency.count) / wall;
  // Full fleet history (retired replicas included), read under the fleet's
  // admin lock — indexed per-active-replica reads would race the
  // controller retiring a replica between the size check and the access.
  r.replicas = fleet.fleet_snapshot();
  r.events = fleet.events();
  r.rpc = fleet.aggregate_rpc_stats();
  r.tenants = fleet.aggregate_tenants();
  r.quota_refused_parts = fleet.quota_refused_total();
  fleet.stop();
  if (!sf.caches.empty()) {
    r.any_cache = true;
    r.cache_hit_rate = serve::aggregate_cache_stats(sf.caches).hit_rate();
    r.cache_capacity_rows = sf.cache_capacity_rows;
  }
  for (const auto* s : sf.stores) r.preads += s->preads();
}

// replica_server_cli flags that reproduce this run's per-replica serving
// stack (model, store, batching, cache) in a child process.
std::vector<std::string> remote_server_args(const Args& a,
                                            const serve::ServingTestbed& tb,
                                            std::size_t cache_budget_bytes) {
  std::vector<std::string> v = {
      "--checkpoint=" + tb.checkpoint(),
      "--store=" + tb.store_dir(),
      "--nodes=" + std::to_string(a.nodes),
      "--model=" + a.model,
      "--hops=" + std::to_string(a.hops),
      "--feat-dim=" + std::to_string(a.feat_dim),
      "--hidden=" + std::to_string(a.hidden),
      "--classes=" + std::to_string(a.classes),
      "--precision=" + a.precision,
      "--max-batch=" + std::to_string(a.max_batch),
      "--max-delay-us=" + std::to_string(a.max_delay_us)};
  if (a.shed_budget_ms > 0) {
    v.push_back("--shed-budget-ms=" + std::to_string(a.shed_budget_ms));
  }
  if (a.source == "file" && a.cache == "lru") {
    v.push_back("--cache=lru");
    v.push_back("--cache-mb=" +
                std::to_string(static_cast<double>(cache_budget_bytes) /
                               (1024.0 * 1024.0)));
  }
  return v;
}

// Closed-loop saturation run over a fixed fleet of `replicas` pipelines,
// driven through the v2 envelope API: each client groups its stream shard
// into --batch-nodes envelopes, stamps the --deadline-ms deadline at
// submit time, and reaps merged responses from its own CompletionQueue.
// Self-contained so the relative gate can run it twice (1-replica
// calibration, then the real config).
//
// With `remote`, the same run is served by `replicas` replica_server_cli
// PROCESSES (fork/exec'd next to this binary, one Unix socket each) behind
// the identical FleetManager front — the measured delta against an
// in-process run of the same shape IS the wire + process-boundary
// overhead.  --kill-one-mid-run additionally SIGKILLs the first replica
// once the storm is up; the run completing at all proves re-routing lost
// nothing (a lost envelope would hang its client's drain loop forever).
RunResult run_serving(const Args& a, const serve::ServingTestbed& tb,
                      std::size_t replicas,
                      const std::vector<std::int64_t>& stream,
                      const std::string& trace_path = {},
                      bool remote = false,
                      const tenancy::TenantRegistry* tenants = nullptr) {
  SourceFactory sf(a, tb);
  std::vector<std::shared_ptr<rpc::RemoteReplica>> spawned;
  std::mutex spawned_mu;
  std::unique_ptr<serve::FleetManager> fleet_ptr;
  if (remote) {
    rpc::ReplicaSpawnConfig scfg;
    scfg.socket_dir = tb.dir();
    scfg.log_path = a.serve_log;
    scfg.server_args = remote_server_args(a, tb, sf.budget_bytes);
    fleet_ptr = std::make_unique<serve::FleetManager>(
        [scfg, &spawned, &spawned_mu](std::size_t ordinal) {
          std::string err;
          auto r = rpc::spawn_replica_process(scfg, ordinal, &err);
          if (!r) {
            std::fprintf(stderr, "spawn replica %zu: %s\n", ordinal,
                         err.c_str());
            return std::shared_ptr<rpc::RemoteReplica>();
          }
          std::lock_guard<std::mutex> lk(spawned_mu);
          spawned.push_back(r);
          return r;
        },
        replicas, fleet_config(a, /*with_autoscale=*/false, tenants));
  } else {
    fleet_ptr = std::make_unique<serve::FleetManager>(
        tb.fleet_builder([&sf](std::size_t i) { return sf(i); }), replicas,
        fleet_config(a, /*with_autoscale=*/false, tenants));
  }
  serve::FleetManager& fleet = *fleet_ptr;

  const auto groups = serve::ServingTestbed::group_stream(stream,
                                                          a.batch_nodes);
  const auto deadline_budget =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(a.deadline_ms));
  std::atomic<std::size_t> n_ok{0}, n_missed{0}, n_shed{0}, n_quota{0},
      n_total{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::unique_ptr<serve::TraceRecorder> rec;
  if (!trace_path.empty()) rec = std::make_unique<serve::TraceRecorder>(t0);
  const auto deadline_budget_us =
      static_cast<std::uint64_t>(a.deadline_ms * 1000.0);
  std::vector<std::thread> clients;
  const std::size_t shard = (groups.size() + a.clients - 1) / a.clients;
  for (std::size_t c = 0; c < a.clients; ++c) {
    clients.emplace_back([&, c] {
      const std::size_t lo = c * shard;
      const std::size_t hi = std::min(groups.size(), lo + shard);
      // Closed-loop client: keep up to `window` envelopes in flight.
      // Every submitted envelope produces exactly one response (shed and
      // missed ones included), so reaping is just counting statuses — a
      // real retrying client would resubmit the kShed ones.
      serve::CompletionQueue cq;
      std::size_t inflight = 0, ok = 0, missed = 0, shed = 0, quota = 0;
      const auto count = [&](const serve::ServeResponse& resp) {
        --inflight;
        switch (resp.status) {
          case serve::ServeStatus::kOk:
            ++ok;
            break;
          case serve::ServeStatus::kDeadlineExceeded:
            ++missed;
            break;
          case serve::ServeStatus::kQuotaExceeded:
            // Contract refusal, not overload: a real client backs off to
            // its quota instead of retrying (retry storms are the failure
            // mode quotas exist to stop).
            ++quota;
            break;
          default:
            ++shed;
        }
      };
      serve::ServeResponse resp;
      for (std::size_t i = lo; i < hi; ++i) {
        while (inflight >= a.window) {
          if (cq.wait_for(&resp, std::chrono::milliseconds(100))) {
            count(resp);
          }
        }
        serve::ServeRequest req;
        req.id = i;
        req.nodes = groups[i];
        // Deterministic tenant assignment (envelope index mod population):
        // reproducible across runs and identically recoverable from a
        // recorded trace, unlike the old client-thread-index placeholder.
        req.tenant = a.tenants > 1
                         ? static_cast<std::uint32_t>(i % a.tenants)
                         : 0;
        req.priority = (a.low_frac > 0 &&
                        static_cast<double>(i % 100) < a.low_frac * 100)
                           ? serve::Priority::kLow
                           : serve::Priority::kHigh;
        if (a.deadline_ms > 0) req.deadline = serve::deadline_in(deadline_budget);
        if (a.topk > 0) {
          req.mode = serve::ResultMode::kTopK;
          req.topk = a.topk;
        }
        if (rec) {
          rec->note(std::chrono::steady_clock::now(), req.nodes,
                    req.priority, deadline_budget_us, req.tenant);
        }
        fleet.submit(std::move(req), cq);
        ++inflight;
        while (cq.poll(&resp)) count(resp);
      }
      while (inflight > 0) {
        if (cq.wait_for(&resp, std::chrono::milliseconds(100))) count(resp);
      }
      n_ok.fetch_add(ok);
      n_missed.fetch_add(missed);
      n_shed.fetch_add(shed);
      n_quota.fetch_add(quota);
      n_total.fetch_add(hi > lo ? hi - lo : 0);
    });
  }
  // Crash injection: once the storm is up, kill -9 the first replica.
  // No SIGTERM, no drain — the fleet only learns from the dead socket.
  std::shared_ptr<rpc::RemoteReplica> victim;
  std::thread killer;
  if (remote && a.kill_one_mid_run) {
    {
      std::lock_guard<std::mutex> lk(spawned_mu);
      victim = spawned.front();
    }
    killer = std::thread([victim] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      std::printf("crash smoke: kill -9 replica pid %d\n",
                  static_cast<int>(victim->pid()));
      std::fflush(stdout);
      victim->kill_now();
    });
  }
  for (auto& t : clients) t.join();
  if (killer.joinable()) killer.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  RunResult r;
  r.envelopes = n_total.load();
  r.envelopes_ok = n_ok.load();
  r.envelopes_missed = n_missed.load();
  r.envelopes_shed = n_shed.load();
  r.envelopes_quota = n_quota.load();
  finish_result(r, fleet, sf, wall);
  if (remote) {
    // stop() already drained the children; retire() returns each child's
    // stored exit code (0 = clean drain, 137 = the SIGKILLed victim).
    std::lock_guard<std::mutex> lk(spawned_mu);
    std::printf("cross-process: %zu replica process(es);", spawned.size());
    for (const auto& rep : spawned) std::printf(" rc=%d", rep->retire());
    std::printf("\n");
    if (r.rpc.frames_sent > 0) {
      std::printf("rpc fast path: frames=%llu writev=%llu "
                  "frames/writev=%.2f bytes/syscall=%.0f pool-hit=%.1f%% "
                  "allocs/frame=%.4f\n",
                  static_cast<unsigned long long>(r.rpc.frames_sent),
                  static_cast<unsigned long long>(r.rpc.writev_calls),
                  r.rpc.frames_per_writev(), r.rpc.bytes_per_syscall(),
                  100 * r.rpc.pool_hit_rate(), r.rpc.allocs_per_frame());
    }
    if (victim) {
      const std::size_t answered = r.envelopes_ok + r.envelopes_missed +
                                   r.envelopes_shed + r.envelopes_quota;
      std::printf("crash smoke: %zu/%zu envelopes answered after the kill "
                  "(%zu ok, %zu missed, %zu shed) — %s\n",
                  answered, r.envelopes, r.envelopes_ok, r.envelopes_missed,
                  r.envelopes_shed,
                  answered == r.envelopes ? "zero lost" : "ENVELOPES LOST");
    }
  }
  if (rec) {
    rec->save(trace_path);
    std::printf("trace: %zu arrivals -> %s\n", rec->size(),
                trace_path.c_str());
  }
  return r;
}

// Staged-ramp autoscale run: a paced open-loop client offers
// 0.5x -> 2.5x -> 0.5x of `baseline_rps` while the fleet's controller
// reacts to the windowed signals.  One status line per stats window.
// The trace is denominated in WALL TIME (--ramp-seconds), not request
// count: the hysteresis needs phases measured in seconds to react inside,
// so the stream is sized to the measured baseline instead of the other
// way around.
RunResult run_autoscale(const Args& a, const serve::ServingTestbed& tb,
                        double baseline_rps,
                        const std::string& trace_path = {}) {
  SourceFactory sf(a, tb);
  const serve::FleetConfig fc = fleet_config(a, /*with_autoscale=*/true);
  serve::FleetManager fleet(
      tb.fleet_builder([&sf](std::size_t i) { return sf(i); }),
      a.min_replicas, fc);

  const double total_seconds = a.ramp_seconds;
  const auto stream = tb.stream(
      static_cast<std::size_t>(serve::StagedRampPacer::kMeanMult *
                               baseline_rps * total_seconds) +
          1,
      53);
  serve::StagedRampPacer pacer(baseline_rps, total_seconds);
  std::printf("\n[autoscale ramp] %.0f -> %.0f -> %.0f req/s offered, "
              "%.1fs per phase, replicas %zu..%zu\n",
              pacer.rate_at(0), pacer.rate_at(pacer.phase_seconds() * 1.5),
              pacer.rate_at(total_seconds), pacer.phase_seconds(),
              a.min_replicas, a.max_replicas);
  std::printf("%-8s %-9s %10s %12s %12s %12s\n", "t(s)", "replicas",
              "offered/s", "win shed", "win p99(us)", "queue");

  RunResult r;
  std::unique_ptr<serve::TraceRecorder> rec;
  if (!trace_path.empty()) {
    rec = std::make_unique<serve::TraceRecorder>(pacer.start());
  }
  std::deque<std::future<std::vector<float>>> inflight;
  const auto reap_front = [&] {
    try {
      inflight.front().get();
    } catch (const serve::RejectedError&) {
    }
    inflight.pop_front();
  };
  const auto t0 = pacer.start();
  auto next_status = t0 + fc.stats_window;
  auto next_sample = t0;
  const auto sample_every = std::chrono::milliseconds(50);
  double last_sample_s = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= next_sample) {
      // Integrate provisioned capacity (replica-seconds) and its idle
      // share (replicas with nothing queued and nothing in service) for
      // the efficiency comparison against fixed-max fleets.
      const double t_s = std::chrono::duration<double>(now - t0).count();
      const std::size_t n = fleet.num_replicas();
      r.max_replicas_seen = std::max(r.max_replicas_seen, n);
      const double dt = t_s - last_sample_s;
      r.replica_seconds += dt * static_cast<double>(n);
      r.idle_replica_seconds +=
          dt * static_cast<double>(fleet.idle_replicas());
      last_sample_s = t_s;
      next_sample = now + sample_every;
    }
    if (now >= next_status) {
      const auto w = fleet.window_stats();
      std::printf("%-8.1f %-9zu %10.0f %11.1f%% %12.0f %12zu\n",
                  std::chrono::duration<double>(now - t0).count(),
                  fleet.num_replicas(),
                  static_cast<double>(w.admission.offered()) /
                      std::chrono::duration<double>(fc.stats_window).count(),
                  100 * w.shed_rate(), w.latency.p99_us,
                  fleet.total_queue_depth());
      std::fflush(stdout);
      next_status = now + fc.stats_window;
    }
    if (!pacer.pace()) break;  // the trace is wall-time-bounded
    const auto pri = (a.low_frac > 0 &&
                      static_cast<double>(i % 100) < a.low_frac * 100)
                         ? serve::Priority::kLow
                         : serve::Priority::kHigh;
    if (rec) {
      rec->note(std::chrono::steady_clock::now(), {stream[i]}, pri,
                /*deadline_us=*/0, /*tenant=*/0);
    }
    auto adm = fleet.try_submit(stream[i], pri);
    if (adm.accepted) inflight.push_back(std::move(adm.result));
    while (inflight.size() > 4096) reap_front();
  }
  while (!inflight.empty()) reap_front();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  finish_result(r, fleet, sf, wall);
  if (rec) {
    rec->save(trace_path);
    std::printf("trace: %zu arrivals -> %s\n", rec->size(),
                trace_path.c_str());
  }
  return r;
}

// Top-1 agreement and max |logit error| of the quantized model against the
// fp32 reference, on the workload's own node distribution (first
// `sample_n` stream entries, deduplicated).  Both sessions resolve
// features from RAM so the comparison isolates the numeric path; the
// quantized side goes through the same artifact the fleet deploys from,
// so the reported error includes the checkpoint codec's share.
serve::PrecisionDrift measure_drift(const serve::ServingTestbed& tb,
                                    const std::vector<std::int64_t>& stream,
                                    std::size_t sample_n) {
  auto fp32_model = tb.make_model(7);
  serve::load_deployed_model(*fp32_model, tb.checkpoint_fp32());
  auto int8_model = tb.make_model(7);
  serve::load_deployed_model(*int8_model, tb.checkpoint());
  core::quantize_int8(*int8_model);
  serve::InferenceSession ref(std::move(fp32_model), tb.memory_source());
  serve::InferenceSession quant(std::move(int8_model), tb.memory_source(),
                                serve::Precision::kInt8);
  return serve::compare_precision(
      ref, quant,
      serve::first_unique(stream, sample_n, tb.config().nodes));
}

void print_result(const char* label, const RunResult& r) {
  std::printf("\n[%s]\n", label);
  std::printf("%-12s %12s %10s %10s %10s %10s %10s\n", "answered", "req/s",
              "p50(us)", "p95(us)", "p99(us)", "mean(us)", "batch");
  std::printf("%-12zu %12.0f %10.0f %10.0f %10.0f %10.0f %10.1f\n",
              r.latency.count, r.rps, r.latency.p50_us, r.latency.p95_us,
              r.latency.p99_us, r.latency.mean_us, r.mean_batch);
  if (r.admission.rejected + r.admission.shed > 0) {
    std::printf("admission: %zu admitted, %zu rejected, %zu shed "
                "(shed rate %.1f%%)\n",
                r.admission.admitted, r.admission.rejected, r.admission.shed,
                100 * r.admission.shed_rate());
  }
  if (r.stages.dispatched > 0) {
    std::printf("stages: admission %.0fus, dispatch %.0fus, compute %.0fus",
                r.stages.mean_admission_us(), r.stages.mean_dispatch_us(),
                r.stages.mean_compute_us());
    if (r.stages.shed_waits > 0) {
      // Shed requests report the wait their clients paid, not zeros.
      std::printf("; shed waited %.0fus (%zu)",
                  r.stages.mean_shed_wait_us(), r.stages.shed_waits);
    }
    std::printf("\n");
  }
  if (r.deadline_missed > 0 || r.envelopes_missed > 0) {
    std::printf("deadlines: %zu/%zu envelopes missed (%.1f%% miss rate, "
                "%zu parts server-side)\n",
                r.envelopes_missed, r.envelopes, 100 * r.deadline_miss_rate(),
                r.deadline_missed);
  }
  if (r.replicas.size() > 1) {
    std::printf("%-8s %6s %-9s %10s %10s %10s %10s %10s\n", "replica",
                "gen", "state", "routed", "batches", "admitted", "shed",
                "p99(us)");
    for (std::size_t i = 0; i < r.replicas.size(); ++i) {
      const auto& s = r.replicas[i];
      std::printf("%-8zu %6llu %-9s %10zu %10zu %10zu %10zu %10.0f\n", i,
                  static_cast<unsigned long long>(s.generation),
                  serve::replica_state_name(s.state), s.routed,
                  s.batch.batches, s.admission.admitted,
                  s.admission.rejected + s.admission.shed, s.latency.p99_us);
    }
  }
  if (!r.events.empty() && r.max_replicas_seen > 0) {
    std::printf("fleet timeline:");
    for (const auto& e : r.events) {
      std::printf(" [%.1fs %s gen %llu -> %zu]", e.t_seconds,
                  e.spawned ? "+" : "-",
                  static_cast<unsigned long long>(e.generation),
                  e.replicas_after);
      if (e.spawned && e.warmed_keys > 0) {
        std::printf(" warmed %zu rows", e.warmed_keys);
        if (e.first_window_hit_rate >= 0) {
          std::printf(" (first-window hit %.1f%%)",
                      100 * e.first_window_hit_rate);
        }
      }
      if (!e.spawned && e.handoff_keys > 0) {
        std::printf(" handed off %zu rows", e.handoff_keys);
        if (e.successor_first_window_hit_rate >= 0) {
          std::printf(" (successor first-window hit %.1f%%)",
                      100 * e.successor_first_window_hit_rate);
        }
      }
    }
    std::printf("\nreplica-seconds: %.1f provisioned, %.1f idle\n",
                r.replica_seconds, r.idle_replica_seconds);
  }
  if (!r.tenants.empty()) {
    std::printf("%-8s %10s %10s %10s %12s %10s %10s\n", "tenant", "admitted",
                "shed", "quota-ref", "samples", "p50(us)", "p99(us)");
    for (const auto& t : r.tenants) {
      std::printf("%-8u %10zu %10zu %10zu %12zu %10.0f %10.0f\n", t.tenant,
                  t.admitted, t.rejected + t.shed, t.quota_refused, t.samples,
                  t.p50_us, t.p99_us);
    }
    if (r.quota_refused_parts > 0 || r.envelopes_quota > 0) {
      std::printf("quota: %zu envelope(s) refused kQuotaExceeded "
                  "(%zu parts) at the fleet front — contract enforcement, "
                  "not overload; excluded from shed rate\n",
                  r.envelopes_quota, r.quota_refused_parts);
    }
  }
  if (r.any_cache) {
    std::printf("cache: %.1f%% aggregate hit rate across replicas "
                "(%zu rows per replica in budget)\n",
                100 * r.cache_hit_rate, r.cache_capacity_rows);
  }
  if (r.preads > 0) {
    std::printf("storage: %llu preads (batched read_rows coalesces "
                "duplicate/adjacent rows)\n",
                static_cast<unsigned long long>(r.preads));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);

  // --- Offline: graph, features, preprocessing, quick_train, deployment
  // checkpoints (+ file store at int8's codec when --source=file) — all
  // shared with bench_serving_latency through ServingTestbed. ------------
  std::printf("=== serve_cli: online PP-GNN serving ===\n");
  serve::Precision prec = serve::Precision::kFp32;
  serve::parse_precision(a.precision, &prec);
  if (a.source != "memory" && a.source != "file") {
    std::fprintf(stderr, "unknown --source=%s (memory|file)\n",
                 a.source.c_str());
    return 2;
  }
  if (a.source == "file" && a.cache != "none" && a.cache != "lru" &&
      a.cache != "static") {
    std::fprintf(stderr, "unknown --cache=%s (none|lru|static)\n",
                 a.cache.c_str());
    return 2;
  }
  serve::TestbedConfig tc;
  tc.nodes = a.nodes;
  tc.feat_dim = a.feat_dim;
  tc.classes = a.classes;
  tc.hops = a.hops;
  tc.hidden = a.hidden;
  tc.model = a.model;
  tc.train_epochs = a.train_epochs;
  tc.precision = prec;
  // Replica server processes always load features from the on-disk store
  // (there is no sharing a memory source across a process boundary).
  tc.create_store = a.source == "file" || a.remote_replicas > 0;
  tc.skew = a.skew;
  const serve::ServingTestbed tb(tc);
  std::printf("graph: %zu nodes, %zu edges; precompute: %zu hops in %.2fs "
              "(%.1f MB expanded)\n",
              tb.sbm().graph.num_nodes(), tb.sbm().graph.num_edges(),
              tb.pre().num_hops(), tb.pre().preprocess_seconds,
              static_cast<double>(tb.pre().total_bytes()) / (1024 * 1024));
  const auto file_bytes = [](const std::string& p) -> long {
    struct stat st{};
    return ::stat(p.c_str(), &st) == 0 ? static_cast<long>(st.st_size) : 0;
  };
  std::printf("model: %s via %s checkpoint %s (%ld bytes%s)\n",
              a.model.c_str(), serve::precision_name(prec),
              tb.checkpoint().c_str(), file_bytes(tb.checkpoint()),
              prec == serve::Precision::kInt8
                  ? (" vs " + std::to_string(file_bytes(tb.checkpoint_fp32())) +
                     " fp32").c_str()
                  : "");
  std::printf("serving: %zu replicas%s, policy=%s, shed_budget=%.1fms, "
              "source=%s cache=%s precision=%s\n",
              a.remote_replicas
                  ? a.remote_replicas
                  : (a.autoscale ? a.min_replicas : a.replicas),
              a.remote_replicas ? " (cross-process)"
                                : (a.autoscale ? " (autoscaling)" : ""),
              a.policy.c_str(), a.shed_budget_ms, a.source.c_str(),
              a.source == "file" ? a.cache.c_str() : "n/a",
              serve::precision_name(prec));
  if (prec == serve::Precision::kInt8) {
    std::printf("kernel: int8 GEMM arm=%s (best supported=%s; PPGNN_ISA "
                "forces)\n",
                isa_name(active_isa()), isa_name(best_supported_isa()));
  }
  if (!a.autoscale) {
    std::printf("envelope: %zu node(s)/request, deadline=%s, results=%s\n",
                a.batch_nodes,
                a.deadline_ms > 0
                    ? (std::to_string(a.deadline_ms) + "ms").c_str()
                    : "none",
                a.topk > 0 ? ("top-" + std::to_string(a.topk)).c_str()
                           : "full logits");
  }

  // --- Tenant contracts (src/tenancy/).  Built once here and passed by
  // pointer so the registry outlives every fleet in the run; calibration
  // stays untenanted (the machine baseline must not be quota-shaped).
  tenancy::TenantRegistry registry;
  const bool tenanted = a.tenants > 1 || a.tenant_rate > 0;
  const tenancy::TenantRegistry* reg = tenanted ? &registry : nullptr;
  if (tenanted) {
    std::vector<std::uint32_t> weights;
    std::string werr;
    tenancy::parse_tenant_mix(a.tenant_mix, &weights, &werr);  // pre-checked
    std::printf("tenants: %zu contract(s)\n", a.tenants);
    for (std::uint32_t t = 0; t < a.tenants; ++t) {
      tenancy::TenantContract c;
      c.rate_per_s = a.tenant_rate;
      c.burst = a.tenant_burst;
      c.weight = weights.empty() ? 1 : weights[t % weights.size()];
      registry.set_contract(t, c);
      std::printf("  tenant %u: %s\n", t, tenancy::describe(c).c_str());
    }
  }

  const auto stream = tb.stream(a.requests);

  // --- Gate: absolute floor, machine-relative, or none.  Both gating
  // modes re-measure once before failing.  Autoscale runs always need the
  // calibration (the ramp is denominated in this machine's single-replica
  // saturation). --------------------------------------------------------
  double baseline_rps = 0;
  if (a.gate == "relative" || a.autoscale) {
    // Calibrate this machine: same stream, one replica, default policy.
    const auto base = run_serving(a, tb, 1, stream);
    baseline_rps = base.rps;
    print_result("calibration: 1 replica", base);
  }

  const bool remote = a.remote_replicas > 0;
  const std::size_t fleet_size = remote ? a.remote_replicas : a.replicas;
  RunResult r =
      a.autoscale
          ? run_autoscale(a, tb, baseline_rps, a.trace_out)
          : run_serving(a, tb, fleet_size, stream, a.trace_out, remote, reg);
  print_result("measured", r);

  // Accuracy column: at int8 the gate also bounds top-1 disagreement
  // against the fp32 reference (>= 99% agreement on a workload sample).
  serve::PrecisionDrift acc;
  if (prec == serve::Precision::kInt8) {
    acc = measure_drift(tb, stream, std::min<std::size_t>(a.nodes, 2048));
    std::printf("\naccuracy vs fp32: %.2f%% top-1 agreement, max |logit "
                "err| %.4f (%zu-node sample)\n",
                100 * acc.top1_agreement, acc.max_logit_err, acc.sampled);
  }
  const double kMinAgreement = 0.99;
  const bool acc_ok = prec != serve::Precision::kInt8 ||
                      acc.top1_agreement >= kMinAgreement;

  // Relative-gate floor.  Fixed fleets must hold 90% of the calibrated
  // single-replica rate.  Autoscaled ramps answer a trace averaging
  // ~1.17x saturation, but what a fleet can PHYSICALLY answer through the
  // 2.5x phase is capped by the cores replicas can spread onto — so the
  // floor is machine-relative twice over: denominated in the calibrated
  // baseline AND in the core budget.  A fleet stuck at min replicas caps
  // at ~ (0.5 + 1.0 + 0.5)/3 = 0.67x of baseline regardless of cores, so
  // on multi-core machines the floor (0.75 x the core-capped trace mean)
  // sits well above it; on a single-core box elastic and stuck fleets are
  // physically indistinguishable and the floor degrades to a sanity
  // check.
  const double cores =
      std::max(1u, std::thread::hardware_concurrency());
  const double capacity_mult =
      (0.5 + std::min(2.5, std::max(1.0, cores - 1)) + 0.5) / 3.0;
  const double rel_factor =
      a.autoscale ? 0.75 * capacity_mult : 0.9;
  const auto gate_ok = [&](const RunResult& res) {
    if (!acc_ok) return false;  // wrong answers fail regardless of speed
    if (a.gate == "none") return true;
    if (a.gate == "relative") return res.rps >= rel_factor * baseline_rps;
    return res.rps >= a.min_rps;
  };
  bool ok = gate_ok(r);
  // Retry only throughput misses: those are machine noise, while the
  // accuracy comparison is deterministic and would fail identically.
  if (!ok && acc_ok) {
    std::printf("\ngate missed; retrying once (loaded-machine noise gets "
                "one second chance)\n");
    if (a.gate == "relative" || a.autoscale) {
      // Recalibrate too: if a co-tenant landed load after the first
      // calibration, a stale idle-machine baseline would fail both
      // attempts no matter how healthy the measured run is.
      const auto base = run_serving(a, tb, 1, stream);
      baseline_rps = base.rps;
      print_result("calibration (retry): 1 replica", base);
    }
    r = a.autoscale
            ? run_autoscale(a, tb, baseline_rps, a.trace_out)
            : run_serving(a, tb, fleet_size, stream, a.trace_out, remote,
                          reg);
    print_result("measured (retry)", r);
    ok = gate_ok(r);
  }

  std::string tenants_json = "[";
  for (std::size_t i = 0; i < r.tenants.size(); ++i) {
    if (i) tenants_json += ",";
    tenants_json += r.tenants[i].to_json();
  }
  tenants_json += "]";
  std::printf("\njson: {\"requests\":%zu,\"replicas\":%zu,\"policy\":\"%s\","
              "\"precision\":\"%s\",\"autoscale\":%s,"
              "\"remote_replicas\":%zu,\"crash_injected\":%s,"
              "\"batch_nodes\":%zu,\"deadline_ms\":%.1f,\"topk\":%zu,"
              "\"tenants_n\":%zu,\"quota_refused\":%zu,"
              "\"envelopes_quota\":%zu,\"tenants\":%s,"
              "\"envelopes\":%zu,\"deadline_miss_rate\":%.4f,"
              "\"deadline_missed\":%zu,"
              "\"max_replicas_seen\":%zu,\"replica_seconds\":%.1f,"
              "\"idle_replica_seconds\":%.1f,\"throughput_rps\":%.0f,"
              "\"baseline_rps\":%.0f,\"top1_agreement\":%.4f,"
              "\"max_logit_err\":%.5f,\"preads\":%llu,"
              "\"cache_capacity_rows\":%zu,"
              "\"latency\":%s,\"admission\":%s,\"stages\":%s,"
              "\"mean_batch\":%.1f}\n",
              stream.size(),
              remote ? a.remote_replicas
                     : (a.autoscale ? a.min_replicas : a.replicas),
              a.policy.c_str(), serve::precision_name(prec),
              a.autoscale ? "true" : "false", a.remote_replicas,
              a.kill_one_mid_run ? "true" : "false", a.batch_nodes,
              a.deadline_ms,
              a.topk, a.tenants, r.quota_refused_parts, r.envelopes_quota,
              tenants_json.c_str(),
              r.envelopes, r.deadline_miss_rate(), r.deadline_missed,
              r.max_replicas_seen,
              r.replica_seconds, r.idle_replica_seconds, r.rps, baseline_rps,
              acc.top1_agreement, acc.max_logit_err,
              static_cast<unsigned long long>(r.preads),
              r.cache_capacity_rows, r.latency.to_json().c_str(),
              r.admission.to_json().c_str(), r.stages.to_json().c_str(),
              r.mean_batch);
  // The status line carries the deadline-miss rate whenever a deadline
  // was in force — a PASS that misses half its deadlines should say so.
  char miss_note[64] = "";
  if (a.deadline_ms > 0) {
    std::snprintf(miss_note, sizeof(miss_note), ", deadline-miss %.1f%%",
                  100 * r.deadline_miss_rate());
  }
  if (!acc_ok) {
    std::printf("FAIL: int8 top-1 agreement %.2f%% below the %.0f%% bound\n",
                100 * acc.top1_agreement, 100 * kMinAgreement);
  } else if (a.gate == "relative") {
    std::printf("%s: %s sustained %.0f req/s vs single-replica baseline "
                "%.0f (relative gate: >= %.0f%%)%s\n",
                ok ? "PASS" : "FAIL",
                a.autoscale ? "autoscaled ramp" : "measured run", r.rps,
                baseline_rps, 100 * rel_factor, miss_note);
  } else if (a.gate == "absolute") {
    std::printf("%s: sustained %.0f req/s (absolute gate: %.0f req/s)%s\n",
                ok ? "PASS" : "FAIL", r.rps, a.min_rps, miss_note);
  } else {
    std::printf("PASS: gate disabled (sustained %.0f req/s)%s\n", r.rps,
                miss_note);
  }
  return ok ? 0 : 1;
}
