#!/usr/bin/env bash
# Per-PR gate: the tier-1 verify command (ROADMAP.md) plus a smoke run of
# the serving path, so regressions in either the build or online serving
# are caught before merge.
set -euo pipefail
cd "$(dirname "$0")"

echo "== configure + build =="
cmake -B build -S .
cmake --build build -j "$(nproc)"

echo "== tier-1 tests =="
(cd build && ctest --output-on-failure -j "$(nproc)")

echo "== serve_cli smoke (scaled down; exits nonzero under 10k req/s) =="
./build/serve_cli --nodes=20000 --requests=30000

echo "CI OK"
