#!/usr/bin/env bash
# Per-PR gate: the tier-1 verify command (ROADMAP.md) plus a smoke run of
# the serving path and a quick serving bench, so regressions in the build,
# online serving, or the bench trajectory are caught before merge.
#
# Environment knobs (all optional — defaults reproduce the local gate):
#   BUILD_TYPE=Release|Debug   CMake build type
#   SANITIZE=address,undefined comma list for -fsanitize= (empty = off)
#   USE_CCACHE=1               route compilation through ccache
#   BENCH_JSON=BENCH_serving.json  where the serving-bench artifact lands
#   SIM_JSON=SIM_calibration.json  where the fleetsim calibration report
#                              lands (simulated vs measured staged ramp)
#   SERVE_PRECISION=fp32|int8  serving precision for the smoke run; int8
#                              also routes it through the int8 feature-store
#                              codec + byte-budget LRU cache, and the gate
#                              additionally bounds top-1 disagreement vs
#                              fp32 (>= 99%)
#   SERVE_AUTOSCALE=1          smoke the elastic fleet instead of a fixed
#                              one: serve_cli --autoscale drives the staged
#                              0.5x->2.5x->0.5x ramp over a file store +
#                              LRU caches, so concurrent spawn / cache-warm
#                              / drain / submit paths are exercised (the
#                              tsan-autoscale CI leg runs this under the
#                              race detector); the machine-relative gate
#                              still calibrates this runner's own baseline
#   PPGNN_ISA=scalar|sse2|avx2|avx512vnni
#                              force one arm of the INT8 GEMM kernel ladder
#                              (docs/kernels.md) for the whole gate: ctest,
#                              the serving smokes and the benches all run
#                              with the dispatch pinned to that arm.  If the
#                              runner's CPU cannot execute the requested arm
#                              the leg is skipped (exit 0) rather than
#                              failed — hosted runners do not all ship
#                              AVX-512.  The isa-* CI legs set this.
#   SERVE_TENANTS=N            run the API-v2 smoke multi-tenant: N tenants
#                              with a 2,1,1,1 weight mix through the
#                              registry/DWRR path (src/tenancy/), recorded
#                              tenant ids riding the trace into the fleetsim
#                              replay.  On crossproc legs the tenant id also
#                              crosses the wire (protocol v2) and the
#                              replica servers' per-tenant exit lines are
#                              collected into build/tenant-stats.txt.
#                              0 (default) keeps every smoke untenanted.
#   SERVE_CROSSPROC=1          additionally smoke cross-process serving:
#                              serve_cli --remote-replicas=2 spawns two
#                              replica_server_cli processes behind the
#                              socket RPC front (docs/wire-protocol.md),
#                              kill -9s one mid-run, and the gate greps for
#                              "zero lost" + the exact reap codes (137 for
#                              the victim, 0 for the survivor's clean
#                              drain).  A lost envelope hangs the client
#                              drain loop, which the CI job timeout turns
#                              into a failure.  The replica servers' output
#                              lands in build/replica_server.log (uploaded
#                              on failure by the crossproc CI leg).
set -euo pipefail
cd "$(dirname "$0")"

BUILD_TYPE="${BUILD_TYPE:-Release}"
SANITIZE="${SANITIZE:-}"
BENCH_JSON="${BENCH_JSON:-BENCH_serving.json}"
SIM_JSON="${SIM_JSON:-SIM_calibration.json}"
SERVE_PRECISION="${SERVE_PRECISION:-fp32}"
SERVE_AUTOSCALE="${SERVE_AUTOSCALE:-0}"
SERVE_CROSSPROC="${SERVE_CROSSPROC:-0}"
SERVE_TENANTS="${SERVE_TENANTS:-0}"

TENANT_FLAGS=()
if [[ "${SERVE_TENANTS}" != "0" ]]; then
  TENANT_FLAGS=(--tenants="${SERVE_TENANTS}" --tenant-mix=2,1,1,1)
fi

CMAKE_FLAGS=(-DCMAKE_BUILD_TYPE="${BUILD_TYPE}")
if [[ -n "${SANITIZE}" ]]; then
  CMAKE_FLAGS+=(-DSANITIZE="${SANITIZE}")
fi
if [[ "${USE_CCACHE:-0}" == "1" ]] && command -v ccache > /dev/null; then
  CMAKE_FLAGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

echo "== configure + build (${BUILD_TYPE}${SANITIZE:+, sanitize=${SANITIZE}}) =="
cmake -B build -S . "${CMAKE_FLAGS[@]}"
cmake --build build -j "$(nproc)"

if [[ -n "${PPGNN_ISA:-}" ]]; then
  echo "== kernel ladder leg: forcing PPGNN_ISA=${PPGNN_ISA} =="
  # --require exits 3 when the CPU lacks the arm's instructions.  Skip the
  # leg cleanly in that case: a forced-arm leg on a runner that cannot
  # execute the arm proves nothing (resolve_isa would silently degrade the
  # dispatch to a lower arm, so every assertion would test that arm
  # instead).
  if ! ./build/isa_probe_cli --require "${PPGNN_ISA}"; then
    echo "runner CPU lacks ${PPGNN_ISA}; skipping this forced-arm leg"
    exit 0
  fi
  export PPGNN_ISA
fi

echo "== tier-1 tests =="
(cd build && ctest --output-on-failure -j "$(nproc)")

if [[ "${SERVE_AUTOSCALE}" == "1" ]]; then
  echo "== serve_cli autoscale smoke (staged ramp, 1..4 replicas) =="
  # The elastic-fleet smoke: a 6s staged load ramp against min=1..max=4
  # replicas over the file store + per-replica LRU caches, so every
  # lifecycle path runs — spawn (with peer cache warm-up), drain, retire —
  # concurrently with 2ms-budget admission.  The gate stays
  # machine-relative: serve_cli calibrates this runner's single-replica
  # saturation and floors the ramp's answered rate against it (scaled by
  # the runner's core budget, so a tiny runner degrades the floor instead
  # of flaking).
  SMOKE_FLAGS=(--nodes=20000 --requests=30000 --gate=relative
               --autoscale --min-replicas 1 --max-replicas 4
               --source=file --cache=lru
               --precision="${SERVE_PRECISION}")
else
  echo "== serve_cli smoke (2 replicas, precision=${SERVE_PRECISION}) =="
  # Machine-relative gate: serve_cli measures this runner's own
  # single-replica throughput first and requires the replicated run to hold
  # >= 90% of it, so a loaded shared runner (or a sanitizer build) moves
  # both sides of the comparison instead of tripping an absolute req/s
  # floor.
  SMOKE_FLAGS=(--nodes=20000 --requests=30000 --replicas=2 --gate=relative
               --precision="${SERVE_PRECISION}")
  if [[ "${SERVE_PRECISION}" == "int8" ]]; then
    # Exercise the whole int8 deployment: quantized checkpoint, int8 row
    # codec on the file store, and the byte-budget cache that holds ~4x
    # more quantized rows.
    SMOKE_FLAGS+=(--source=file --cache=lru)
  fi
fi
./build/serve_cli "${SMOKE_FLAGS[@]}"

if [[ "${SERVE_CROSSPROC}" == "1" ]]; then
  echo "== cross-process crash smoke (2 replica processes, kill -9 one) =="
  # The full cross-process lifecycle under whatever sanitizer this leg
  # builds with: fork/exec two replica_server_cli children, handshake,
  # serve envelopes over ppgnn-wire, SIGKILL one mid-storm (the fleet only
  # learns from the dead socket and re-routes), then SIGTERM-drain and
  # reap the survivor.  gate=none: this run gates envelope accounting and
  # process lifecycle, not throughput — the greps below require every
  # envelope answered ("zero lost") and the exact reap codes (137 = the
  # SIGKILLed victim, 0 = the survivor's clean drain).
  CROSSPROC_OUT=build/crossproc_smoke.out
  ./build/serve_cli --nodes=20000 --requests=20000 --remote-replicas=2 \
    --kill-one-mid-run --source=file --cache=lru --batch-nodes=4 \
    --gate=none --precision="${SERVE_PRECISION}" \
    ${TENANT_FLAGS[@]+"${TENANT_FLAGS[@]}"} \
    --serve-log=build/replica_server.log | tee "${CROSSPROC_OUT}"
  grep -q "zero lost" "${CROSSPROC_OUT}"
  grep -q "rc=137" "${CROSSPROC_OUT}"
  grep -q "rc=0" "${CROSSPROC_OUT}"
  echo "cross-process smoke OK (zero lost, victim reaped 137, survivor 0)"
  # The transport fast-path evidence (frames/writev, pool hit rate,
  # allocs/frame) as its own artifact next to the smoke output.
  grep "rpc fast path" "${CROSSPROC_OUT}" > build/rpc_stats.txt || true
  if [[ "${SERVE_TENANTS}" != "0" ]]; then
    # Tenanted crossproc run: the tenant id crossed the wire on every v2
    # request, so each replica server reports per-tenant slices at exit —
    # the cross-process half of the per-tenant observability contract.
    # The surviving server's lines land in the log (the SIGKILLed victim
    # never reaches its exit report); require at least one.
    grep "replica_server: tenant" build/replica_server.log \
      > build/tenant-stats.txt || true
    if ! [[ -s build/tenant-stats.txt ]]; then
      echo "tenanted crossproc smoke produced no per-tenant server stats"
      exit 1
    fi
    echo "per-tenant server stats collected:"
    cat build/tenant-stats.txt
  fi
fi

echo "== serve_cli API-v2 smoke (envelopes, deadlines, top-k) =="
# The ServeRequest/ServeResponse path end to end: 4-node envelopes split
# ring-consistently across 2 cache_affinity replicas, a 50ms deadline (so
# the deadline bookkeeping runs without forcing misses), top-3 answers,
# and a 10ms shed budget — CompletionQueue delivery under whatever
# sanitizer this leg builds with.  gate=none: the fixed-fleet smoke above
# already gates throughput; this run gates crashes, races and lost
# completions (a lost envelope hangs the client drain loop, which the CI
# job timeout turns into a failure).
./build/serve_cli --nodes=20000 --requests=20000 --replicas=2 \
  --policy=cache_affinity --batch-nodes=4 --deadline-ms=50 --topk=3 \
  --shed-budget-ms=10 --gate=none --precision="${SERVE_PRECISION}" \
  ${TENANT_FLAGS[@]+"${TENANT_FLAGS[@]}"} \
  --trace-out=build/ci_arrivals.trace

echo "== trace round trip (recorded arrivals -> fleetsim replay) =="
# The live run above recorded its real arrivals; the simulator must load
# and replay that exact trace (same envelopes, deadlines, tenants).  This
# is the record/replay contract between serve_cli --trace-out and
# fleetsim_cli --trace=FILE, exercised on every leg.
./build/fleetsim_cli --trace=build/ci_arrivals.trace --replicas=2 \
  --policy=cache_affinity --nodes=20000

echo "== serving bench (writes ${BENCH_JSON}) =="
# --quick includes section 6, the deadline sweep at 2x saturation whose
# slack-vs-FIFO miss-rate comparison lands in the JSON artifact as the
# machine-relative "deadline_gate" record.
./build/bench_serving_latency --quick --json="${BENCH_JSON}"

echo "== tenant isolation gate (from ${BENCH_JSON}) =="
# Bench section 9 measured the multi-tenant isolation proof: one tenant
# blasting 10x its quota must not move another tenant's admitted p99 more
# than 10% nor cause it a single quota refusal.  The bench stamps ok=false
# when the contract breaks (after one noise retry) — assert it here so
# every leg fails loudly on an isolation regression instead of shipping a
# red field inside a green artifact.
ISO_RECORD=$(grep '"section":"tenant_isolation"' "${BENCH_JSON}" || true)
if [[ -z "${ISO_RECORD}" ]]; then
  echo "no tenant_isolation record in ${BENCH_JSON}"
  exit 1
fi
echo "${ISO_RECORD}"
echo "${ISO_RECORD}" | grep -q '"ok":true' || {
  echo "tenant isolation gate failed: aggressor moved the victim's p99"
  exit 1
}

if [[ "${SERVE_CROSSPROC}" == "1" ]]; then
  echo "== cross-process overhead gate (<= 1.5x from ${BENCH_JSON}) =="
  # Bench section 7 measured the same 2-replica fleet in-process and
  # cross-process; its record's overhead_ratio is the whole RPC tax.  The
  # bench already stamps ok=false past 1.5x — assert it here so the
  # crossproc legs fail loudly on a fast-path regression instead of
  # shipping a red field inside a green artifact.
  XPROC_RECORD=$(grep '"section":"cross_process"' "${BENCH_JSON}" || true)
  if [[ -z "${XPROC_RECORD}" ]]; then
    echo "no cross_process record in ${BENCH_JSON}"
    exit 1
  fi
  echo "${XPROC_RECORD}"
  echo "${XPROC_RECORD}" | grep -q '"ok":true' || {
    echo "cross-process overhead ratio exceeds the 1.5x gate"
    exit 1
  }
  # Keep the bench's transport counters with the serve_cli line.
  echo "${XPROC_RECORD}" >> build/rpc_stats.txt || true
fi

# bench_kernels is only built when google-benchmark is installed; when it
# is, append the self-timed per-ISA GEMM table (the 255x96x32 serving
# shape) into the same artifact so the calibration below — and anyone
# pulling BENCH_serving.json — sees what each kernel-ladder arm measures
# on this runner, not just the arm that happened to dispatch.
if [[ -x build/bench_kernels ]]; then
  echo "== kernel ladder GEMM table (appends to ${BENCH_JSON}) =="
  ./build/bench_kernels --ladder-json="${BENCH_JSON}"
fi

echo "== fleetsim calibration smoke (writes ${SIM_JSON}) =="
# The simulator must reproduce the staged ramp this leg just measured:
# fleetsim_cli rebuilds the service/cache models from the bench's
# autoscale_trace anchors, replays the same ramp on the virtual clock,
# and gates throughput / admitted p99 / spawn-retire sequence per arm
# (tolerances in src/fleetsim/calibrate.h).  A model that drifts from
# the machine fails here — BEFORE anyone plans capacity with it.
./build/fleetsim_cli --calibrate="${BENCH_JSON}" --out="${SIM_JSON}"

echo "CI OK"
